//! Quickstart: train GSFL and vanilla SL on a small synthetic traffic-sign
//! task and compare simulated wall-clock latency.
//!
//! Run with: `cargo run --release --example quickstart`

use gsfl::core::config::{DatasetConfig, ExperimentConfig};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small experiment: 12 clients in 3 groups, 20 rounds.
    let config = ExperimentConfig::builder()
        .clients(12)
        .groups(3)
        .rounds(20)
        .batch_size(16)
        .eval_every(2)
        .dataset(DatasetConfig {
            classes: 10,
            samples_per_class: 40,
            test_per_class: 10,
            image_size: 16,
        })
        .seed(7)
        .build()?;

    let runner = Runner::new(config)?;

    println!("training GSFL (3 parallel groups)…");
    let gsfl = runner.run(SchemeKind::Gsfl)?;
    println!("training vanilla SL (sequential)…");
    let sl = runner.run(SchemeKind::VanillaSplit)?;

    println!("\n{:<6} {:>10} {:>14} {:>12}", "scheme", "accuracy", "simulated", "host");
    for r in [&gsfl, &sl] {
        println!(
            "{:<6} {:>9.1}% {:>13.1}s {:>11.1}s",
            r.scheme,
            r.final_accuracy_pct(),
            r.total_latency_s(),
            r.wall_clock_s
        );
    }
    let speedup = sl.total_latency_s() / gsfl.total_latency_s();
    println!("\nGSFL ran the same {} rounds {speedup:.2}× faster (simulated time).", gsfl.records.len());
    println!("(The paper reports ≈31% less delay to matched accuracy on its testbed.)");
    Ok(())
}
