//! Quickstart: stream a GSFL training session round-by-round, then
//! compare its simulated wall-clock latency against vanilla SL.
//!
//! `Runner::session` yields [`RoundEvent`]s as training progresses —
//! this example prints a live progress line per round and an accuracy
//! line per evaluation, exactly what a dashboard or CSV streamer would
//! consume. `Runner::run` is the one-shot convenience over the same
//! iterator.
//!
//! Run with: `cargo run --release --example quickstart`

use gsfl::core::config::{DatasetConfig, ExperimentConfig};
use gsfl::core::runner::{RoundEvent, Runner};
use gsfl::core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small experiment: 12 clients in 3 groups, 20 rounds.
    let config = ExperimentConfig::builder()
        .clients(12)
        .groups(3)
        .rounds(20)
        .batch_size(16)
        .eval_every(2)
        .dataset(DatasetConfig {
            classes: 10,
            samples_per_class: 40,
            test_per_class: 10,
            image_size: 16,
        })
        .seed(7)
        .build()?;

    let runner = Runner::new(config)?;

    // Streaming path: observe GSFL as it trains.
    println!("training GSFL (3 parallel groups), streaming round events…");
    let mut session = runner.session(SchemeKind::Gsfl)?;
    for event in &mut session {
        match event? {
            RoundEvent::RoundFinished { round, record } => {
                println!(
                    "  round {round:>2}: loss {:.3}, +{:.1}s simulated",
                    record.train_loss, record.round_latency_s
                );
            }
            RoundEvent::Evaluated { round, accuracy } => {
                println!("  round {round:>2}: test accuracy {:.1}%", accuracy * 100.0);
            }
            RoundEvent::Stopped { reason, .. } => println!("  stopped: {reason}"),
            _ => {}
        }
    }
    let gsfl = session.finish();

    // One-shot path: same iterator underneath, drained for us.
    println!("training vanilla SL (sequential)…");
    let sl = runner.run(SchemeKind::VanillaSplit)?;

    println!(
        "\n{:<6} {:>10} {:>14} {:>12}",
        "scheme", "accuracy", "simulated", "host"
    );
    for r in [&gsfl, &sl] {
        println!(
            "{:<6} {:>9.1}% {:>13.1}s {:>11.1}s",
            r.scheme,
            r.final_accuracy_pct(),
            r.total_latency_s(),
            r.wall_clock_s
        );
    }
    let speedup = sl.total_latency_s() / gsfl.total_latency_s();
    println!(
        "\nGSFL ran the same {} rounds {speedup:.2}× faster (simulated time).",
        gsfl.records.len()
    );
    println!("(The paper reports ≈31% less delay to matched accuracy on its testbed.)");
    Ok(())
}
