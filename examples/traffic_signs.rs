//! The paper's headline scenario end to end: 30 clients / 6 groups
//! training a lightweight CNN on the 43-class synthetic traffic-sign
//! dataset, with all four schemes from Fig. 2(a) compared on accuracy,
//! latency, traffic and server storage.
//!
//! Run with: `cargo run --release --example traffic_signs [-- rounds]`

use gsfl::core::config::DatasetConfig;
use gsfl::core::config::ExperimentConfig;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let config = ExperimentConfig::builder()
        .clients(30)
        .groups(6)
        .rounds(rounds)
        .batch_size(16)
        .eval_every(5)
        .dataset(DatasetConfig {
            classes: 43,
            samples_per_class: 30,
            test_per_class: 6,
            image_size: 16,
        })
        .seed(42)
        .build()?;

    println!("30 clients, 6 groups, 43-class synthetic GTSRB, {rounds} rounds\n");
    let runner = Runner::new(config)?;

    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>14}",
        "scheme", "acc_%", "sim_time_s", "traffic_MiB", "server_store_KiB"
    );
    // All five schemes on parallel host threads against the shared
    // context; results come back in presentation order.
    for r in runner.run_many(&SchemeKind::all())? {
        println!(
            "{:<6} {:>8.1} {:>12.1} {:>12.2} {:>14.1}",
            r.scheme,
            r.final_accuracy_pct(),
            r.total_latency_s(),
            r.total_bytes() as f64 / (1 << 20) as f64,
            r.server_storage_bytes as f64 / 1024.0,
        );
    }
    println!("\nNote how GSFL matches SL's accuracy at a fraction of its");
    println!("simulated time, while storing 6 server-side replicas instead of");
    println!("SplitFed's 30.");
    Ok(())
}
