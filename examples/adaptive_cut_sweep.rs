//! Fixed vs adaptive cut selection across wireless environments.
//!
//! For each environment (clean static channel, co-channel interference,
//! the contested adaptive-cut stress case, and a multi-AP deployment)
//! this sweep runs GSFL once per fixed cut layer and once per adaptive
//! policy (greedy latency estimate, ε-greedy bandit), then reports
//! total simulated latency, latency-to-target-accuracy, and final
//! accuracy. In the congested presets the adaptive policies should beat
//! the worst fixed cut — the whole argument for closing the
//! environment→cut loop.
//!
//! Run with: `cargo run --release --example adaptive_cut_sweep`

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::cut::CutPolicySpec;
use gsfl::core::results::RunResult;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::{AdaptiveCutSpec, MultiApSpec};
use gsfl::wireless::{InterferenceSpec, Scenario};

const TARGET_ACC: f64 = 0.5;

#[derive(Clone, Copy)]
enum Strategy {
    Fixed(usize),
    Greedy,
    Bandit,
}

impl Strategy {
    fn label(&self) -> String {
        match self {
            Strategy::Fixed(cut) => format!("fixed@{cut}"),
            Strategy::Greedy => "greedy".into(),
            Strategy::Bandit => "bandit".into(),
        }
    }
}

fn config(scenario: Scenario, strategy: Strategy) -> ExperimentConfig {
    let mut b = ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(10)
        .batch_size(8)
        .eval_every(2)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 5,
            samples_per_class: 16,
            test_per_class: 6,
            image_size: 8,
        })
        .model(ModelKind::Mlp {
            hidden: vec![32, 16],
        })
        .scenario(scenario)
        .seed(11);
    b = match strategy {
        Strategy::Fixed(cut) => b.cut_index(cut),
        Strategy::Greedy => b.cut_policy(CutPolicySpec::Greedy),
        Strategy::Bandit => b.cut_policy(CutPolicySpec::Bandit { epsilon: 0.2 }),
    };
    b.build().expect("config is valid")
}

fn fmt_tta(r: &RunResult) -> String {
    match r.time_to_accuracy(TARGET_ACC) {
        Some(t) => format!("{t:>9.1}s"),
        None => format!("{:>10}", "—"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let environments: Vec<(&str, Scenario)> = vec![
        ("static", Scenario::Static),
        (
            "interference",
            Scenario::Interference(InterferenceSpec { reuse_factor: 0.6 }),
        ),
        (
            "adaptive_cut",
            Scenario::AdaptiveCut(AdaptiveCutSpec::default()),
        ),
        ("multi_ap", Scenario::MultiAp(MultiApSpec::default())),
    ];
    // MLP [32,16] is 5 layers deep ⇒ valid cuts 1..=4.
    let strategies: Vec<Strategy> = (1..5)
        .map(Strategy::Fixed)
        .chain([Strategy::Greedy, Strategy::Bandit])
        .collect();

    for (name, scenario) in environments {
        println!("— environment: {name} —");
        println!(
            "  {:<10} {:>11} {:>10} {:>9}",
            "cut", "latency", "to-target", "accuracy"
        );
        let mut worst_fixed: Option<(String, f64)> = None;
        let mut adaptive: Vec<(String, f64)> = Vec::new();
        for strategy in &strategies {
            let result = Runner::new(config(scenario, *strategy))?.run(SchemeKind::Gsfl)?;
            println!(
                "  {:<10} {:>10.1}s {} {:>8.1}%",
                strategy.label(),
                result.total_latency_s(),
                fmt_tta(&result),
                result.final_accuracy_pct(),
            );
            let score = result
                .time_to_accuracy(TARGET_ACC)
                .unwrap_or_else(|| result.total_latency_s());
            match strategy {
                Strategy::Fixed(_) => {
                    if worst_fixed.as_ref().is_none_or(|(_, w)| score > *w) {
                        worst_fixed = Some((strategy.label(), score));
                    }
                }
                _ => adaptive.push((strategy.label(), score)),
            }
        }
        if let Some((worst_label, worst)) = worst_fixed {
            for (label, score) in adaptive {
                let verdict = if score < worst { "beats" } else { "loses to" };
                println!(
                    "  ⇒ {label} ({score:.1}s to {:.0}% acc) {verdict} worst fixed \
                     {worst_label} ({worst:.1}s)",
                    TARGET_ACC * 100.0
                );
            }
        }
        println!();
    }
    println!("The clean static channel barely cares which cut is used; the");
    println!("contested presets punish cuts that ship fat activations over an");
    println!("interfered uplink, and the condition-aware policies route around it.");
    Ok(())
}
