//! Budgeted training: run every registered scheme under a *simulated*
//! latency budget — "how much accuracy does each scheme buy with five
//! simulated minutes of edge time?" — using the scheme registry and
//! composable stop policies.
//!
//! This is the experiment protocol behind the paper's Fig. 2(b) reading:
//! at a fixed time budget the schemes differ, not at a fixed round count.
//!
//! Run with: `cargo run --release --example budgeted_training [-- budget_s]`

use gsfl::core::config::{DatasetConfig, ExperimentConfig};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeRegistry;
use gsfl::core::stop::{CompositePolicy, LatencyBudget, LossPlateau};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget_s: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300.0);
    let config = ExperimentConfig::builder()
        .clients(12)
        .groups(3)
        .rounds(200) // generous; the budget stops the run first
        .batch_size(16)
        .eval_every(2)
        .dataset(DatasetConfig {
            classes: 10,
            samples_per_class: 30,
            test_per_class: 8,
            image_size: 16,
        })
        .seed(3)
        .build()?;
    let runner = Runner::new(config)?;
    let registry = SchemeRegistry::builtin();

    println!("budget: {budget_s:.0} simulated seconds (plus loss-plateau bailout)\n");
    println!(
        "{:<6} {:>7} {:>10} {:>10}",
        "scheme", "rounds", "sim_s", "acc_%"
    );
    for name in registry.names() {
        // Stop at the latency budget, or earlier if the loss flatlines.
        let policy = CompositePolicy::new()
            .with(Box::new(LatencyBudget::new(budget_s)))
            .with(Box::new(LossPlateau::new(25, 1e-4)));
        let scheme = registry.create(name).expect("builtin scheme");
        let result = runner
            .session_scheme(scheme, Box::new(policy))?
            .run_to_end()?;
        println!(
            "{:<6} {:>7} {:>10.1} {:>10.1}",
            name,
            result.records.len(),
            result.total_latency_s(),
            result.final_accuracy_pct(),
        );
    }
    println!("\nAt a fixed simulated-time budget the parallel schemes fit many");
    println!("more rounds than SL's sequential relay — the paper's core claim.");
    Ok(())
}
