//! Cut-layer selection study (the paper's §IV future work): how moving
//! the split point trades client compute against smashed-data traffic,
//! and what that does to round latency.
//!
//! Run with: `cargo run --release --example cut_layer_study`

use gsfl::core::latency::{gsfl_round, ChannelMode, SplitCosts};
use gsfl::nn::model::{CutPoint, DeepThin};
use gsfl::nn::split::SplitNetwork;
use gsfl::wireless::allocation::BandwidthPolicy;
use gsfl::wireless::environment::StaticEnvironment;
use gsfl::wireless::latency::LatencyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = StaticEnvironment::new(LatencyModel::builder().clients(30).seed(11).build()?);
    let groups: Vec<Vec<usize>> = (0..6)
        .map(|g| (0..30).filter(|c| c % 6 == g).collect())
        .collect();
    let steps = vec![4usize; 30];

    println!(
        "{:<8} {:>14} {:>14} {:>16} {:>10}",
        "cut", "client_FLOPs_%", "smashed_B", "client_model_B", "round_s"
    );
    for cut in CutPoint::all() {
        let net = DeepThin::builder(16, 43).seed(1).build()?;
        let costs = SplitCosts::compute(&net, cut.layer_index(), &[3, 16, 16], 16)?;
        let split = SplitNetwork::split(
            DeepThin::builder(16, 43).seed(1).build()?,
            cut.layer_index(),
        )?;
        let r = gsfl_round(
            &model,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )?;
        let client_share = (costs.client_fwd_flops + costs.client_bwd_flops) as f64
            / costs.full_flops as f64
            * 100.0;
        println!(
            "{:<8} {:>13.1}% {:>14} {:>16} {:>10.2}",
            cut.label(),
            client_share,
            costs.smashed_bytes.as_u64(),
            split.client.param_bytes(),
            r.duration.as_secs_f64()
        );
    }
    println!("\nShallow cuts (conv1/pool1) keep the device load tiny — the");
    println!("paper's regime for resource-limited clients — while deep cuts");
    println!("trade smashed-data traffic for on-device FLOPs.");
    Ok(())
}
