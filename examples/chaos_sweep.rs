//! Chaos sweep: every scheme trained through the `chaos` preset — 10%
//! transfer loss, 5% mid-compute crashes, 10% dropouts, AP outage
//! windows and compute stragglers at once — with the recovery layer
//! armed (round deadline, quorum aggregation, one backup standby).
//!
//! The gate: under chaos every scheme must still reach the target
//! accuracy, within 3× its fault-free time-to-accuracy. Retries price
//! real airtime, crashed clients waste work, deadlines skip rounds —
//! bounded degradation is exactly what the fault-tolerance machinery is
//! for, so CI runs this as a smoke test and fails on a miss.
//!
//! Run with: `cargo run --release --example chaos_sweep`

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::recovery::{DeadlinePolicy, RecoverySpec};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::Scenario;

/// The target-accuracy fraction runs are ranked on reaching first.
const TARGET: f64 = 0.55;
/// Allowed chaos/fault-free time-to-accuracy ratio.
const MAX_SLOWDOWN: f64 = 3.0;

fn config(scenario: Scenario, recovery: RecoverySpec) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(14)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.07)
        .dataset(DatasetConfig {
            classes: 5,
            samples_per_class: 16,
            test_per_class: 6,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![32] })
        .scenario(scenario)
        .recovery(recovery)
        .seed(7)
        .build()
        .expect("chaos sweep config builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chaos = Scenario::preset("chaos").expect("chaos preset exists");
    let recovery = RecoverySpec {
        deadline: Some(DeadlinePolicy {
            deadline_s: 30.0,
            min_quorum_frac: 0.3,
        }),
        backups: 1,
    };
    println!(
        "chaos sweep: target {:.0}% accuracy, gate {MAX_SLOWDOWN:.0}x fault-free time-to-accuracy",
        TARGET * 100.0
    );
    println!(
        "  {:<10} {:>10} {:>10} {:>7} {:>8} {:>6} {:>8}",
        "scheme", "clean_tta", "chaos_tta", "ratio", "retries", "lost", "skipped"
    );
    let mut failures = 0usize;
    for kind in SchemeKind::all() {
        let clean = Runner::new(config(Scenario::Static, RecoverySpec::default()))?.run(kind)?;
        let chaotic = Runner::new(config(chaos, recovery))?.run(kind)?;
        let clean_tta = clean.time_to_accuracy(TARGET);
        let chaos_tta = chaotic.time_to_accuracy(TARGET);
        let (ratio, ok) = match (clean_tta, chaos_tta) {
            (Some(c), Some(f)) => (Some(f / c), f <= MAX_SLOWDOWN * c),
            // Fault-free never reaching the target says the workload,
            // not the faults, is the problem — don't gate on it.
            (None, _) => (None, true),
            (Some(_), None) => (None, false),
        };
        if !ok {
            failures += 1;
        }
        println!(
            "  {:<10} {:>10} {:>10} {:>7} {:>8} {:>6} {:>8}{}",
            kind.name(),
            clean_tta
                .map(|t| format!("{t:.1}s"))
                .unwrap_or_else(|| "—".into()),
            chaos_tta
                .map(|t| format!("{t:.1}s"))
                .unwrap_or_else(|| "—".into()),
            ratio
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "—".into()),
            chaotic.total_retries(),
            chaotic.total_lost_clients(),
            chaotic.rounds_skipped(),
            if ok { "" } else { "  <- GATE MISS" },
        );
    }
    if failures > 0 {
        eprintln!(
            "chaos gate failed: {failures} scheme(s) exceeded {MAX_SLOWDOWN:.0}x fault-free \
             time-to-accuracy (or never reached the target) under chaos"
        );
        std::process::exit(1);
    }
    println!("\nEvery scheme absorbed chaos within the {MAX_SLOWDOWN:.0}x gate.");
    Ok(())
}
