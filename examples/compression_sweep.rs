//! Compression sweep: codecs × schemes on time-to-accuracy in the
//! bandwidth-constrained presets.
//!
//! Every artifact a round ships (smashed activations, cut-layer
//! gradients, model updates) is *actually encoded* before it crosses the
//! wire: training proceeds on the decoded tensors while the latency
//! model charges airtime for the encoded size. This sweep runs the
//! communication-bound schemes (SL, GSFL, FL, SFL) under each codec in
//! the contested presets (`narrowband`, `crowded_cell`) and ranks
//! codecs on **time-to-accuracy** — the honest metric, since a lossy
//! codec must win back in airtime what it costs in accuracy.
//!
//! The per-round compressed byte totals live in every
//! `RoundRecord` (`bytes_up`/`bytes_down`, with the uncompressed
//! footprint in `bytes_up_raw`/`bytes_down_raw`), and they are the bytes
//! the airtime was charged for — the table's wire/raw ratio comes
//! straight from the records.
//!
//! Run with: `cargo run --release --example compression_sweep`
//!
//! Exits non-zero if no lossy codec beats the fp32 identity baseline on
//! time-to-accuracy anywhere — CI runs this as a smoke test, so the
//! compression layer demonstrably paying for itself is a gate, not a
//! claim.

use gsfl::core::compression::CompressionSpec;
use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::nn::codec::CodecSpec;
use gsfl::wireless::scenario::Scenario;

/// The target-accuracy fraction runs are ranked on reaching first.
const TARGET: f64 = 0.5;

fn config(
    scenario: Scenario,
    compression: CompressionSpec,
) -> Result<ExperimentConfig, gsfl::core::CoreError> {
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(10)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 5,
            samples_per_class: 16,
            test_per_class: 6,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![32] })
        .scenario(scenario)
        .compression(compression)
        .seed(7)
        .build()
}

fn codecs() -> Vec<(&'static str, CompressionSpec)> {
    vec![
        ("identity", CompressionSpec::default()),
        ("fp16", CompressionSpec::uniform(CodecSpec::Fp16)),
        (
            "intq8",
            CompressionSpec::uniform(CodecSpec::IntQ { bits: 8 }),
        ),
        (
            "intq4",
            CompressionSpec::uniform(CodecSpec::IntQ { bits: 4 }),
        ),
        (
            // Quantized activations/gradients + sparsified model deltas:
            // top-k only makes sense on deltas, so mix it.
            "intq8+topk25",
            CompressionSpec {
                smashed: CodecSpec::IntQ { bits: 8 },
                gradient: CodecSpec::IntQ { bits: 8 },
                client_model: CodecSpec::TopK { frac: 0.25 },
                full_model: CodecSpec::TopK { frac: 0.25 },
                error_feedback: false,
            },
        ),
        // An aggressive pair differing ONLY in error feedback: 5% model
        // deltas drop so much mass that training stalls without the
        // EF21 residuals retrying it — the gate below requires EF to
        // unlock this config somewhere. Both ship identical byte counts
        // (container sizes are value-independent), so any ranking gap
        // is purely the accuracy trajectory.
        ("intq8+topk5", aggressive_pair(false)),
        ("intq8+topk5+ef", aggressive_pair(true)),
    ]
}

/// The aggressive sparse config, with or without error feedback.
fn aggressive_pair(error_feedback: bool) -> CompressionSpec {
    CompressionSpec {
        smashed: CodecSpec::IntQ { bits: 8 },
        gradient: CodecSpec::IntQ { bits: 8 },
        client_model: CodecSpec::TopK { frac: 0.05 },
        full_model: CodecSpec::TopK { frac: 0.05 },
        error_feedback,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The communication-bound schemes; CL ships nothing and would rank
    // on compute alone.
    let kinds = [
        SchemeKind::VanillaSplit,
        SchemeKind::Gsfl,
        SchemeKind::Federated,
        SchemeKind::SplitFed,
    ];
    let presets = ["narrowband", "crowded_cell"];
    let mut lossy_wins = 0usize;
    let mut comparisons = 0usize;
    let mut ef_unlocks = 0usize;

    for preset in presets {
        let scenario = Scenario::preset(preset).expect("preset exists");
        println!(
            "— preset: {preset} (target {:.0}% accuracy) —",
            TARGET * 100.0
        );
        println!(
            "  {:<6} {:<13} {:>12} {:>10} {:>10} {:>9}",
            "scheme", "codec", "t-to-acc", "total", "accuracy", "wire/raw"
        );
        for kind in kinds {
            let mut rows = Vec::new();
            for (name, compression) in codecs() {
                let runner = Runner::new(config(scenario, compression)?)?;
                let result = runner.run(kind)?;
                // The records' compressed totals ARE the charged bytes:
                // cross-check that the wire/raw split is self-consistent.
                for r in &result.records {
                    assert!(r.bytes_up <= r.bytes_up_raw && r.bytes_down <= r.bytes_down_raw);
                }
                rows.push((name, result));
            }
            // The EF gate: the aggressive 5% sparse config must exist in
            // both flavors, and somewhere error feedback has to turn a
            // config that misses the target into one that reaches it
            // (or reach it meaningfully sooner).
            let pair_tta = |label: &str| {
                rows.iter()
                    .find(|(n, _)| *n == label)
                    .map(|(_, r)| r.time_to_accuracy(TARGET))
                    .expect("aggressive pair present")
            };
            match (pair_tta("intq8+topk5"), pair_tta("intq8+topk5+ef")) {
                (None, Some(_)) => ef_unlocks += 1,
                (Some(plain), Some(ef)) if ef < plain => ef_unlocks += 1,
                _ => {}
            }
            let identity_tta = rows[0].1.time_to_accuracy(TARGET);
            for (name, r) in &rows {
                let tta = r.time_to_accuracy(TARGET);
                if *name != "identity" {
                    match (tta, identity_tta) {
                        // Reaching the target at all where fp32 never
                        // does is the strongest possible win.
                        (Some(lossy), Some(base)) => {
                            comparisons += 1;
                            if lossy < base {
                                lossy_wins += 1;
                            }
                        }
                        (Some(_), None) => {
                            comparisons += 1;
                            lossy_wins += 1;
                        }
                        (None, Some(_)) => comparisons += 1,
                        (None, None) => {}
                    }
                }
                println!(
                    "  {:<6} {:<13} {:>11} {:>9.1}s {:>9.1}% {:>9.2}",
                    kind.name(),
                    name,
                    tta.map(|t| format!("{t:.1}s"))
                        .unwrap_or_else(|| "—".into()),
                    r.total_latency_s(),
                    r.best_accuracy_pct(),
                    r.compression_ratio(),
                );
            }
        }
        println!();
    }

    println!(
        "{lossy_wins}/{comparisons} lossy runs beat fp32 on time-to-accuracy in the \
         bandwidth-constrained presets."
    );
    println!(
        "error feedback unlocked/improved the aggressive 5% sparse config in \
         {ef_unlocks} scheme×preset cells."
    );
    if lossy_wins == 0 {
        eprintln!("error: no lossy codec beat the identity baseline anywhere");
        std::process::exit(1);
    }
    if ef_unlocks == 0 {
        eprintln!(
            "error: error feedback never unlocked the aggressive sparse config \
             (intq8+topk5+ef must reach the target where — or sooner than — \
             intq8+topk5 does)"
        );
        std::process::exit(1);
    }
    Ok(())
}
