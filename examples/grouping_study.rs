//! Grouping-strategy study (the paper's §IV future work): with
//! heterogeneous devices and positions, how much does smart grouping cut
//! the round makespan compared to naive round-robin?
//!
//! Run with: `cargo run --release --example grouping_study`

use gsfl::core::config::WirelessConfig;
use gsfl::core::config::{DatasetConfig, ExperimentConfig, GroupingKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("20 clients with strongly heterogeneous devices (0.2–4 GFLOP/s), 4 groups\n");
    println!("{:<18} {:>10} {:>12}", "strategy", "round_s", "total_s");
    for (kind, label) in [
        (GroupingKind::RoundRobin, "round-robin"),
        (GroupingKind::Random, "random"),
        (GroupingKind::ComputeBalanced, "compute-balanced"),
        (GroupingKind::ChannelAware, "channel-aware"),
    ] {
        let config = ExperimentConfig::builder()
            .clients(20)
            .groups(4)
            .rounds(5)
            .eval_every(5)
            .dataset(DatasetConfig {
                classes: 8,
                samples_per_class: 20,
                test_per_class: 5,
                image_size: 16,
            })
            .wireless(WirelessConfig {
                device_min_gflops: 0.2,
                device_max_gflops: 4.0,
                ..WirelessConfig::default()
            })
            .grouping(kind)
            .seed(5)
            .build()?;
        let runner = Runner::new(config)?;
        let r = runner.run(SchemeKind::Gsfl)?;
        println!(
            "{label:<18} {:>10.2} {:>12.1}",
            r.records.first().map(|x| x.round_latency_s).unwrap_or(0.0),
            r.total_latency_s()
        );
    }
    println!("\nGSFL's round time is the slowest group's chain, so balancing");
    println!("client cost across groups (LPT) directly cuts the makespan.");
    Ok(())
}
