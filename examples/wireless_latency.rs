//! Explore the wireless substrate directly: path loss, fading, Shannon
//! rates, and how one GSFL round decomposes into computation and
//! communication — including the edge-server contention that discrete-
//! event simulation exposes.
//!
//! Run with: `cargo run --release --example wireless_latency`

use gsfl::core::latency::{gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl::nn::model::{CutPoint, DeepThin};
use gsfl::wireless::allocation::BandwidthPolicy;
use gsfl::wireless::environment::{ChannelModel, StaticEnvironment};
use gsfl::wireless::latency::LatencyModel;
use gsfl::wireless::link::LinkBudget;
use gsfl::wireless::units::{Bytes, Hertz, Meters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Link-level behaviour.
    println!("— link budget (uplink, 23 dBm, urban path loss, 1 MHz) —");
    let lb = LinkBudget::uplink_default();
    for d in [20.0, 50.0, 100.0, 200.0] {
        let rate = lb.rate_bps(Meters::new(d), Hertz::from_mhz(1.0), 1.0);
        println!("  {d:>5.0} m → {:>8.2} Mbit/s", rate / 1e6);
    }

    // 2. A full latency model with fading.
    let model = StaticEnvironment::new(LatencyModel::builder().clients(12).seed(3).build()?);
    println!("\n— per-round fading on client 0 (1 MiB uplink) —");
    for round in 0..4 {
        let full = model.total_bandwidth(round);
        let t = model.uplink_time(0, Bytes::new(1 << 20), round, full)?;
        println!("  round {round}: {:.3} s", t.as_secs_f64());
    }

    // 3. Decompose a round of split training.
    let net = DeepThin::builder(16, 43).seed(1).build()?;
    let costs = SplitCosts::compute(&net, CutPoint::AfterPool1.layer_index(), &[3, 16, 16], 16)?;
    println!("\n— per-batch cost profile (cut after pool1) —");
    println!(
        "  client fwd/bwd : {} / {} FLOPs",
        costs.client_fwd_flops, costs.client_bwd_flops
    );
    println!("  server fwd+bwd : {} FLOPs", costs.server_flops);
    println!(
        "  smashed data   : {} B/batch",
        costs.smashed_bytes.as_u64()
    );
    println!("  client model   : {} B", costs.client_model_bytes.as_u64());

    // 4. SL vs GSFL round latency, and the server-contention effect.
    let steps = vec![3usize; 12];
    let order: Vec<usize> = (0..12).collect();
    let sl = sl_round(&model, &costs, &steps, &order, ChannelMode::Dedicated, 0)?;
    println!("\n— round latency (12 clients) —");
    println!(
        "  SL  (sequential)        : {:.2} s",
        sl.duration.as_secs_f64()
    );
    for m in [2usize, 3, 6, 12] {
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..12).filter(|c| c % m == g).collect())
            .collect();
        let r = gsfl_round(
            &model,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )?;
        println!(
            "  GSFL M={m:<2} ({} srv slots) : {:.2} s  ({:.2}× vs SL)",
            model.server().slots(),
            r.duration.as_secs_f64(),
            sl.duration.as_secs_f64() / r.duration.as_secs_f64()
        );
    }
    println!("\nParallel gains flatten once M exceeds the server's slot count —");
    println!("exactly the contention the paper's edge server would see.");
    Ok(())
}
