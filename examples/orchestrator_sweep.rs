//! Orchestrated vs static configurations under constrained channels.
//!
//! For each constrained preset (`crowded_cell`: narrow contested band,
//! `trace_replay`: the bundled diurnal-cellular trace with coverage
//! gaps) and each scheme, this sweep runs every *static* cut × codec
//! configuration (under the paper's fixed equal-share allocation) plus
//! the two orchestrators — the greedy joint planner and the ε-greedy
//! bandit — and ranks them on time-to-target-accuracy.
//!
//! It is a CI gate, not a demo: the process exits non-zero unless, for
//! every (preset, scheme) pair, an orchestrator beats *every* static
//! configuration. The orchestrators win because they move decisions no
//! static configuration can: demand-weighted bandwidth shares equalize
//! unequal airtimes in the crowded cell, and when the trace drops
//! clients out of coverage the plan re-divides the band among actual
//! participants instead of the configured fleet.
//!
//! Run with: `cargo run --release --example orchestrator_sweep`

use gsfl::core::compression::CompressionSpec;
use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::orchestrator::OrchestratorSpec;
use gsfl::core::results::RunResult;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::nn::codec::CodecSpec;
use gsfl::wireless::scenario::{CrowdedCellSpec, TraceReplaySpec};
use gsfl::wireless::Scenario;

const TARGET_ACC: f64 = 0.5;

#[derive(Clone, Copy)]
enum Strategy {
    /// A fixed cut and codec every round (equal shares, full cohort).
    Static(usize, CodecSpec),
    Greedy,
    Bandit,
}

impl Strategy {
    fn label(&self) -> String {
        match self {
            Strategy::Static(cut, codec) => format!("static@{cut}/{}", codec_name(*codec)),
            Strategy::Greedy => "greedy".into(),
            Strategy::Bandit => "bandit".into(),
        }
    }

    fn is_static(&self) -> bool {
        matches!(self, Strategy::Static(..))
    }
}

fn codec_name(codec: CodecSpec) -> &'static str {
    match codec {
        CodecSpec::Identity => "fp32",
        CodecSpec::Fp16 => "fp16",
        CodecSpec::IntQ { .. } => "int8",
        CodecSpec::TopK { .. } => "topk",
        CodecSpec::Pruned { .. } => "pruned",
    }
}

fn config(scenario: Scenario, strategy: Strategy) -> ExperimentConfig {
    let mut b = ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(24)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 5,
            samples_per_class: 32,
            test_per_class: 24,
            image_size: 8,
        })
        .model(ModelKind::Mlp {
            hidden: vec![32, 16],
        })
        .scenario(scenario)
        .seed(29);
    b = match strategy {
        Strategy::Static(cut, codec) => b
            .cut_index(cut)
            .compression(CompressionSpec::uniform(codec)),
        Strategy::Greedy => b.orchestrator(OrchestratorSpec::Greedy),
        Strategy::Bandit => b.orchestrator(OrchestratorSpec::Bandit { epsilon: 0.2 }),
    };
    b.build().expect("config is valid")
}

/// Sustained time-to-target-accuracy (reached the target and stayed
/// there), falling back to total latency scaled to order behind every
/// run that genuinely arrived. First-crossing TTA would reward configs
/// whose accuracy spikes over the target for one eval and collapses.
fn score(r: &RunResult) -> f64 {
    r.sustained_time_to_accuracy(TARGET_ACC)
        .unwrap_or_else(|| r.total_latency_s() * 10.0)
}

fn fmt_tta(r: &RunResult) -> String {
    match r.sustained_time_to_accuracy(TARGET_ACC) {
        Some(t) => format!("{t:>9.1}s"),
        None => format!("{:>10}", "—"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let presets: Vec<(&str, Scenario)> = vec![
        (
            "crowded_cell",
            Scenario::CrowdedCell(CrowdedCellSpec::default()),
        ),
        (
            "trace_replay",
            Scenario::TraceReplay(TraceReplaySpec::default()),
        ),
    ];
    // The codec menu the orchestrators search — the static grid covers
    // exactly the same options, so the comparison is decision-making,
    // not a bigger toolbox.
    let codecs = [
        CodecSpec::Identity,
        CodecSpec::Fp16,
        CodecSpec::IntQ { bits: 8 },
    ];
    let schemes = [
        SchemeKind::Gsfl,
        SchemeKind::SplitFed,
        SchemeKind::Federated,
    ];

    let mut failures: Vec<String> = Vec::new();
    for (preset_name, scenario) in &presets {
        println!("— preset: {preset_name} —");
        for scheme in schemes {
            // MLP [32,16] is 5 layers deep ⇒ valid cuts 1..=4. FL ships
            // full models regardless of cut, so its static grid only
            // varies the codec.
            let cuts: Vec<usize> = match scheme {
                SchemeKind::Federated => vec![1],
                _ => (1..5).collect(),
            };
            let mut strategies: Vec<Strategy> = Vec::new();
            for &cut in &cuts {
                for &codec in &codecs {
                    strategies.push(Strategy::Static(cut, codec));
                }
            }
            strategies.push(Strategy::Greedy);
            strategies.push(Strategy::Bandit);

            let mut best_static: Option<(String, f64)> = None;
            let mut best_orch: Option<(String, f64)> = None;
            let mut rows: Vec<(String, f64, String, f64)> = Vec::new();
            for strategy in &strategies {
                let result = Runner::new(config(*scenario, *strategy))?.run(scheme)?;
                let s = score(&result);
                rows.push((
                    strategy.label(),
                    result.total_latency_s(),
                    fmt_tta(&result),
                    result.final_accuracy_pct(),
                ));
                let slot = if strategy.is_static() {
                    &mut best_static
                } else {
                    &mut best_orch
                };
                if slot.as_ref().is_none_or(|(_, b)| s < *b) {
                    *slot = Some((strategy.label(), s));
                }
            }
            println!("  scheme: {scheme:?}");
            println!(
                "    {:<17} {:>11} {:>10} {:>9}",
                "strategy", "latency", "to-target", "accuracy"
            );
            for (label, lat, tta, acc) in rows {
                println!("    {label:<17} {lat:>10.1}s {tta} {acc:>8.1}%");
            }
            let (static_label, static_best) = best_static.expect("static grid is non-empty");
            let (orch_label, orch_best) = best_orch.expect("two orchestrators ran");
            let verdict = if orch_best < static_best {
                "beats"
            } else {
                "loses to"
            };
            println!(
                "    ⇒ {orch_label} ({orch_best:.1}s to {:.0}% acc) {verdict} best static \
                 {static_label} ({static_best:.1}s)\n",
                TARGET_ACC * 100.0
            );
            if orch_best >= static_best {
                failures.push(format!(
                    "{preset_name}/{scheme:?}: {orch_label} {orch_best:.1}s vs static \
                     {static_label} {static_best:.1}s"
                ));
            }
        }
    }

    if failures.is_empty() {
        println!("orchestrator gate: PASS — an orchestrator beat every static");
        println!("cut × codec configuration in both constrained presets.");
        Ok(())
    } else {
        eprintln!("orchestrator gate: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
