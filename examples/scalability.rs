//! Population-scale scalability sweep: 1k → 1M configured clients.
//!
//! Two claims are checked, and the process exits non-zero if either is
//! violated, so CI can use this example as a gate:
//!
//! 1. **Bounded memory.** With a fixed cohort, peak RSS must not grow
//!    with the *configured* population size — clients exist only as
//!    (seed, metadata) until sampled, so 1M configured clients costs the
//!    same memory as 1k.
//! 2. **Near-linear round time in cohort size.** At a fixed population,
//!    doubling the cohort may at most double round time (within slack),
//!    i.e. nothing in sampling, materialization, or tree aggregation is
//!    superlinear in the cohort.
//!
//! Usage: `cargo run --release --example scalability [max_clients]`
//! where `max_clients` caps the sweep (e.g. `10000` for a CI smoke run;
//! the default sweeps the full 1k/10k/100k/1M ladder).

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::population::PopulationConfig;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use std::time::Instant;

/// Peak resident set size in kilobytes, from `/proc/self/status`.
/// Returns `None` off Linux; the memory gate is skipped there.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn config(configured: u64, cohort: usize, threads: Option<usize>) -> ExperimentConfig {
    let mut builder = ExperimentConfig::builder()
        .clients(cohort)
        .groups(2)
        .rounds(2)
        .batch_size(8)
        .eval_every(2)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .population(PopulationConfig {
            clients: configured,
            // Fixed per-member shard so per-cohort-member work is
            // constant across every point of the sweep.
            samples_per_client: 16,
        })
        .seed(29);
    if let Some(n) = threads {
        builder = builder.client_threads(n);
    }
    builder.build().expect("sweep config is valid")
}

fn run_once(configured: u64, cohort: usize, threads: Option<usize>) -> (f64, f64) {
    let runner = Runner::new(config(configured, cohort, threads)).expect("runner builds");
    let start = Instant::now();
    let result = runner.run(SchemeKind::Gsfl).expect("round runs");
    let wall = start.elapsed().as_secs_f64();
    let loss = result
        .records
        .last()
        .map(|r| r.train_loss)
        .unwrap_or(f64::NAN);
    assert!(loss.is_finite(), "training diverged at N={configured}");
    (wall, loss)
}

fn main() {
    let max_clients: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_clients must be an integer"))
        .unwrap_or(1_000_000);
    let mut failures: Vec<String> = Vec::new();

    // ---- Phase 1: memory stays flat as the configured population grows.
    let tiers: Vec<u64> = [1_000u64, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&n| n <= max_clients)
        .collect();
    assert!(!tiers.is_empty(), "max_clients below the smallest tier");
    const COHORT: usize = 8;
    println!("phase 1: fixed cohort of {COHORT}, growing configured population");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "clients", "wall_s", "peak_rss_kb", "loss"
    );
    let mut tier_stats: Vec<(u64, f64, Option<u64>)> = Vec::new();
    for &n in &tiers {
        let (wall, loss) = run_once(n, COHORT, None);
        let rss = peak_rss_kb();
        println!(
            "{:>12} {:>12.3} {:>12} {:>12.4}",
            n,
            wall,
            rss.map(|kb| kb.to_string()).unwrap_or_else(|| "n/a".into()),
            loss
        );
        tier_stats.push((n, wall, rss));
    }
    let (first, last) = (tier_stats.first().unwrap(), tier_stats.last().unwrap());
    match (first.2, last.2) {
        (Some(base_kb), Some(peak_kb)) => {
            // A sparse population must not allocate per unsampled client.
            // Materializing 1M shards eagerly would cost gigabytes; the
            // budget below only allows allocator noise.
            const BUDGET_KB: u64 = 262_144; // 256 MiB
            let growth = peak_kb.saturating_sub(base_kb);
            if growth > BUDGET_KB {
                failures.push(format!(
                    "peak RSS grew {growth} kB from N={} to N={} (budget {BUDGET_KB} kB): \
                     per-unsampled-client allocation suspected",
                    first.0, last.0
                ));
            }
        }
        _ => eprintln!("note: /proc/self/status unavailable; memory gate skipped"),
    }
    // Round time must not scale with the configured population either:
    // sampling is O(cohort), not O(N).
    let slack = 25.0 * first.1.max(0.05) + 1.0;
    if last.1 > slack {
        failures.push(format!(
            "round time grew with configured population: {:.3}s at N={} vs {:.3}s at N={} \
             (limit {:.3}s)",
            last.1, last.0, first.1, first.0, slack
        ));
    }

    // ---- Phase 2: round time near-linear in cohort size.
    let population = max_clients.min(100_000);
    let cohorts = [4usize, 8, 16];
    println!("\nphase 2: fixed population of {population}, growing cohort (1 thread)");
    println!("{:>12} {:>12} {:>12}", "cohort", "wall_s", "loss");
    let mut cohort_walls: Vec<f64> = Vec::new();
    for &cohort in &cohorts {
        let (wall, loss) = run_once(population, cohort, Some(1));
        println!("{:>12} {:>12.3} {:>12.4}", cohort, wall, loss);
        cohort_walls.push(wall);
    }
    let ideal = cohorts[cohorts.len() - 1] as f64 / cohorts[0] as f64;
    let ratio = cohort_walls[cohorts.len() - 1] / cohort_walls[0].max(1e-3);
    const LINEARITY_SLACK: f64 = 2.5;
    if ratio > ideal * LINEARITY_SLACK {
        failures.push(format!(
            "round time superlinear in cohort: {}x cohort cost {ratio:.2}x time \
             (limit {:.1}x)",
            ideal,
            ideal * LINEARITY_SLACK
        ));
    }

    if failures.is_empty() {
        println!(
            "\nscalability sweep OK (max configured clients: {})",
            tiers.last().unwrap()
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
