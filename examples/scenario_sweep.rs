//! Scenario sweep: how does the scheme ranking shift when the wireless
//! environment stops being the static textbook channel?
//!
//! Runs every scheme (CL, SL, GSFL, FL, SFL) through each built-in
//! [`Scenario`] preset — static baseline, random-waypoint mobility,
//! diurnal bandwidth, congestion spikes, compute stragglers, radio
//! dropouts, co-channel interference, multi-AP handoffs, the
//! adaptive-cut stress case and the composite — against one shared
//! data/model setup, and prints a per-scenario ranking table over
//! simulated latency, test accuracy and client-side energy.
//!
//! Run with: `cargo run --release --example scenario_sweep`
//! or, for a single preset (as the CI scenario matrix does):
//! `cargo run --release --example scenario_sweep -- multi_ap`

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::results::RunResult;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::Scenario;

fn config(scenario: Scenario) -> Result<ExperimentConfig, gsfl::core::CoreError> {
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(8)
        .batch_size(8)
        .eval_every(4)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 5,
            samples_per_class: 16,
            test_per_class: 6,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![32] })
        .scenario(scenario)
        .seed(7)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kinds = SchemeKind::all();
    // An optional preset name restricts the sweep to that scenario — the
    // CI scenario matrix runs one preset per job so a broken preset
    // names itself in the job list.
    let scenarios: Vec<Scenario> =
        match std::env::args().nth(1) {
            Some(name) => vec![Scenario::preset(&name)
                .ok_or_else(|| format!("unknown scenario preset {name:?}"))?],
            None => Scenario::presets(),
        };
    println!(
        "sweeping {} scenario(s) × {} schemes…\n",
        scenarios.len(),
        kinds.len()
    );

    let mut static_latency: Vec<(SchemeKind, f64)> = Vec::new();
    for scenario in scenarios {
        let runner = Runner::new(config(scenario)?)?;
        let mut results: Vec<(SchemeKind, RunResult)> = kinds
            .iter()
            .zip(runner.run_many(&kinds)?)
            .map(|(&k, r)| (k, r))
            .collect();
        // Rank by simulated time — the paper's headline metric.
        results.sort_by(|a, b| {
            a.1.total_latency_s()
                .partial_cmp(&b.1.total_latency_s())
                .expect("latencies are finite")
        });

        println!("— scenario: {} —", scenario.name());
        println!(
            "  {:<4} {:>6} {:>12} {:>10} {:>12}",
            "rank", "scheme", "latency", "accuracy", "energy"
        );
        for (rank, (kind, r)) in results.iter().enumerate() {
            let vs_static = static_latency
                .iter()
                .find(|(k, _)| k == kind)
                .map(|(_, base)| {
                    format!(
                        "  ({:+.0}% vs static)",
                        (r.total_latency_s() / base - 1.0) * 100.0
                    )
                })
                .unwrap_or_default();
            println!(
                "  {:<4} {:>6} {:>11.1}s {:>9.1}% {:>11.1}J{vs_static}",
                rank + 1,
                kind.name(),
                r.total_latency_s(),
                r.final_accuracy_pct(),
                r.total_client_energy_j(),
            );
        }
        println!();

        if scenario == Scenario::Static {
            static_latency = results
                .iter()
                .map(|(k, r)| (*k, r.total_latency_s()))
                .collect();
        }
    }

    println!("Latency ranks reshuffle with the environment (stragglers punish the");
    println!("sequential chain; dropouts shrink FL's straggler set), while energy");
    println!("stays a client-side story — CL spends none, FL pays full-model radio.");
    Ok(())
}
