//! Shared experiment context: data shards, test set, wireless model,
//! grouping.

use crate::config::{ExperimentConfig, GroupingKind, PartitionStrategy};
use crate::grouping::{assign_groups, ClientCost};
use crate::latency::SplitCosts;
use crate::population::Population;
use crate::recovery::RoundRecovery;
use crate::Result;
use gsfl_data::dataset::ImageDataset;
use gsfl_data::partition::Partition;
use gsfl_data::synth::SynthGtsrb;
use gsfl_tensor::rng::SeedDerive;
use gsfl_wireless::environment::{ChannelModel, RoundConditions};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a scheme needs to train: per-client shards, the test set,
/// the wireless environment and the group assignment. Built once per
/// experiment so every scheme sees identical data, channel and grouping.
#[derive(Debug, Clone)]
pub struct TrainContext {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Per-slot training shards (index = client id in dense mode, cohort
    /// slot in population mode, where this holds the round-0 cohort —
    /// [`TrainContext::round_shards`] materializes later rounds).
    pub train_shards: Vec<ImageDataset>,
    /// The sparse-population descriptor when the config enables
    /// population mode (`None` = every configured client is dense).
    pub population: Option<Population>,
    /// The shared training pool population cohorts draw their shards
    /// from (`Some` exactly when `population` is).
    pub train_pool: Option<ImageDataset>,
    /// The held-out test set.
    pub test_set: ImageDataset,
    /// The wireless environment (latency, compute, availability), built
    /// from the config's scenario. Shared because contexts are cloned
    /// across scheme threads.
    pub env: Arc<dyn ChannelModel>,
    /// GSFL group assignment (group → member client ids, in training
    /// order).
    pub groups: Vec<Vec<usize>>,
    /// Sample dims as fed to the model (`[3,h,w]` or `[d]`).
    pub sample_dims: Vec<usize>,
    /// Per-batch cost profile of the configured model at the configured
    /// cut.
    pub costs: SplitCosts,
    /// Valid candidate cut indices for the configured model, ascending.
    /// Just the configured cut when the policy is fixed; every valid cut
    /// otherwise. The policy *instance* is deliberately not here: each
    /// scheme run builds its own [`crate::cut::CutSelector`] so learned
    /// state never leaks across sessions or threads.
    pub cut_candidates: Vec<usize>,
    /// Per-candidate cost profiles (always contains the configured cut).
    pub costs_by_cut: BTreeMap<usize, SplitCosts>,
    /// The codec menu a per-round orchestrator may choose from (first
    /// entry = the configured compression spec). Just the configured
    /// spec when the orchestrator is static.
    pub codec_menu: Vec<crate::compression::CompressionSpec>,
}

impl TrainContext {
    /// Builds the context from a validated config.
    ///
    /// # Errors
    ///
    /// Propagates dataset, model and wireless construction errors.
    pub fn from_config(config: ExperimentConfig) -> Result<Self> {
        let seeds = SeedDerive::new(config.seed);
        // Train and test sets from independent generator streams.
        let train = SynthGtsrb::builder()
            .classes(config.dataset.classes)
            .samples_per_class(config.dataset.samples_per_class)
            .image_size(config.dataset.image_size)
            .augment(config.augment)
            .seed(seeds.child("train-data").seed())
            .generate()?;
        let test = SynthGtsrb::builder()
            .classes(config.dataset.classes)
            .samples_per_class(config.dataset.test_per_class)
            .image_size(config.dataset.image_size)
            .augment(config.augment)
            .seed(seeds.child("test-data").seed())
            .generate()?;

        // Flatten for MLP models.
        let (train, test) = if config.model.wants_flat_inputs() {
            (flatten(&train)?, flatten(&test)?)
        } else {
            (train, test)
        };
        let sample_dims = train.sample_dims();

        // Population mode keeps the training set pooled and materializes
        // per-round cohort shards on demand; dense mode partitions it
        // across the configured clients exactly as before.
        let population = match &config.population {
            Some(spec) => Some(Population::new(
                spec,
                config.clients,
                seeds.child("population").seed(),
            )?),
            None => None,
        };
        let (train_shards, train_pool) = if let Some(pop) = &population {
            let members = pop.sample_cohort(0);
            let shards = pop.materialize_cohort(&members, &train)?;
            (shards, Some(train))
        } else {
            let part_seed = seeds.child("partition").seed();
            let partition = match config.partition {
                PartitionStrategy::Iid => Partition::iid(&train, config.clients, part_seed)?,
                PartitionStrategy::Dirichlet(alpha) => {
                    Partition::dirichlet(&train, config.clients, alpha, part_seed)?
                }
                PartitionStrategy::Shards(k) => {
                    Partition::shards(&train, config.clients, k, part_seed)?
                }
            };
            (partition.materialize(&train)?, None)
        };

        let env = config.environment()?;

        // Cost profile of the split model (drives latency and load-aware
        // grouping). The configured compression shrinks the wire-size
        // fields via *measured* encodes — every byte the run will charge
        // is the `len()` of a wire buffer that actually existed (the
        // closed-form law is pinned equal by tests, so planner loops may
        // use the cheap `with_compression`). Compute and storage
        // accounting stay raw.
        let mut codec_ws = gsfl_tensor::Workspace::new();
        let model = config
            .model
            .build(&sample_dims, config.dataset.classes, config.seed)?;
        let costs = SplitCosts::compute(&model, config.cut(), &sample_dims, config.batch_size)?
            .measured_with_compression(&config.compression, &mut codec_ws);

        // Candidate cuts for per-round deciders (cut policy or
        // orchestrator): just the configured cut when both are static,
        // every valid split otherwise (with its cost profile, so
        // per-round decisions never recompute FLOP counts).
        let cut_candidates: Vec<usize> =
            if config.cut_policy.is_fixed() && config.orchestrator.is_static() {
                vec![config.cut()]
            } else {
                (1..model.depth()).collect()
            };
        let mut costs_by_cut = BTreeMap::new();
        for &cut in &cut_candidates {
            let c = if cut == config.cut() {
                costs
            } else {
                SplitCosts::compute(&model, cut, &sample_dims, config.batch_size)?
                    .measured_with_compression(&config.compression, &mut codec_ws)
            };
            costs_by_cut.insert(cut, c);
        }
        costs_by_cut.entry(config.cut()).or_insert(costs);

        // The orchestrator's codec menu (configured spec first). Note
        // `costs_by_cut` stays under the *configured* codec — planners
        // re-derive wire sizes per menu entry via `with_compression`.
        let codec_menu = if config.orchestrator.is_static() {
            vec![config.compression]
        } else {
            crate::orchestrator::codec_menu(&config.compression)
        };

        // Group assignment; load-aware strategies estimate per-client round
        // time from shard size, device rate and distance.
        let needs_costs = matches!(
            config.grouping,
            GroupingKind::ComputeBalanced | GroupingKind::ChannelAware
        );
        let client_costs: Option<Vec<ClientCost>> = if needs_costs {
            // Grouping is decided once, from the environment's initial
            // (round-0) conditions.
            let mut v = Vec::with_capacity(config.clients);
            for (c, shard) in train_shards.iter().enumerate() {
                let steps = shard.len().div_ceil(config.batch_size) as f64;
                let per_batch_flops = (costs.client_fwd_flops + costs.client_bwd_flops) as f64;
                let rate = env.device_rate(c, 0)?.as_flops_per_sec();
                v.push(ClientCost {
                    round_time_s: steps * per_batch_flops / rate,
                    distance_m: env.distance(c, 0)?.as_meters(),
                });
            }
            Some(v)
        } else {
            None
        };
        let groups = assign_groups(
            config.grouping,
            config.clients,
            config.groups,
            client_costs.as_deref(),
            seeds.child("grouping").seed(),
        )?;

        Ok(TrainContext {
            config,
            train_shards,
            population,
            train_pool,
            test_set: test,
            env,
            groups,
            sample_dims,
            costs,
            cut_candidates,
            costs_by_cut,
            codec_menu,
        })
    }

    /// Number of mini-batch steps client `c` runs per epoch over its shard.
    pub fn steps_for(&self, client: usize) -> usize {
        self.train_shards[client]
            .len()
            .div_ceil(self.config.batch_size)
    }

    /// Per-client step counts.
    pub fn steps_per_client(&self) -> Vec<usize> {
        (0..self.config.clients)
            .map(|c| self.steps_for(c))
            .collect()
    }

    /// Total training samples across all shards.
    pub fn total_samples(&self) -> usize {
        self.train_shards.iter().map(ImageDataset::len).sum()
    }

    /// Whether `client` participates in `round`: the environment's
    /// dropout injection (if any) and the configured availability
    /// probability must both let it through (deterministic per seed).
    pub fn is_available(&self, round: u64, client: usize) -> bool {
        if !self.env.is_available(client, round) {
            return false;
        }
        if self.config.availability >= 1.0 {
            return true;
        }
        use rand::Rng;
        let mut rng = SeedDerive::new(self.config.seed)
            .child("availability")
            .index(round)
            .index(client as u64)
            .rng();
        rng.gen::<f64>() < self.config.availability
    }

    /// The environment's [`RoundConditions`] snapshot for `round`.
    ///
    /// # Errors
    ///
    /// Propagates environment query errors.
    pub fn conditions(&self, round: u64) -> Result<RoundConditions> {
        Ok(self.env.conditions(round)?)
    }

    /// Per-slot training shards for `round`: the static partition in
    /// dense mode (borrowed, zero-cost), or the round's freshly
    /// materialized cohort in population mode. Population shards all
    /// have the same length ([`Population::shard_len`]), so step vectors
    /// computed at init stay valid — only the shard *contents* rotate
    /// with the sampled cohort.
    ///
    /// # Errors
    ///
    /// Propagates materialization errors.
    pub fn round_shards(&self, round: u64) -> Result<Cow<'_, [ImageDataset]>> {
        match (&self.population, &self.train_pool) {
            (Some(pop), Some(pool)) => {
                let members = pop.sample_cohort(round);
                Ok(Cow::Owned(pop.materialize_cohort(&members, pool)?))
            }
            _ => Ok(Cow::Borrowed(&self.train_shards)),
        }
    }

    /// The global population ids occupying the cohort slots in `round`
    /// (`None` in dense mode).
    pub fn cohort_members(&self, round: u64) -> Option<Vec<u64>> {
        self.population.as_ref().map(|p| p.sample_cohort(round))
    }

    /// Prepares the round's fault-recovery plan for the scheduled cohort
    /// `admitted` (in participation order). `available` is the full
    /// availability draw `admitted` was taken from: clients it holds
    /// beyond `admitted` (e.g. those a cohort cap excluded) are the
    /// dense-mode standby candidates. In population mode standbys are
    /// extra members drawn from the population's `"backups"` stream
    /// instead. A no-op [`crate::recovery::RecoverySpec`] returns the
    /// identity plan without touching any fault stream.
    pub fn round_recovery(
        &self,
        round: u64,
        admitted: &[usize],
        available: &[usize],
    ) -> RoundRecovery {
        let spec = &self.config.recovery;
        if spec.is_noop() {
            return RoundRecovery::default();
        }
        let spares: Vec<usize> = available
            .iter()
            .copied()
            .filter(|c| !admitted.contains(c))
            .collect();
        let population_backups = match &self.population {
            Some(p) => p.sample_backups(round, spec.backups),
            None => Vec::new(),
        };
        RoundRecovery::prepare(
            &self.config,
            self.env.as_ref(),
            admitted,
            &spares,
            &population_backups,
            |c| self.steps_for(c),
            round,
        )
    }

    /// [`TrainContext::round_shards`] with the recovery plan's
    /// population-mode backup substitutions applied: a slot whose
    /// primary crashed trains the replacement member's freshly
    /// materialized shard. Dense mode (no overrides) is untouched.
    ///
    /// # Errors
    ///
    /// Propagates materialization errors.
    pub fn round_shards_recovered(
        &self,
        round: u64,
        recovery: &RoundRecovery,
    ) -> Result<Cow<'_, [ImageDataset]>> {
        let mut shards = self.round_shards(round)?;
        if let (Some(pop), Some(pool)) = (&self.population, &self.train_pool) {
            if !recovery.member_overrides.is_empty() {
                let owned = shards.to_mut();
                for (&slot, &member) in &recovery.member_overrides {
                    owned[slot] = pop.materialize_member(member, pool)?;
                }
            }
        }
        Ok(shards)
    }

    /// The clients participating in `round`. Never empty: if the draw
    /// leaves nobody reachable, the AP waits for the first client to come
    /// back — modeled as that round running with the deterministic
    /// first-choice client.
    pub fn available_clients(&self, round: u64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.config.clients)
            .filter(|&c| self.is_available(round, c))
            .collect();
        if v.is_empty() {
            v.push((round as usize) % self.config.clients);
        }
        v
    }
}

fn flatten(ds: &ImageDataset) -> Result<ImageDataset> {
    let n = ds.len();
    let d: usize = ds.sample_dims().iter().product();
    let images = ds.images().reshape(&[n, d])?;
    Ok(ImageDataset::new(
        images,
        ds.labels().to_vec(),
        ds.num_classes(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, ExperimentConfig, ModelKind};

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig::builder()
            .clients(6)
            .groups(2)
            .rounds(2)
            .batch_size(4)
            .dataset(DatasetConfig {
                classes: 4,
                samples_per_class: 6,
                test_per_class: 2,
                image_size: 8,
            })
            .model(ModelKind::Mlp { hidden: vec![16] })
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn context_builds_consistently() {
        let ctx = TrainContext::from_config(tiny_config()).unwrap();
        assert_eq!(ctx.train_shards.len(), 6);
        assert_eq!(ctx.total_samples(), 24);
        assert_eq!(ctx.test_set.len(), 8);
        assert_eq!(ctx.groups.len(), 2);
        // MLP ⇒ flattened samples.
        assert_eq!(ctx.sample_dims, vec![3 * 8 * 8]);
        assert!(ctx.costs.client_model_bytes.as_u64() > 0);
    }

    #[test]
    fn deterministic_context() {
        let a = TrainContext::from_config(tiny_config()).unwrap();
        let b = TrainContext::from_config(tiny_config()).unwrap();
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.train_shards[0], b.train_shards[0]);
    }

    #[test]
    fn steps_round_up() {
        let ctx = TrainContext::from_config(tiny_config()).unwrap();
        for c in 0..6 {
            let expect = ctx.train_shards[c].len().div_ceil(4);
            assert_eq!(ctx.steps_for(c), expect);
        }
    }

    #[test]
    fn population_context_is_cohort_sized() {
        let mut cfg = tiny_config();
        cfg.population = Some(crate::population::PopulationConfig {
            clients: 50_000,
            samples_per_client: 0,
        });
        let ctx = TrainContext::from_config(cfg).unwrap();
        // Everything is sized to the cohort, not the 50k population.
        assert_eq!(ctx.train_shards.len(), 6);
        assert_eq!(ctx.steps_per_client().len(), 6);
        let r0 = ctx.round_shards(0).unwrap();
        assert_eq!(
            r0.as_ref(),
            ctx.train_shards.as_slice(),
            "init holds the round-0 cohort"
        );
        let r1 = ctx.round_shards(1).unwrap();
        assert_eq!(r1.len(), 6);
        assert_ne!(r1.as_ref(), ctx.train_shards.as_slice(), "cohorts rotate");
        // Constant shard sizes keep init-time step vectors valid.
        assert!(r1.iter().all(|s| s.len() == r1[0].len()));
        let members = ctx.cohort_members(1).unwrap();
        assert_eq!(members.len(), 6);
        assert!(members.iter().all(|&m| m < 50_000));
        // Dense mode has no cohort and borrows its shards.
        let dense = TrainContext::from_config(tiny_config()).unwrap();
        assert!(dense.cohort_members(0).is_none());
        assert!(matches!(dense.round_shards(5).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn load_aware_grouping_builds() {
        let mut cfg = tiny_config();
        cfg.grouping = crate::config::GroupingKind::ComputeBalanced;
        let ctx = TrainContext::from_config(cfg).unwrap();
        assert_eq!(ctx.groups.iter().map(Vec::len).sum::<usize>(), 6);
    }
}
