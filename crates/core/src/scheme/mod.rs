//! Training schemes: the GSFL contribution and its baselines.
//!
//! Every scheme implements the [`Scheme`] trait — per-run state built by
//! [`Scheme::init`], one training round per [`Scheme::run_round`] — and
//! the shared round loop (eval cadence, recording, stopping) lives in the
//! generic session driver ([`crate::runner::Session`]). New schemes
//! plug in through [`SchemeRegistry`] without touching the driver.

mod centralized;
mod common;
mod federated;
mod gsfl;
mod split;
mod splitfed;

pub use centralized::Centralized;
pub use federated::Federated;
pub use gsfl::Gsfl;
pub use split::VanillaSplit;
pub use splitfed::SplitFed;

pub(crate) use common::{eval_params, should_eval, Recorder};

use crate::context::TrainContext;
use crate::latency::RoundLatency;
use crate::results::RunResult;
use crate::storage::server_storage_bytes;
use crate::Result;
use gsfl_nn::params::ParamVec;
use serde::{Deserialize, Serialize};

/// What one training round produced, as reported by a [`Scheme`] to the
/// session driver.
#[derive(Debug, Clone, Copy)]
pub struct RoundOutcome {
    /// Simulated latency, traffic and energy charged for the round.
    pub latency: RoundLatency,
    /// Mean training loss over the round's steps.
    pub train_loss: f64,
    /// Whether the round ended in a server-side model aggregation
    /// (FedAvg); drives the `Aggregated` session event.
    pub aggregated: bool,
}

/// A training scheme driven round-by-round by the session runner.
///
/// The driver owns the round loop: it calls [`Scheme::init`] once, then
/// [`Scheme::run_round`] for rounds `1..=rounds`, evaluating
/// [`Scheme::global_params`] on the session's eval cadence and consulting
/// its stop policy after every round. Implementations keep all mutable
/// training state internal so a fresh instance reproduces a run
/// bit-for-bit.
pub trait Scheme: Send {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Short lowercase name used in CSV output and file stems.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Builds per-run state against a context. Must be called exactly
    /// once before [`Scheme::run_round`].
    ///
    /// # Errors
    ///
    /// Propagates model/dataset construction errors.
    fn init(&mut self, ctx: &TrainContext) -> Result<()>;

    /// Executes training round `round` (1-based).
    ///
    /// # Errors
    ///
    /// Propagates training, wireless or simulation errors; fails if
    /// [`Scheme::init`] has not run.
    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome>;

    /// The current global full-model parameters (client ++ server halves
    /// for split schemes), used by the driver for evaluation.
    ///
    /// # Errors
    ///
    /// Fails if [`Scheme::init`] has not run.
    fn global_params(&self) -> Result<ParamVec>;

    /// Bytes of model state resident on the edge server while this
    /// scheme runs (the paper's §I storage argument).
    fn storage_bytes(&self, ctx: &TrainContext) -> u64 {
        let full = ctx.costs.full_model_bytes.as_u64();
        let server_side = full.saturating_sub(ctx.costs.client_model_bytes.as_u64());
        server_storage_bytes(
            self.kind(),
            ctx.config.clients,
            ctx.config.groups,
            server_side,
            full,
        )
    }
}

/// The schemes the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Centralized learning: all data pooled at the server.
    Centralized,
    /// Federated learning (FedAvg over full models).
    Federated,
    /// Vanilla split learning: strictly sequential clients, one
    /// client-side and one server-side model, relay through the AP.
    VanillaSplit,
    /// SplitFed v1: all clients parallel, one server-side model per
    /// client, FedAvg of both halves.
    SplitFed,
    /// Group-based split federated learning — the paper's contribution.
    Gsfl,
}

impl SchemeKind {
    /// Short lowercase name used in CSV output and file stems.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Centralized => "cl",
            SchemeKind::Federated => "fl",
            SchemeKind::VanillaSplit => "sl",
            SchemeKind::SplitFed => "sfl",
            SchemeKind::Gsfl => "gsfl",
        }
    }

    /// The kind for a short name (`"cl"`, `"fl"`, `"sl"`, `"sfl"`,
    /// `"gsfl"`), or `None` for an unknown name.
    pub fn from_name(name: &str) -> Option<SchemeKind> {
        SchemeKind::all().into_iter().find(|k| k.name() == name)
    }

    /// All schemes, in the order the paper's Fig. 2(a) presents them.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::Centralized,
            SchemeKind::VanillaSplit,
            SchemeKind::Gsfl,
            SchemeKind::Federated,
            SchemeKind::SplitFed,
        ]
    }

    /// A fresh, uninitialized [`Scheme`] instance of this kind.
    pub fn scheme(self) -> Box<dyn Scheme> {
        match self {
            SchemeKind::Centralized => Box::new(Centralized::new()),
            SchemeKind::Federated => Box::new(Federated::new()),
            SchemeKind::VanillaSplit => Box::new(VanillaSplit::new()),
            SchemeKind::SplitFed => Box::new(SplitFed::new()),
            SchemeKind::Gsfl => Box::new(Gsfl::new()),
        }
    }

    /// Runs the scheme to completion against a context (one-shot
    /// convenience over the session driver).
    ///
    /// # Errors
    ///
    /// Propagates training, wireless or simulation errors.
    pub fn run(&self, ctx: &TrainContext) -> Result<RunResult> {
        crate::runner::Session::over(ctx, *self)?.run_to_end()
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A name-indexed registry of scheme constructors.
///
/// Bench binaries and tests dispatch by name through the registry so new
/// schemes (or external experiment drivers) need only one registration
/// point. [`SchemeRegistry::builtin`] pre-registers all five paper
/// schemes.
pub struct SchemeRegistry {
    entries: Vec<(&'static str, SchemeConstructor)>,
}

/// A boxed constructor producing fresh scheme instances.
type SchemeConstructor = Box<dyn Fn() -> Box<dyn Scheme> + Send + Sync>;

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemeRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding all five built-in schemes, in
    /// [`SchemeKind::all`] order.
    pub fn builtin() -> Self {
        let mut reg = SchemeRegistry::new();
        for kind in SchemeKind::all() {
            reg.register(kind.name(), move || kind.scheme());
        }
        reg
    }

    /// Registers (or replaces) a scheme constructor under `name`.
    pub fn register(
        &mut self,
        name: &'static str,
        constructor: impl Fn() -> Box<dyn Scheme> + Send + Sync + 'static,
    ) {
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = Box::new(constructor);
        } else {
            self.entries.push((name, Box::new(constructor)));
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Builds a fresh scheme instance by name.
    pub fn create(&self, name: &str) -> Option<Box<dyn Scheme>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }
}

impl Default for SchemeRegistry {
    fn default() -> Self {
        SchemeRegistry::builtin()
    }
}

impl std::fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            SchemeKind::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SchemeKind::Gsfl.to_string(), "gsfl");
    }

    #[test]
    fn name_round_trips_through_lookup() {
        for kind in SchemeKind::all() {
            assert_eq!(SchemeKind::from_name(kind.name()), Some(kind));
            let scheme = kind.scheme();
            assert_eq!(scheme.kind(), kind);
            assert_eq!(scheme.name(), kind.name());
        }
        assert_eq!(SchemeKind::from_name("nope"), None);
    }

    #[test]
    fn registry_builds_every_builtin() {
        let reg = SchemeRegistry::builtin();
        assert_eq!(reg.names().len(), 5);
        for kind in SchemeKind::all() {
            let scheme = reg.create(kind.name()).expect("registered");
            assert_eq!(scheme.kind(), kind);
        }
        assert!(reg.create("unknown").is_none());
    }

    #[test]
    fn registry_register_replaces() {
        let mut reg = SchemeRegistry::builtin();
        reg.register("gsfl", || Box::new(Gsfl::new()));
        assert_eq!(reg.names().len(), 5, "replacement must not duplicate");
        reg.register("custom", || Box::new(Centralized::new()));
        assert_eq!(reg.names().len(), 6);
        assert_eq!(
            reg.create("custom").unwrap().kind(),
            SchemeKind::Centralized
        );
    }
}
