//! Training schemes: the GSFL contribution and its baselines.

mod centralized;
mod common;
mod federated;
mod gsfl;
mod split;
mod splitfed;

pub use centralized::Centralized;
pub use federated::Federated;
pub use gsfl::Gsfl;
pub use split::VanillaSplit;
pub use splitfed::SplitFed;

use crate::context::TrainContext;
use crate::results::RunResult;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The schemes the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Centralized learning: all data pooled at the server.
    Centralized,
    /// Federated learning (FedAvg over full models).
    Federated,
    /// Vanilla split learning: strictly sequential clients, one
    /// client-side and one server-side model, relay through the AP.
    VanillaSplit,
    /// SplitFed v1: all clients parallel, one server-side model per
    /// client, FedAvg of both halves.
    SplitFed,
    /// Group-based split federated learning — the paper's contribution.
    Gsfl,
}

impl SchemeKind {
    /// Short lowercase name used in CSV output and file stems.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Centralized => "cl",
            SchemeKind::Federated => "fl",
            SchemeKind::VanillaSplit => "sl",
            SchemeKind::SplitFed => "sfl",
            SchemeKind::Gsfl => "gsfl",
        }
    }

    /// All schemes, in the order the paper's Fig. 2(a) presents them.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::Centralized,
            SchemeKind::VanillaSplit,
            SchemeKind::Gsfl,
            SchemeKind::Federated,
            SchemeKind::SplitFed,
        ]
    }

    /// Runs the scheme against a context.
    ///
    /// # Errors
    ///
    /// Propagates training, wireless or simulation errors.
    pub fn run(&self, ctx: &TrainContext) -> Result<RunResult> {
        match self {
            SchemeKind::Centralized => Centralized::run(ctx),
            SchemeKind::Federated => Federated::run(ctx),
            SchemeKind::VanillaSplit => VanillaSplit::run(ctx),
            SchemeKind::SplitFed => SplitFed::run(ctx),
            SchemeKind::Gsfl => Gsfl::run(ctx),
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            SchemeKind::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SchemeKind::Gsfl.to_string(), "gsfl");
    }
}
