//! Group-based split federated learning — the paper's contribution.

use super::common::{
    feedback_key, join_params, make_batcher, make_cut_channel_for, make_opt, require_state,
    require_state_mut, split_train_epoch, CutLink, FeedbackStore, ModelCodec,
};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::aggregate::aggregate_tree;
use crate::compression::CompressionSpec;
use crate::context::TrainContext;
use crate::latency::gsfl_round_recovered;
use crate::orchestrator::PlanSelector;
use crate::parallel::{round_fanout, run_indexed};
use crate::population::CowParams;
use crate::Result;
use gsfl_data::dataset::ImageDataset;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;
use gsfl_tensor::workspace::Workspace;

/// Outcome of one group's pass in a round.
struct GroupPass {
    client_params: ParamVec,
    server_params: ParamVec,
    loss_sum: f64,
    steps: usize,
    samples: usize,
    /// Updated EF21 relay-codec residuals, `(feedback key, residual)`
    /// in chain order — written back serially after the parallel
    /// section.
    residuals: Vec<(u64, Vec<f32>)>,
}

/// GSFL: the N clients are partitioned into M groups. Each group holds a
/// replica of the client-side and server-side models; inside a group,
/// clients train sequentially in split-learning fashion with the
/// client-side model relayed through the AP; groups run in parallel.
/// When every group finishes, the AP FedAvg-aggregates the M client-side
/// and M server-side models (weighted by group sample counts) into the
/// next round's global halves.
///
/// Group training really runs on parallel host threads, clamped through
/// the shared [`gsfl_tensor::threading`] budget (or forced by
/// [`crate::config::ExperimentConfig::client_threads`]); results are
/// deterministic because each group's work is independent and
/// aggregation order is fixed.
#[derive(Debug, Default)]
pub struct Gsfl {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    /// Architecture template; parameters are loaded from `global` and the
    /// network is split at the round's cut before training.
    template: Sequential,
    /// Current global full-model parameters (client ++ server halves),
    /// shared copy-on-write across the round's replicas.
    global: CowParams,
    /// This run's private plan-selection state (fresh per init, so
    /// bandit feedback never leaks across sessions).
    plans: PlanSelector,
    steps: Vec<usize>,
    /// Recycled aggregation scratch — dead snapshots and the `f64`
    /// accumulator cycle through this pool.
    ws: Workspace,
    /// Per-client EF21 residuals for the relay-hop model codec,
    /// carried across rounds.
    feedback: FeedbackStore,
}

impl Gsfl {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        Gsfl::default()
    }
}

impl Scheme for Gsfl {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Gsfl
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let global = CowParams::new(ParamVec::from_network(&net));
        self.state = Some(State {
            template: net,
            global,
            plans: PlanSelector::from_config(&ctx.config),
            steps: ctx.steps_per_client(),
            ws: Workspace::new(),
            feedback: FeedbackStore::default(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        // The plan selector picks this round's joint cut × codec ×
        // shares decision from the live conditions (the static path
        // short-circuits to the config through the cut policy).
        let (plan, costs) = state.plans.plan_for_round(ctx, round as u64)?;
        // Split the current global model at the chosen cut: parameters
        // are preserved across the split, so replicas start from the
        // aggregated state exactly as before.
        let mut whole = state.template.clone();
        state.global.load_into(&mut whole)?;
        let split_template = SplitNetwork::split(whole, plan.cut)?;
        // Per-round participation: groups shrink to their reachable
        // members; fully-unreachable groups sit this round out. A
        // cohort cap admits only the head of the deterministic
        // participant order. GSFL shares one split template across a
        // group's chain, so per-client cuts are not exercised here —
        // SplitFed (per-client replicas) honors them.
        let available = ctx.available_clients(round as u64);
        let mut admitted = available.clone();
        if let Some(k) = plan.cohort {
            admitted.truncate(k);
        }
        let round_groups: Vec<Vec<usize>> = ctx
            .groups
            .iter()
            .map(|members| {
                members
                    .iter()
                    .copied()
                    .filter(|c| admitted.contains(c))
                    .collect::<Vec<usize>>()
            })
            .filter(|g| !g.is_empty())
            .collect();
        // Fault-aware pricing runs *before* training: the fate decides
        // which chain segments actually reach the AP. A crashed member
        // with no standby drops out of its group's chain (the relay the
        // AP holds skips it); a standby re-runs the slot's segment; a
        // group that misses the round deadline contributes nothing.
        let planned: Vec<usize> = round_groups.iter().flatten().copied().collect();
        let recovery = ctx.round_recovery(round as u64, &planned, &available);
        let (mut latency, fate) = gsfl_round_recovered(
            ctx.env.as_ref(),
            &vec![costs; round_groups.len()],
            &state.steps,
            &round_groups,
            cfg.bandwidth_policy,
            cfg.channel,
            round as u64,
            plan.shares.as_deref(),
            &recovery.plan,
        )?;
        if !recovery.quorum_met(&fate) {
            // Quorum miss: charged and recorded, nothing aggregates —
            // the global model is left unchanged.
            latency.faults.quorum_met = false;
            state.plans.observe_outcome(round as u64, &plan, &latency);
            return Ok(RoundOutcome {
                latency,
                train_loss: 0.0,
                aggregated: false,
            });
        }
        // Each group's chain, reduced to the slots that delivered and
        // re-pointed at who actually trains them (a standby covers its
        // crashed primary's slot). Groups with no survivor sit the
        // aggregation out entirely.
        let surviving_groups: Vec<Vec<usize>> = round_groups
            .iter()
            .map(|members| {
                members
                    .iter()
                    .copied()
                    .filter(|&c| fate.survived(c))
                    .map(|c| recovery.trainee_for(c))
                    .collect::<Vec<usize>>()
            })
            .filter(|g| !g.is_empty())
            .collect();
        let shards = ctx.round_shards_recovered(round as u64, &recovery)?;
        // EF residual key for each surviving trainee (group mapping
        // already replaced slots with trainee ids, so index the keys by
        // trainee before the parallel section).
        let cohort = ctx.cohort_members(round as u64);
        let mut keys_by_trainee = std::collections::BTreeMap::new();
        for g in &round_groups {
            for &slot in g {
                if fate.survived(slot) {
                    keys_by_trainee.insert(
                        recovery.trainee_for(slot),
                        feedback_key(cohort.as_deref(), &recovery, slot),
                    );
                }
            }
        }
        let passes = run_groups_parallel(
            ctx,
            &surviving_groups,
            shards.as_ref(),
            &split_template,
            &plan.codec,
            &state.feedback,
            &keys_by_trainee,
            round as u64,
        )?;

        // Two-tier FedAvg over both halves, weighted by group samples:
        // each group's AP (where its replica lives) reduces first, the
        // backhaul tier merges — bit-identical to flat aggregation (see
        // `crate::aggregate`).
        let mut group_aps = Vec::with_capacity(surviving_groups.len());
        for g in &surviving_groups {
            group_aps.push(ctx.env.ap_of(g[g.len() - 1], round as u64)?);
        }
        let mut client_snaps = Vec::with_capacity(passes.len());
        let mut server_snaps = Vec::with_capacity(passes.len());
        let mut weights = Vec::with_capacity(passes.len());
        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        for p in passes {
            client_snaps.push(p.client_params);
            server_snaps.push(p.server_params);
            weights.push(p.samples as f64);
            loss_sum += p.loss_sum;
            step_sum += p.steps;
            // Serial write-back in fixed group/chain order keeps
            // parallel rounds byte-identical to sequential.
            for (key, res) in p.residuals {
                state.feedback.store(key, res);
            }
        }
        let global_client = aggregate_tree(&client_snaps, &weights, &group_aps, &mut state.ws)?;
        let global_server = aggregate_tree(&server_snaps, &weights, &group_aps, &mut state.ws)?;
        state
            .global
            .replace(join_params(&global_client.params, &global_server.params));
        // Dead buffers feed the next round's aggregation scratch.
        state.ws.give(global_client.params.into_values());
        state.ws.give(global_server.params.into_values());
        for snap in client_snaps.into_iter().chain(server_snaps) {
            state.ws.give(snap.into_values());
        }

        state.plans.observe_outcome(round as u64, &plan, &latency);
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: true,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(state.global.get().clone())
    }
}

/// Trains every group for one round, fanning groups out over the
/// thread-budgeted host parallelism in fixed group order. The template
/// already carries the round's global parameters; `shards` holds the
/// round's per-slot training data (the cohort in population mode).
#[allow(clippy::too_many_arguments)]
fn run_groups_parallel(
    ctx: &TrainContext,
    groups: &[Vec<usize>],
    shards: &[ImageDataset],
    template: &SplitNetwork,
    codec: &CompressionSpec,
    feedback: &FeedbackStore,
    keys_by_trainee: &std::collections::BTreeMap<usize, u64>,
    round: u64,
) -> Result<Vec<GroupPass>> {
    let (threads, _grant) = round_fanout(&ctx.config, groups.len());
    let ef = codec.error_feedback;
    run_indexed(groups.len(), threads, |idx| {
        let members = &groups[idx];
        let mut replica = template.clone();
        let cfg = &ctx.config;
        let mut client_opt = make_opt(cfg);
        let mut server_opt = make_opt(cfg);
        let mut channel = make_cut_channel_for(codec);
        // The client half is re-encoded on every wire crossing: each
        // relay hop between members and the final upload to the AP, as a
        // delta against the state the hop started from. Streams depend
        // only on (seed, round, client), so group-parallel threads stay
        // byte-identical.
        let mut model_codec = ModelCodec::new(&codec.client_model, cfg.seed);
        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        let mut samples = 0usize;
        let mut residuals = Vec::new();
        for &c in members {
            let relay_ref = model_codec
                .active()
                .then(|| ParamVec::from_network(&replica.client));
            let batcher = make_batcher(cfg, c)?;
            let (l, s) = split_train_epoch(
                &mut replica,
                &mut client_opt,
                &mut server_opt,
                &shards[c],
                &batcher,
                round,
                CutLink::new(cfg, &mut channel, c),
            )?;
            if let Some(reference) = relay_ref {
                let key = keys_by_trainee.get(&c).copied().unwrap_or(c as u64);
                let mut residual = feedback.fetch(ef, key);
                model_codec.apply(&mut replica.client, &reference, residual.as_mut(), round, c)?;
                if let Some(res) = residual {
                    residuals.push((key, res));
                }
            }
            loss_sum += l;
            step_sum += s;
            samples += shards[c].len();
        }
        Ok(GroupPass {
            client_params: ParamVec::from_network(&replica.client),
            server_params: ParamVec::from_network(&replica.server),
            loss_sum,
            steps: step_sum,
            samples,
            residuals,
        })
    })
}
