//! Group-based split federated learning — the paper's contribution.

use super::common::{
    eval_params, join_params, make_batcher, make_opt, should_eval, split_train_epoch,
    target_reached, Recorder,
};
use crate::aggregate::aggregate_snapshots;
use crate::context::TrainContext;
use crate::latency::gsfl_round;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::storage::server_storage_bytes;
use crate::{CoreError, Result};
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;

/// Outcome of one group's pass in a round.
struct GroupPass {
    client_params: ParamVec,
    server_params: ParamVec,
    loss_sum: f64,
    steps: usize,
    samples: usize,
}

/// GSFL: the N clients are partitioned into M groups. Each group holds a
/// replica of the client-side and server-side models; inside a group,
/// clients train sequentially in split-learning fashion with the
/// client-side model relayed through the AP; groups run in parallel.
/// When every group finishes, the AP FedAvg-aggregates the M client-side
/// and M server-side models (weighted by group sample counts) into the
/// next round's global halves.
///
/// Group training really runs on parallel host threads (crossbeam scope);
/// results are deterministic because each group's work is independent and
/// aggregation order is fixed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gsfl;

impl Gsfl {
    /// Runs GSFL for the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates training, aggregation, wireless or simulation errors.
    pub fn run(ctx: &TrainContext) -> Result<RunResult> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let mut eval_net = net.clone();
        let split_template = SplitNetwork::split(net, cfg.cut())?;
        let mut global_client = ParamVec::from_network(&split_template.client);
        let mut global_server = ParamVec::from_network(&split_template.server);
        let steps = ctx.steps_per_client();
        let mut rec = Recorder::new(SchemeKind::Gsfl.name());

        for round in 1..=cfg.rounds {
            // Per-round participation: groups shrink to their reachable
            // members; fully-unreachable groups sit this round out.
            let available = ctx.available_clients(round as u64);
            let round_groups: Vec<Vec<usize>> = ctx
                .groups
                .iter()
                .map(|members| {
                    members
                        .iter()
                        .copied()
                        .filter(|c| available.contains(c))
                        .collect::<Vec<usize>>()
                })
                .filter(|g| !g.is_empty())
                .collect();
            let passes = run_groups_parallel(
                ctx,
                &round_groups,
                &split_template,
                &global_client,
                &global_server,
                round as u64,
            )?;

            // Step 3: FedAvg over both halves, weighted by group samples.
            let weights: Vec<f64> = passes.iter().map(|p| p.samples as f64).collect();
            let client_snaps: Vec<ParamVec> =
                passes.iter().map(|p| p.client_params.clone()).collect();
            let server_snaps: Vec<ParamVec> =
                passes.iter().map(|p| p.server_params.clone()).collect();
            global_client = aggregate_snapshots(&client_snaps, &weights)?;
            global_server = aggregate_snapshots(&server_snaps, &weights)?;

            let loss_sum: f64 = passes.iter().map(|p| p.loss_sum).sum();
            let step_sum: usize = passes.iter().map(|p| p.steps).sum();

            let latency = gsfl_round(
                &ctx.latency,
                &ctx.costs,
                &steps,
                &round_groups,
                cfg.bandwidth_policy,
                cfg.channel,
                round as u64,
            )?;
            let acc = if should_eval(cfg, round) {
                let joined = join_params(&global_client, &global_server);
                Some(eval_params(ctx, &mut eval_net, &joined)?)
            } else {
                None
            };
            rec.push(round, latency, loss_sum / step_sum.max(1) as f64, acc);
            if target_reached(cfg, acc) {
                break;
            }
        }
        let server_bytes = ctx
            .costs
            .full_model_bytes
            .as_u64()
            .saturating_sub(ctx.costs.client_model_bytes.as_u64());
        let storage = server_storage_bytes(
            SchemeKind::Gsfl,
            cfg.clients,
            cfg.groups,
            server_bytes,
            ctx.costs.full_model_bytes.as_u64(),
        );
        Ok(rec.finish(storage, eval_net.param_count()))
    }
}

/// Trains every group for one round on its own host thread.
fn run_groups_parallel(
    ctx: &TrainContext,
    groups: &[Vec<usize>],
    template: &SplitNetwork,
    global_client: &ParamVec,
    global_server: &ParamVec,
    round: u64,
) -> Result<Vec<GroupPass>> {
    let results: Vec<Result<GroupPass>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .map(|members| {
                let mut replica = template.clone();
                scope.spawn(move |_| -> Result<GroupPass> {
                    global_client.load_into(&mut replica.client)?;
                    global_server.load_into(&mut replica.server)?;
                    let cfg = &ctx.config;
                    let mut client_opt = make_opt(cfg);
                    let mut server_opt = make_opt(cfg);
                    let mut loss_sum = 0.0f64;
                    let mut step_sum = 0usize;
                    let mut samples = 0usize;
                    for &c in members {
                        let batcher = make_batcher(cfg, c)?;
                        let (l, s) = split_train_epoch(
                            &mut replica,
                            &mut client_opt,
                            &mut server_opt,
                            &ctx.train_shards[c],
                            &batcher,
                            round,
                        )?;
                        loss_sum += l;
                        step_sum += s;
                        samples += ctx.train_shards[c].len();
                    }
                    Ok(GroupPass {
                        client_params: ParamVec::from_network(&replica.client),
                        server_params: ParamVec::from_network(&replica.server),
                        loss_sum,
                        steps: step_sum,
                        samples,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(CoreError::Config("group thread panicked".into())))
            })
            .collect()
    })
    .map_err(|_| CoreError::Config("crossbeam scope panicked".into()))?;
    results.into_iter().collect()
}
