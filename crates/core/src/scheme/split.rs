//! Vanilla split learning (SL): the sequential baseline.

use super::common::{
    feedback_key, join_params, make_batcher, make_cut_channel_for, make_opt, require_state,
    require_state_mut, split_train_epoch, CutLink, FeedbackStore, ModelCodec,
};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::context::TrainContext;
use crate::latency::sl_round_recovered;
use crate::orchestrator::PlanSelector;
use crate::Result;
use gsfl_nn::optim::Sgd;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;

/// Vanilla split learning: one client-side and one server-side model;
/// clients train strictly one after another, each receiving the
/// client-side model through the AP relay. No aggregation — the model
/// state simply accumulates SGD steps as it visits every client.
///
/// Under the fixed cut policy the split (and its optimizers, including
/// any momentum state) persists across rounds exactly as before. Under
/// an adaptive [`crate::cut::CutPolicy`] the model is re-split at each
/// round's chosen cut; the config validation guarantees `momentum == 0`
/// there, so per-round optimizers are state-free and nothing is lost in
/// the re-split.
#[derive(Debug, Default)]
pub struct VanillaSplit {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    mode: Mode,
    /// This run's private plan-selection state (cut policy and/or
    /// orchestrator).
    plans: PlanSelector,
    steps: Vec<usize>,
    /// Per-client EF21 residuals for the relay-hop model codec,
    /// carried across rounds.
    feedback: FeedbackStore,
}

// One State exists per run, so the variants' size gap costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Mode {
    /// The historical path: a persistent split and persistent optimizers.
    Fixed {
        split: SplitNetwork,
        client_opt: Sgd,
        server_opt: Sgd,
    },
    /// Adaptive cuts: the full model travels between rounds; each round
    /// splits it at the policy's cut.
    Adaptive {
        template: Sequential,
        global: ParamVec,
    },
}

impl VanillaSplit {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        VanillaSplit::default()
    }
}

impl Scheme for VanillaSplit {
    fn kind(&self) -> SchemeKind {
        SchemeKind::VanillaSplit
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        // The persistent-split fast path needs the cut to never move:
        // both the cut policy and the orchestrator must be static.
        let mode = if cfg.cut_policy.is_fixed() && cfg.orchestrator.is_static() {
            Mode::Fixed {
                split: SplitNetwork::split(net, cfg.cut())?,
                client_opt: make_opt(cfg),
                server_opt: make_opt(cfg),
            }
        } else {
            let global = ParamVec::from_network(&net);
            Mode::Adaptive {
                template: net,
                global,
            }
        };
        self.state = Some(State {
            mode,
            plans: PlanSelector::from_config(cfg),
            steps: ctx.steps_per_client(),
            feedback: FeedbackStore::default(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        // Unavailable clients are skipped this round (the relay goes
        // straight to the next reachable client).
        let available = ctx.available_clients(round as u64);
        let mut order = available.clone();
        let (plan, costs) = state.plans.plan_for_round(ctx, round as u64)?;
        // A cohort cap admits only the head of the deterministic
        // participant order (SL ignores per-client cuts — there is one
        // shared model chain).
        if let Some(k) = plan.cohort {
            order.truncate(k);
        }
        // Fault-aware pricing runs *before* training: a crashed client's
        // SGD steps never reach the AP (its model upload is lost), so
        // the chain trains exactly the surviving slots — a backup
        // standby re-runs a crashed slot's segment.
        let recovery = ctx.round_recovery(round as u64, &order, &available);
        let (mut latency, fate) = sl_round_recovered(
            ctx.env.as_ref(),
            &costs,
            &state.steps,
            &order,
            cfg.channel,
            round as u64,
            plan.shares.as_deref(),
            &recovery.plan,
        )?;
        if !recovery.quorum_met(&fate) {
            // Quorum miss: the round is charged and recorded, but no
            // client's steps persist — the chain restarts next round
            // from the model state it holds now.
            latency.faults.quorum_met = false;
            state.plans.observe_outcome(round as u64, &plan, &latency);
            return Ok(RoundOutcome {
                latency,
                train_loss: 0.0,
                aggregated: false,
            });
        }
        // Dense mode borrows the static shards; population mode
        // materializes this round's sampled cohort (with any backup
        // members substituted into their slots).
        let shards = ctx.round_shards_recovered(round as u64, &recovery)?;

        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        let mut channel = make_cut_channel_for(&plan.codec);
        // The client-side model codec bites on every AP relay hop: after
        // each client's segment the client half travels client → AP →
        // next client as a delta against the state the hop started from.
        let mut model_codec = ModelCodec::new(&plan.codec.client_model, cfg.seed);
        let ef = plan.codec.error_feedback;
        let members = ctx.cohort_members(round as u64);
        let feedback = &mut state.feedback;
        match &mut state.mode {
            Mode::Fixed {
                split,
                client_opt,
                server_opt,
            } => {
                for &slot in &fate.survivors {
                    let c = recovery.trainee_for(slot);
                    let relay_ref = model_codec
                        .active()
                        .then(|| ParamVec::from_network(&split.client));
                    let batcher = make_batcher(cfg, c)?;
                    let (l, s) = split_train_epoch(
                        split,
                        client_opt,
                        server_opt,
                        &shards[c],
                        &batcher,
                        round as u64,
                        CutLink::new(cfg, &mut channel, c),
                    )?;
                    if let Some(reference) = relay_ref {
                        let key = feedback_key(members.as_deref(), &recovery, slot);
                        let mut residual = feedback.fetch(ef, key);
                        model_codec.apply(
                            &mut split.client,
                            &reference,
                            residual.as_mut(),
                            round as u64,
                            c,
                        )?;
                        if let Some(res) = residual {
                            feedback.store(key, res);
                        }
                    }
                    loss_sum += l;
                    step_sum += s;
                }
                client_opt.advance_round();
                server_opt.advance_round();
            }
            Mode::Adaptive { template, global } => {
                let mut whole = template.clone();
                global.load_into(&mut whole)?;
                let mut split = SplitNetwork::split(whole, plan.cut)?;
                // Momentum is 0 by validation, so fresh per-round
                // optimizers are exactly the persistent ones.
                let mut client_opt = make_opt(cfg);
                let mut server_opt = make_opt(cfg);
                for &slot in &fate.survivors {
                    let c = recovery.trainee_for(slot);
                    let relay_ref = model_codec
                        .active()
                        .then(|| ParamVec::from_network(&split.client));
                    let batcher = make_batcher(cfg, c)?;
                    let (l, s) = split_train_epoch(
                        &mut split,
                        &mut client_opt,
                        &mut server_opt,
                        &shards[c],
                        &batcher,
                        round as u64,
                        CutLink::new(cfg, &mut channel, c),
                    )?;
                    if let Some(reference) = relay_ref {
                        let key = feedback_key(members.as_deref(), &recovery, slot);
                        let mut residual = feedback.fetch(ef, key);
                        model_codec.apply(
                            &mut split.client,
                            &reference,
                            residual.as_mut(),
                            round as u64,
                            c,
                        )?;
                        if let Some(res) = residual {
                            feedback.store(key, res);
                        }
                    }
                    loss_sum += l;
                    step_sum += s;
                }
                *global = join_params(
                    &ParamVec::from_network(&split.client),
                    &ParamVec::from_network(&split.server),
                );
            }
        }

        state.plans.observe_outcome(round as u64, &plan, &latency);
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: false,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        match &require_state(&self.state)?.mode {
            Mode::Fixed { split, .. } => Ok(join_params(
                &ParamVec::from_network(&split.client),
                &ParamVec::from_network(&split.server),
            )),
            Mode::Adaptive { global, .. } => Ok(global.clone()),
        }
    }
}
