//! Vanilla split learning (SL): the sequential baseline.

use super::common::{
    join_params, make_batcher, make_opt, require_state, require_state_mut, split_train_epoch,
};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::context::TrainContext;
use crate::latency::sl_round;
use crate::Result;
use gsfl_nn::optim::Sgd;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;

/// Vanilla split learning: one client-side and one server-side model;
/// clients train strictly one after another, each receiving the
/// client-side model through the AP relay. No aggregation — the model
/// state simply accumulates SGD steps as it visits every client.
#[derive(Debug, Default)]
pub struct VanillaSplit {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    split: SplitNetwork,
    client_opt: Sgd,
    server_opt: Sgd,
    steps: Vec<usize>,
}

impl VanillaSplit {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        VanillaSplit::default()
    }
}

impl Scheme for VanillaSplit {
    fn kind(&self) -> SchemeKind {
        SchemeKind::VanillaSplit
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let split = SplitNetwork::split(net, cfg.cut())?;
        self.state = Some(State {
            split,
            client_opt: make_opt(cfg),
            server_opt: make_opt(cfg),
            steps: ctx.steps_per_client(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        // Unavailable clients are skipped this round (the relay goes
        // straight to the next reachable client).
        let order = ctx.available_clients(round as u64);
        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        for &c in &order {
            let batcher = make_batcher(cfg, c)?;
            let (l, s) = split_train_epoch(
                &mut state.split,
                &mut state.client_opt,
                &mut state.server_opt,
                &ctx.train_shards[c],
                &batcher,
                round as u64,
            )?;
            loss_sum += l;
            step_sum += s;
        }
        state.client_opt.advance_round();
        state.server_opt.advance_round();

        let latency = sl_round(
            ctx.env.as_ref(),
            &ctx.costs,
            &state.steps,
            &order,
            cfg.channel,
            round as u64,
        )?;
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: false,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(join_params(
            &ParamVec::from_network(&state.split.client),
            &ParamVec::from_network(&state.split.server),
        ))
    }
}
