//! Vanilla split learning (SL): the sequential baseline.

use super::common::{
    eval_params, join_params, make_batcher, make_opt, should_eval, split_train_epoch,
    target_reached, Recorder,
};
use crate::context::TrainContext;
use crate::latency::sl_round;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::storage::server_storage_bytes;
use crate::Result;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;

/// Vanilla split learning: one client-side and one server-side model;
/// clients train strictly one after another, each receiving the
/// client-side model through the AP relay. No aggregation — the model
/// state simply accumulates SGD steps as it visits every client.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaSplit;

impl VanillaSplit {
    /// Runs sequential split learning.
    ///
    /// # Errors
    ///
    /// Propagates training or wireless errors.
    pub fn run(ctx: &TrainContext) -> Result<RunResult> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let mut eval_net = net.clone();
        let mut split = SplitNetwork::split(net, cfg.cut())?;
        let mut client_opt = make_opt(cfg);
        let mut server_opt = make_opt(cfg);
        let steps = ctx.steps_per_client();
        let mut rec = Recorder::new(SchemeKind::VanillaSplit.name());

        for round in 1..=cfg.rounds {
            // Unavailable clients are skipped this round (the relay goes
            // straight to the next reachable client).
            let order = ctx.available_clients(round as u64);
            let mut loss_sum = 0.0f64;
            let mut step_sum = 0usize;
            for &c in &order {
                let batcher = make_batcher(cfg, c)?;
                let (l, s) = split_train_epoch(
                    &mut split,
                    &mut client_opt,
                    &mut server_opt,
                    &ctx.train_shards[c],
                    &batcher,
                    round as u64,
                )?;
                loss_sum += l;
                step_sum += s;
            }
            client_opt.advance_round();
            server_opt.advance_round();

            let latency = sl_round(
                &ctx.latency,
                &ctx.costs,
                &steps,
                &order,
                cfg.channel,
                round as u64,
            )?;
            let acc = if should_eval(cfg, round) {
                let joined = join_params(
                    &ParamVec::from_network(&split.client),
                    &ParamVec::from_network(&split.server),
                );
                Some(eval_params(ctx, &mut eval_net, &joined)?)
            } else {
                None
            };
            rec.push(round, latency, loss_sum / step_sum.max(1) as f64, acc);
            if target_reached(cfg, acc) {
                break;
            }
        }
        let server_bytes = ctx
            .costs
            .full_model_bytes
            .as_u64()
            .saturating_sub(ctx.costs.client_model_bytes.as_u64());
        let storage = server_storage_bytes(
            SchemeKind::VanillaSplit,
            cfg.clients,
            cfg.groups,
            server_bytes,
            ctx.costs.full_model_bytes.as_u64(),
        );
        Ok(rec.finish(storage, eval_net.param_count()))
    }
}
