//! Centralized learning (CL): the accuracy upper-bound baseline.

use super::common::{
    eval_params, full_train_epoch, make_batcher, make_opt, should_eval, target_reached, Recorder,
};
use crate::context::TrainContext;
use crate::latency::cl_round;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::storage::server_storage_bytes;
use crate::Result;
use gsfl_data::dataset::ImageDataset;
use gsfl_nn::params::ParamVec;

/// Centralized learning: all client shards pooled at the edge server, one
/// epoch of plain SGD per round, no wireless traffic. The paper uses CL as
/// the accuracy reference in Fig. 2(a).
#[derive(Debug, Clone, Copy, Default)]
pub struct Centralized;

impl Centralized {
    /// Runs centralized training for the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn run(ctx: &TrainContext) -> Result<RunResult> {
        let cfg = &ctx.config;
        let shards: Vec<&ImageDataset> = ctx.train_shards.iter().collect();
        let pooled = ImageDataset::concat(&shards)?;
        let mut net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let mut eval_net = net.clone();
        let mut opt = make_opt(cfg);
        // The server trains on the pooled set; batch stream id uses a
        // client index past all real clients.
        let batcher = make_batcher(cfg, cfg.clients)?;
        let total_steps = pooled.len().div_ceil(cfg.batch_size);
        let mut rec = Recorder::new(SchemeKind::Centralized.name());

        for round in 1..=cfg.rounds {
            let (loss_sum, steps) =
                full_train_epoch(&mut net, &mut opt, &pooled, &batcher, round as u64)?;
            opt.advance_round();
            let latency = cl_round(&ctx.latency, &ctx.costs, total_steps);
            let acc = if should_eval(cfg, round) {
                Some(eval_params(
                    ctx,
                    &mut eval_net,
                    &ParamVec::from_network(&net),
                )?)
            } else {
                None
            };
            rec.push(round, latency, loss_sum / steps.max(1) as f64, acc);
            if target_reached(cfg, acc) {
                break;
            }
        }
        let storage = server_storage_bytes(
            SchemeKind::Centralized,
            cfg.clients,
            cfg.groups,
            0,
            ctx.costs.full_model_bytes.as_u64(),
        );
        Ok(rec.finish(storage, net.param_count()))
    }
}
