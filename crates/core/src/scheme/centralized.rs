//! Centralized learning (CL): the accuracy upper-bound baseline.

use super::common::{full_train_epoch, make_batcher, make_opt, require_state, require_state_mut};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::context::TrainContext;
use crate::latency::cl_round;
use crate::orchestrator::PlanSelector;
use crate::Result;
use gsfl_data::batcher::Batcher;
use gsfl_data::dataset::ImageDataset;
use gsfl_nn::optim::Sgd;
use gsfl_nn::params::ParamVec;
use gsfl_nn::Sequential;

/// Centralized learning: all client shards pooled at the edge server, one
/// epoch of plain SGD per round, no wireless traffic. The paper uses CL as
/// the accuracy reference in Fig. 2(a).
#[derive(Debug, Default)]
pub struct Centralized {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    net: Sequential,
    opt: Sgd,
    batcher: Batcher,
    pooled: ImageDataset,
    total_steps: usize,
    /// This run's private plan-selection state. CL has no wireless
    /// traffic or cut, so plans only vary the (compute-irrelevant)
    /// codec — the loop exists so orchestrators observe every scheme.
    plans: PlanSelector,
}

impl Centralized {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        Centralized::default()
    }
}

impl Scheme for Centralized {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Centralized
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        // Pools the per-slot shards. In population mode `train_shards`
        // is the round-0 cohort, so this stays O(cohort) — CL never
        // materializes the configured population.
        let shards: Vec<&ImageDataset> = ctx.train_shards.iter().collect();
        let pooled = ImageDataset::concat(&shards)?;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let opt = make_opt(cfg);
        // The server trains on the pooled set; batch stream id uses a
        // client index past all real clients.
        let batcher = make_batcher(cfg, cfg.clients)?;
        let total_steps = pooled.len().div_ceil(cfg.batch_size);
        self.state = Some(State {
            net,
            opt,
            batcher,
            pooled,
            total_steps,
            plans: PlanSelector::from_config(cfg),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let (loss_sum, steps) = full_train_epoch(
            &mut state.net,
            &mut state.opt,
            &state.pooled,
            &state.batcher,
            round as u64,
        )?;
        state.opt.advance_round();
        // `full_flops` is a raw field — no plan codec can change the CL
        // round, so the static path stays byte-identical by construction.
        let (plan, costs) = state.plans.plan_for_round(ctx, round as u64)?;
        let latency = cl_round(ctx.env.as_ref(), &costs, state.total_steps);
        state
            .plans
            .observe(round as u64, &plan, latency.duration.as_secs_f64());
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / steps.max(1) as f64,
            aggregated: false,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(ParamVec::from_network(&state.net))
    }
}
