//! Federated learning (FL): the FedAvg baseline.

use super::common::{
    eval_params, full_train_epoch, make_batcher, make_opt, should_eval, target_reached, Recorder,
};
use crate::aggregate::aggregate_snapshots;
use crate::context::TrainContext;
use crate::latency::fl_round;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::storage::server_storage_bytes;
use crate::Result;
use gsfl_nn::params::ParamVec;

/// Federated learning: each round every client downloads the global
/// model, trains `local_epochs` on its shard, uploads; the AP
/// FedAvg-aggregates weighted by shard size. Round latency is
/// straggler-bound with equal bandwidth shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct Federated;

impl Federated {
    /// Runs FedAvg for the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates training, aggregation or wireless errors.
    pub fn run(ctx: &TrainContext) -> Result<RunResult> {
        let cfg = &ctx.config;
        let template = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let mut eval_net = template.clone();
        let mut global = ParamVec::from_network(&template);
        let steps = ctx.steps_per_client();
        let mut rec = Recorder::new(SchemeKind::Federated.name());

        for round in 1..=cfg.rounds {
            let participants = ctx.available_clients(round as u64);
            let mut snapshots = Vec::with_capacity(participants.len());
            let mut weights = Vec::with_capacity(participants.len());
            let mut loss_sum = 0.0f64;
            let mut step_sum = 0usize;
            for &c in &participants {
                let mut local = template.clone();
                global.load_into(&mut local)?;
                let mut opt = make_opt(cfg);
                let batcher = make_batcher(cfg, c)?;
                for e in 0..cfg.local_epochs {
                    let (l, s) = full_train_epoch(
                        &mut local,
                        &mut opt,
                        &ctx.train_shards[c],
                        &batcher,
                        round as u64 * cfg.local_epochs as u64 + e as u64,
                    )?;
                    loss_sum += l;
                    step_sum += s;
                }
                snapshots.push(ParamVec::from_network(&local));
                weights.push(ctx.train_shards[c].len() as f64);
            }
            global = aggregate_snapshots(&snapshots, &weights)?;

            // Non-participants get zero steps so fl_round skips them.
            let round_steps: Vec<usize> = (0..cfg.clients)
                .map(|c| if participants.contains(&c) { steps[c] } else { 0 })
                .collect();
            let latency = fl_round(
                &ctx.latency,
                &ctx.costs,
                &round_steps,
                cfg.local_epochs,
                round as u64,
            )?;
            let acc = if should_eval(cfg, round) {
                Some(eval_params(ctx, &mut eval_net, &global)?)
            } else {
                None
            };
            rec.push(round, latency, loss_sum / step_sum.max(1) as f64, acc);
            if target_reached(cfg, acc) {
                break;
            }
        }
        let storage = server_storage_bytes(
            SchemeKind::Federated,
            cfg.clients,
            cfg.groups,
            0,
            ctx.costs.full_model_bytes.as_u64(),
        );
        Ok(rec.finish(storage, template.param_count()))
    }
}
