//! Federated learning (FL): the FedAvg baseline.

use super::common::{full_train_epoch, make_batcher, make_opt, require_state, require_state_mut};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::aggregate::aggregate_snapshots;
use crate::context::TrainContext;
use crate::latency::fl_round;
use crate::Result;
use gsfl_nn::params::ParamVec;
use gsfl_nn::Sequential;

/// Federated learning: each round every client downloads the global
/// model, trains `local_epochs` on its shard, uploads; the AP
/// FedAvg-aggregates weighted by shard size. Round latency is
/// straggler-bound with equal bandwidth shares.
#[derive(Debug, Default)]
pub struct Federated {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    template: Sequential,
    global: ParamVec,
    steps: Vec<usize>,
}

impl Federated {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        Federated::default()
    }
}

impl Scheme for Federated {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Federated
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let template = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let global = ParamVec::from_network(&template);
        self.state = Some(State {
            template,
            global,
            steps: ctx.steps_per_client(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        let participants = ctx.available_clients(round as u64);
        let mut snapshots = Vec::with_capacity(participants.len());
        let mut weights = Vec::with_capacity(participants.len());
        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        for &c in &participants {
            let mut local = state.template.clone();
            state.global.load_into(&mut local)?;
            let mut opt = make_opt(cfg);
            let batcher = make_batcher(cfg, c)?;
            for e in 0..cfg.local_epochs {
                let (l, s) = full_train_epoch(
                    &mut local,
                    &mut opt,
                    &ctx.train_shards[c],
                    &batcher,
                    round as u64 * cfg.local_epochs as u64 + e as u64,
                )?;
                loss_sum += l;
                step_sum += s;
            }
            snapshots.push(ParamVec::from_network(&local));
            weights.push(ctx.train_shards[c].len() as f64);
        }
        state.global = aggregate_snapshots(&snapshots, &weights)?;

        // Non-participants get zero steps so fl_round skips them.
        let round_steps: Vec<usize> = (0..cfg.clients)
            .map(|c| {
                if participants.contains(&c) {
                    state.steps[c]
                } else {
                    0
                }
            })
            .collect();
        let latency = fl_round(
            ctx.env.as_ref(),
            &ctx.costs,
            &round_steps,
            cfg.local_epochs,
            round as u64,
        )?;
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: true,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(state.global.clone())
    }
}
