//! Federated learning (FL): the FedAvg baseline.

use super::common::{
    feedback_key, full_train_epoch, make_batcher, make_opt, require_state, require_state_mut,
    FeedbackStore, ModelCodec,
};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::aggregate::aggregate_tree;
use crate::context::TrainContext;
use crate::latency::fl_round_recovered;
use crate::orchestrator::PlanSelector;
use crate::parallel::{round_fanout, run_indexed};
use crate::population::CowParams;
use crate::Result;
use gsfl_nn::params::ParamVec;
use gsfl_nn::Sequential;
use gsfl_tensor::workspace::Workspace;

/// Federated learning: each round every client downloads the global
/// model, trains `local_epochs` on its shard, uploads; the AP
/// FedAvg-aggregates weighted by shard size. Round latency is
/// straggler-bound with equal bandwidth shares.
///
/// Clients are independent inside a round, so they really train on
/// parallel host threads (budgeted by
/// [`crate::config::ExperimentConfig::client_threads`] /
/// `GSFL_THREADS`); aggregation order is fixed, making records
/// byte-identical to a sequential run.
#[derive(Debug, Default)]
pub struct Federated {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    template: Sequential,
    /// Round-start global parameters, shared copy-on-write: worker
    /// threads hold `Arc` references, never per-client clones.
    global: CowParams,
    steps: Vec<usize>,
    /// Recycled aggregation scratch (the `f64` accumulator and dead
    /// snapshot buffers), so steady-state rounds aggregate without
    /// fresh allocations.
    ws: Workspace,
    /// This run's private plan-selection state. FL has no cut — plans
    /// vary the upload codec, the bandwidth shares and the cohort.
    plans: PlanSelector,
    /// Per-client EF21 residuals for the full-model upload codec,
    /// carried across rounds (keyed by population member id so sparse
    /// cohorts keep their feedback through rotations).
    feedback: FeedbackStore,
}

impl Federated {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        Federated::default()
    }
}

impl Scheme for Federated {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Federated
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let template = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let global = CowParams::new(ParamVec::from_network(&template));
        self.state = Some(State {
            template,
            global,
            steps: ctx.steps_per_client(),
            ws: Workspace::new(),
            plans: PlanSelector::from_config(cfg),
            feedback: FeedbackStore::default(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        let available = ctx.available_clients(round as u64);
        let mut participants = available.clone();
        let (plan, costs) = state.plans.plan_for_round(ctx, round as u64)?;
        // A cohort cap admits only the head of the deterministic
        // participant order (FL has no cut, so per-client cuts are moot).
        if let Some(k) = plan.cohort {
            participants.truncate(k);
        }
        // Fault-aware pricing runs *before* training: latency is
        // training-independent, and the resulting fate decides who
        // trains. Non-participants get zero steps so the calculator
        // skips them.
        let recovery = ctx.round_recovery(round as u64, &participants, &available);
        let round_steps: Vec<usize> = (0..cfg.clients)
            .map(|c| {
                if participants.contains(&c) {
                    state.steps[c]
                } else {
                    0
                }
            })
            .collect();
        let (mut latency, fate) = fl_round_recovered(
            ctx.env.as_ref(),
            &costs,
            &round_steps,
            cfg.local_epochs,
            round as u64,
            plan.shares.as_deref(),
            &recovery.plan,
        )?;
        if !recovery.quorum_met(&fate) {
            // Quorum miss: the round is charged and recorded, but no
            // training result aggregates — the global model is left
            // unchanged.
            latency.faults.quorum_met = false;
            state.plans.observe_outcome(round as u64, &plan, &latency);
            return Ok(RoundOutcome {
                latency,
                train_loss: 0.0,
                aggregated: false,
            });
        }
        // Dense mode borrows the static shards; population mode
        // materializes this round's sampled cohort (with any backup
        // members substituted into their slots).
        let shards = ctx.round_shards_recovered(round as u64, &recovery)?;
        let shards = shards.as_ref();

        // Only the slots whose update actually arrived train — a
        // backup-covered slot is trained by its standby. Independent
        // clients train on parallel host threads; results come back in
        // participant order and are aggregated in that fixed order, so
        // records are byte-identical to the sequential path.
        let survivors = &fate.survivors;
        let recovery = &recovery;
        let (threads, _grant) = round_fanout(cfg, survivors.len());
        let template = &state.template;
        // One shared round-start state: workers clone an `Arc` handle,
        // not the parameters.
        let global = state.global.clone();
        let global = &global;
        // EF residuals are fetched by clone before the parallel section
        // (worker closures are `Fn`) and written back serially after it,
        // in survivor order — byte-identical to a sequential run.
        let ef = plan.codec.error_feedback;
        let members = ctx.cohort_members(round as u64);
        let keys: Vec<u64> = survivors
            .iter()
            .map(|&slot| feedback_key(members.as_deref(), recovery, slot))
            .collect();
        let feedback = &state.feedback;
        let keys = &keys;
        let passes = run_indexed(survivors.len(), threads, |idx| {
            let c = recovery.trainee_for(survivors[idx]);
            let mut local = template.clone();
            global.load_into(&mut local)?;
            let mut opt = make_opt(cfg);
            let batcher = make_batcher(cfg, c)?;
            let mut loss_sum = 0.0f64;
            let mut step_sum = 0usize;
            for e in 0..cfg.local_epochs {
                let (l, s) = full_train_epoch(
                    &mut local,
                    &mut opt,
                    &shards[c],
                    &batcher,
                    round as u64 * cfg.local_epochs as u64 + e as u64,
                )?;
                loss_sum += l;
                step_sum += s;
            }
            // The full-model upload is encoded as a delta against the
            // round-start global both endpoints hold; the AP aggregates
            // what it decoded.
            let mut snapshot = ParamVec::from_network(&local);
            let mut model_codec = ModelCodec::new(&plan.codec.full_model, cfg.seed);
            let mut residual = feedback.fetch(ef, keys[idx]);
            model_codec.apply_vec(
                &mut snapshot,
                global.get(),
                residual.as_mut(),
                round as u64,
                c,
            )?;
            Ok((
                snapshot,
                shards[c].len() as f64,
                loss_sum,
                step_sum,
                residual,
            ))
        })?;
        let mut snapshots = Vec::with_capacity(passes.len());
        let mut weights = Vec::with_capacity(passes.len());
        let mut loss_sum = 0.0f64;
        let mut step_sum = 0usize;
        for (idx, (snap, weight, l, s, residual)) in passes.into_iter().enumerate() {
            snapshots.push(snap);
            weights.push(weight);
            loss_sum += l;
            step_sum += s;
            if let Some(res) = residual {
                state.feedback.store(keys[idx], res);
            }
        }
        // Two-tier tree aggregation over the AP topology (bit-identical
        // to flat FedAvg — see `crate::aggregate`), through the recycled
        // workspace. Weights are survivor sample counts, so the tree
        // re-normalizes the FedAvg over who actually delivered.
        let mut aps = Vec::with_capacity(survivors.len());
        for &slot in survivors {
            aps.push(ctx.env.ap_of(recovery.trainee_for(slot), round as u64)?);
        }
        let tree = aggregate_tree(&snapshots, &weights, &aps, &mut state.ws)?;
        let old = std::mem::replace(&mut state.global, CowParams::new(tree.params));
        // Dead buffers feed the next round's aggregation scratch.
        if let Some(dead) = old.into_inner() {
            state.ws.give(dead.into_values());
        }
        for snap in snapshots {
            state.ws.give(snap.into_values());
        }

        state.plans.observe_outcome(round as u64, &plan, &latency);
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: true,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(state.global.get().clone())
    }
}
