//! Shared training-loop machinery.

use crate::config::ExperimentConfig;
use crate::context::TrainContext;
use crate::latency::RoundLatency;
use crate::recovery::RoundRecovery;
use crate::results::{RoundRecord, RunResult};
use crate::Result;
use gsfl_data::batcher::Batcher;
use gsfl_data::dataset::ImageDataset;
use gsfl_nn::codec::{encode_delta, Codec, CodecSpec, CutChannel};
use gsfl_nn::loss::SoftmaxCrossEntropy;
use gsfl_nn::metrics::evaluate;
use gsfl_nn::optim::Sgd;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;
use gsfl_tensor::rng::SeedDerive;
use gsfl_tensor::Workspace;
use std::time::Instant;

/// Unwraps a scheme's state, failing if [`crate::scheme::Scheme::init`]
/// has not run.
pub(crate) fn require_state<T>(state: &Option<T>) -> Result<&T> {
    state
        .as_ref()
        .ok_or_else(|| crate::CoreError::Config("scheme not initialized".into()))
}

/// Mutable [`require_state`].
pub(crate) fn require_state_mut<T>(state: &mut Option<T>) -> Result<&mut T> {
    state
        .as_mut()
        .ok_or_else(|| crate::CoreError::Config("scheme not initialized".into()))
}

/// Builds the per-scheme SGD optimizer from the config.
pub(crate) fn make_opt(cfg: &ExperimentConfig) -> Sgd {
    Sgd::new(cfg.learning_rate).with_momentum(cfg.momentum)
}

/// Builds the per-client batcher (deterministic, client-unique stream).
pub(crate) fn make_batcher(cfg: &ExperimentConfig, client: usize) -> Result<Batcher> {
    Ok(Batcher::new(
        cfg.batch_size,
        SeedDerive::new(cfg.seed)
            .child("batches")
            .index(client as u64)
            .seed(),
    )?)
}

/// The cut-boundary codec hook for one round's compression spec (smashed
/// uplink + gradient downlink) — the configured spec on the static path,
/// or whatever the orchestrator's plan picked this round.
pub(crate) fn make_cut_channel_for(comp: &crate::compression::CompressionSpec) -> CutChannel {
    CutChannel::new(&comp.smashed, &comp.gradient, comp.error_feedback)
}

/// A [`CutChannel`] bound to one client's deterministic codec streams:
/// streams depend only on (seed, client, epoch, step), never on thread
/// scheduling, so stochastic codecs keep runs byte-identical for any
/// thread count. The client id also addresses the channel's per-client
/// gradient error-feedback residual.
pub(crate) struct CutLink<'a> {
    pub(crate) channel: &'a mut CutChannel,
    pub(crate) client: usize,
    pub(crate) streams: SeedDerive,
}

impl<'a> CutLink<'a> {
    pub(crate) fn new(cfg: &ExperimentConfig, channel: &'a mut CutChannel, client: usize) -> Self {
        CutLink {
            channel,
            client,
            streams: SeedDerive::new(cfg.seed)
                .child("codec")
                .index(client as u64),
        }
    }
}

/// Applies a model codec to a network's parameters as a delta against
/// the round-start reference both endpoints hold — the lossy transcode a
/// model exchange (relay hop, upload) subjects the parameters to.
/// Identity codecs skip everything, including the snapshot.
pub(crate) struct ModelCodec {
    codec: Box<dyn Codec>,
    ws: Workspace,
    seeds: SeedDerive,
}

impl ModelCodec {
    pub(crate) fn new(spec: &CodecSpec, seed: u64) -> Self {
        ModelCodec {
            codec: spec.build(),
            ws: Workspace::new(),
            seeds: SeedDerive::new(seed).child("codec-model"),
        }
    }

    /// Whether the codec actually changes anything.
    pub(crate) fn active(&self) -> bool {
        !self.codec.is_identity()
    }

    /// Encodes a flat parameter snapshot through the wire container and
    /// decodes it back in place (delta vs `reference`) — for callers
    /// that already hold the [`ParamVec`] and don't need it written
    /// back into a network. With `residual` supplied, the EF21
    /// error-feedback accumulator rides along (see
    /// [`gsfl_nn::codec::encode_delta`]).
    pub(crate) fn apply_vec(
        &mut self,
        params: &mut ParamVec,
        reference: &ParamVec,
        residual: Option<&mut Vec<f32>>,
        round: u64,
        client: usize,
    ) -> Result<()> {
        if !self.active() {
            return Ok(());
        }
        let stream = self.seeds.index(round).index(client as u64).seed();
        encode_delta(
            self.codec.as_ref(),
            params,
            reference,
            residual,
            stream,
            &mut self.ws,
        )?;
        Ok(())
    }

    /// Encodes `net`'s parameters through the wire container and back
    /// in place (delta vs `reference`).
    pub(crate) fn apply(
        &mut self,
        net: &mut Sequential,
        reference: &ParamVec,
        residual: Option<&mut Vec<f32>>,
        round: u64,
        client: usize,
    ) -> Result<()> {
        if !self.active() {
            return Ok(());
        }
        let mut params = ParamVec::from_network(net);
        self.apply_vec(&mut params, reference, residual, round, client)?;
        params.load_into(net)?;
        Ok(())
    }
}

/// Per-client EF21 model-upload residuals, carried **across rounds** in
/// a scheme's state. Keys are [`feedback_key`]s: stable population
/// member ids in population mode (so a member's residual follows it
/// across cohort rotations), dense trainee ids otherwise.
///
/// The store is plain storage — whether a given round *uses* it is the
/// round's compression spec's call (`error_feedback`), so an
/// orchestrator may switch EF arms per round while residuals persist.
#[derive(Debug, Default)]
pub(crate) struct FeedbackStore {
    residuals: std::collections::BTreeMap<u64, Vec<f32>>,
}

impl FeedbackStore {
    /// The residual for `key`, cloned out so `Fn` worker closures can
    /// own it (`None` when this round runs without error feedback —
    /// callers then skip the write-back too).
    pub(crate) fn fetch(&self, enabled: bool, key: u64) -> Option<Vec<f32>> {
        if !enabled {
            return None;
        }
        Some(self.residuals.get(&key).cloned().unwrap_or_default())
    }

    /// Writes an updated residual back (serially, in aggregation
    /// order, so parallel rounds stay byte-identical to sequential).
    pub(crate) fn store(&mut self, key: u64, residual: Vec<f32>) {
        self.residuals.insert(key, residual);
    }
}

/// The [`FeedbackStore`] key for a cohort `slot` this round: the
/// population member occupying the slot (with the recovery plan's
/// backup substitutions applied), or the dense trainee's client id.
pub(crate) fn feedback_key(members: Option<&[u64]>, recovery: &RoundRecovery, slot: usize) -> u64 {
    match members {
        Some(m) => recovery
            .member_overrides
            .get(&slot)
            .copied()
            .unwrap_or(m[slot]),
        None => recovery.trainee_for(slot) as u64,
    }
}

/// One epoch of split training over a shard: client forward → **uplink
/// codec** → server forward → loss → server backward → **downlink
/// codec** → client backward, stepping both optimizers each mini-batch.
/// The server trains on the *decoded* smashed data and the client on the
/// *decoded* gradient, so lossy codecs cost accuracy exactly where the
/// latency model saves airtime. Returns `(loss_sum, steps)`.
pub(crate) fn split_train_epoch(
    split: &mut SplitNetwork,
    client_opt: &mut Sgd,
    server_opt: &mut Sgd,
    shard: &ImageDataset,
    batcher: &Batcher,
    epoch: u64,
    link: CutLink<'_>,
) -> Result<(f64, usize)> {
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut loss_sum = 0.0f64;
    let mut steps = 0usize;
    let up_streams = link.streams.child("up").index(epoch);
    let down_streams = link.streams.child("down").index(epoch);
    let client = link.client;
    let channel = link.channel;
    for batch in batcher.epoch(shard, epoch)? {
        split.client.zero_grad();
        split.server.zero_grad();
        let mut smashed = split.client.forward(&batch.images)?;
        channel.encode_up(&mut smashed, up_streams.index(steps as u64).seed())?;
        let logits = split.server.forward(&smashed)?;
        let out = loss_fn.compute(&logits, &batch.labels)?;
        let mut grad_smashed = split.server.backward(&out.grad_logits)?;
        channel.encode_down(
            &mut grad_smashed,
            client,
            down_streams.index(steps as u64).seed(),
        )?;
        split.client.backward_no_input_grad(&grad_smashed)?;
        server_opt.step(&mut split.server.params_mut())?;
        client_opt.step(&mut split.client.params_mut())?;
        // Hand dead activations/gradients back to the workspace that
        // produced them so the steady-state step allocates nothing.
        split.client.recycle(smashed);
        split.server.recycle(logits);
        split.server.recycle(grad_smashed);
        split.server.recycle(out.grad_logits);
        batcher.recycle(batch);
        loss_sum += out.loss as f64;
        steps += 1;
    }
    Ok((loss_sum, steps))
}

/// One epoch of ordinary full-model training over a shard.
pub(crate) fn full_train_epoch(
    net: &mut Sequential,
    opt: &mut Sgd,
    shard: &ImageDataset,
    batcher: &Batcher,
    epoch: u64,
) -> Result<(f64, usize)> {
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut loss_sum = 0.0f64;
    let mut steps = 0usize;
    for batch in batcher.epoch(shard, epoch)? {
        net.zero_grad();
        let logits = net.forward(&batch.images)?;
        let out = loss_fn.compute(&logits, &batch.labels)?;
        net.backward_no_input_grad(&out.grad_logits)?;
        opt.step(&mut net.params_mut())?;
        net.recycle(logits);
        net.recycle(out.grad_logits);
        batcher.recycle(batch);
        loss_sum += out.loss as f64;
        steps += 1;
    }
    Ok((loss_sum, steps))
}

/// Concatenates client-side and server-side parameter vectors into a
/// full-model vector (valid because `split_at` preserves parameter order).
pub(crate) fn join_params(client: &ParamVec, server: &ParamVec) -> ParamVec {
    let mut v = Vec::with_capacity(client.len() + server.len());
    v.extend_from_slice(client.values());
    v.extend_from_slice(server.values());
    ParamVec::from_values(v)
}

/// Whether `round` (1-based) is an evaluation round.
pub(crate) fn should_eval(cfg: &ExperimentConfig, round: usize) -> bool {
    round == 1 || round == cfg.rounds || round.is_multiple_of(cfg.eval_every)
}

/// Accumulates round records and produces the final [`RunResult`].
///
/// The wall clock starts at the first [`Recorder::round_started`] (or
/// first pushed record), not at construction, so context-build time in
/// callers that construct the recorder early never leaks into
/// `wall_clock_s`.
pub(crate) struct Recorder {
    scheme: &'static str,
    records: Vec<RoundRecord>,
    cumulative_s: f64,
    started: Option<Instant>,
}

impl Recorder {
    pub(crate) fn new(scheme: &'static str) -> Self {
        Recorder {
            scheme,
            records: Vec::new(),
            cumulative_s: 0.0,
            started: None,
        }
    }

    /// Marks the start of training work; the first call arms the wall
    /// clock.
    pub(crate) fn round_started(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Records one round.
    pub(crate) fn push(
        &mut self,
        round: usize,
        latency: RoundLatency,
        train_loss: f64,
        test_accuracy: Option<f64>,
    ) {
        self.round_started();
        self.cumulative_s += latency.duration.as_secs_f64();
        self.records.push(RoundRecord {
            round,
            round_latency_s: latency.duration.as_secs_f64(),
            cumulative_latency_s: self.cumulative_s,
            train_loss,
            test_accuracy,
            bytes_up: latency.bytes.up,
            bytes_down: latency.bytes.down,
            bytes_up_raw: latency.bytes.raw_up,
            bytes_down_raw: latency.bytes.raw_down,
            client_energy_j: latency.client_energy_j,
            retries: latency.faults.retries,
            wasted_airtime_bytes: latency.faults.wasted_airtime_bytes,
            lost_clients: latency.faults.lost_clients,
            backups_activated: latency.faults.backups_activated,
            quorum_met: latency.faults.quorum_met,
        });
    }

    /// The most recently recorded round.
    pub(crate) fn last_record(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    pub(crate) fn finish(self, server_storage_bytes: u64, param_count: usize) -> RunResult {
        RunResult {
            scheme: self.scheme.to_string(),
            records: self.records,
            server_storage_bytes,
            param_count,
            wall_clock_s: self
                .started
                .map(|t| t.elapsed().as_secs_f64())
                .unwrap_or(0.0),
        }
    }
}

/// Evaluates a full-model parameter vector on the test set.
pub(crate) fn eval_params(
    ctx: &TrainContext,
    template: &mut Sequential,
    params: &ParamVec,
) -> Result<f64> {
    params.load_into(template)?;
    let r = evaluate(
        template,
        ctx.test_set.images(),
        ctx.test_set.labels(),
        ctx.config.batch_size.max(32),
    )?;
    Ok(r.accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_params_concatenates() {
        let a = ParamVec::from_values(vec![1.0, 2.0]);
        let b = ParamVec::from_values(vec![3.0]);
        assert_eq!(join_params(&a, &b).values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn eval_cadence() {
        let cfg = ExperimentConfig::builder()
            .clients(2)
            .groups(1)
            .rounds(10)
            .eval_every(3)
            .build()
            .unwrap();
        assert!(should_eval(&cfg, 1));
        assert!(!should_eval(&cfg, 2));
        assert!(should_eval(&cfg, 3));
        assert!(should_eval(&cfg, 9));
        assert!(should_eval(&cfg, 10)); // final round always
    }

    #[test]
    fn recorder_accumulates() {
        use crate::latency::{RoundBytes, RoundLatency};
        use gsfl_wireless::units::Seconds;
        let mut rec = Recorder::new("x");
        rec.push(
            1,
            RoundLatency {
                duration: Seconds::new(2.0),
                bytes: RoundBytes {
                    up: 5,
                    down: 7,
                    raw_up: 5,
                    raw_down: 7,
                },
                client_energy_j: 1.5,
                breakdown: Default::default(),
                faults: Default::default(),
            },
            1.0,
            None,
        );
        rec.push(
            2,
            RoundLatency {
                duration: Seconds::new(3.0),
                bytes: RoundBytes::default(),
                client_energy_j: 0.5,
                breakdown: Default::default(),
                faults: Default::default(),
            },
            0.5,
            Some(0.9),
        );
        let result = rec.finish(42, 7);
        assert_eq!(result.records.len(), 2);
        assert_eq!(result.records[1].cumulative_latency_s, 5.0);
        assert_eq!(result.server_storage_bytes, 42);
    }

    #[test]
    fn wall_clock_unarmed_until_first_round() {
        let rec = Recorder::new("x");
        std::thread::sleep(std::time::Duration::from_millis(5));
        let result = rec.finish(0, 0);
        assert_eq!(
            result.wall_clock_s, 0.0,
            "clock must not start at construction"
        );
    }
}
