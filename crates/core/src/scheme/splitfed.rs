//! SplitFed v1 (SFL): the storage-hungry hybrid the paper's intro
//! critiques.

use super::common::{
    eval_params, join_params, make_batcher, make_opt, should_eval, split_train_epoch,
    target_reached, Recorder,
};
use crate::aggregate::aggregate_snapshots;
use crate::context::TrainContext;
use crate::latency::gsfl_round;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::storage::server_storage_bytes;
use crate::Result;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;

/// SplitFed v1: every client trains *in parallel* against its **own**
/// server-side model replica (N replicas resident at the server); both
/// halves are FedAvg-aggregated every round. Statistically equivalent to
/// GSFL with M = N singleton groups — which is exactly how it is
/// computed — but its server storage grows with N instead of M.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitFed;

impl SplitFed {
    /// Runs SplitFed for the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates training, aggregation, wireless or simulation errors.
    pub fn run(ctx: &TrainContext) -> Result<RunResult> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let mut eval_net = net.clone();
        let template = SplitNetwork::split(net, cfg.cut())?;
        let mut global_client = ParamVec::from_network(&template.client);
        let mut global_server = ParamVec::from_network(&template.server);
        let steps = ctx.steps_per_client();
        let mut rec = Recorder::new(SchemeKind::SplitFed.name());

        for round in 1..=cfg.rounds {
            let participants = ctx.available_clients(round as u64);
            let singleton_groups: Vec<Vec<usize>> =
                participants.iter().map(|&c| vec![c]).collect();
            let mut client_snaps = Vec::with_capacity(participants.len());
            let mut server_snaps = Vec::with_capacity(participants.len());
            let mut weights = Vec::with_capacity(participants.len());
            let mut loss_sum = 0.0f64;
            let mut step_sum = 0usize;
            for &c in &participants {
                let mut replica = template.clone();
                global_client.load_into(&mut replica.client)?;
                global_server.load_into(&mut replica.server)?;
                let mut client_opt = make_opt(cfg);
                let mut server_opt = make_opt(cfg);
                let batcher = make_batcher(cfg, c)?;
                let (l, s) = split_train_epoch(
                    &mut replica,
                    &mut client_opt,
                    &mut server_opt,
                    &ctx.train_shards[c],
                    &batcher,
                    round as u64,
                )?;
                loss_sum += l;
                step_sum += s;
                client_snaps.push(ParamVec::from_network(&replica.client));
                server_snaps.push(ParamVec::from_network(&replica.server));
                weights.push(ctx.train_shards[c].len() as f64);
            }
            global_client = aggregate_snapshots(&client_snaps, &weights)?;
            global_server = aggregate_snapshots(&server_snaps, &weights)?;

            let latency = gsfl_round(
                &ctx.latency,
                &ctx.costs,
                &steps,
                &singleton_groups,
                cfg.bandwidth_policy,
                cfg.channel,
                round as u64,
            )?;
            let acc = if should_eval(cfg, round) {
                let joined = join_params(&global_client, &global_server);
                Some(eval_params(ctx, &mut eval_net, &joined)?)
            } else {
                None
            };
            rec.push(round, latency, loss_sum / step_sum.max(1) as f64, acc);
            if target_reached(cfg, acc) {
                break;
            }
        }
        let server_bytes = ctx
            .costs
            .full_model_bytes
            .as_u64()
            .saturating_sub(ctx.costs.client_model_bytes.as_u64());
        let storage = server_storage_bytes(
            SchemeKind::SplitFed,
            cfg.clients,
            cfg.groups,
            server_bytes,
            ctx.costs.full_model_bytes.as_u64(),
        );
        Ok(rec.finish(storage, eval_net.param_count()))
    }
}
