//! SplitFed v1 (SFL): the storage-hungry hybrid the paper's intro
//! critiques.

use super::common::{
    feedback_key, join_params, make_batcher, make_cut_channel_for, make_opt, require_state,
    require_state_mut, split_train_epoch, CutLink, FeedbackStore, ModelCodec,
};
use super::{RoundOutcome, Scheme, SchemeKind};
use crate::aggregate::aggregate_tree;
use crate::context::TrainContext;
use crate::latency::gsfl_round_recovered;
use crate::orchestrator::{PlanSelector, RoundPlan};
use crate::parallel::{round_fanout, run_indexed};
use crate::population::CowParams;
use crate::Result;
use gsfl_nn::params::ParamVec;
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;
use gsfl_tensor::workspace::Workspace;

/// SplitFed v1: every client trains *in parallel* against its **own**
/// server-side model replica (N replicas resident at the server); both
/// halves are FedAvg-aggregated every round. Statistically equivalent to
/// GSFL with M = N singleton groups — which is exactly how it is
/// computed — but its server storage grows with N instead of M.
///
/// Because each client owns a private replica, SplitFed is the one
/// scheme where *per-client heterogeneous cuts* are structurally free:
/// when the round plan carries [`RoundPlan::client_cuts`] each replica
/// is split at its client's own cut, and the round aggregates the
/// re-joined full models (cut-invariant) instead of per-half snapshots.
#[derive(Debug, Default)]
pub struct SplitFed {
    state: Option<State>,
}

#[derive(Debug)]
struct State {
    /// Architecture template; parameters live in `global` and the network
    /// is split at the round's cut before training.
    template: Sequential,
    /// Current global full-model parameters (client ++ server halves),
    /// shared copy-on-write across the round's replicas.
    global: CowParams,
    /// This run's private plan-selection state.
    plans: PlanSelector,
    steps: Vec<usize>,
    /// Recycled aggregation scratch.
    ws: Workspace,
    /// Per-client EF21 residuals for the client-model upload codec,
    /// carried across rounds.
    feedback: FeedbackStore,
}

impl SplitFed {
    /// An uninitialized scheme instance; [`Scheme::init`] prepares it.
    pub fn new() -> Self {
        SplitFed::default()
    }
}

impl Scheme for SplitFed {
    fn kind(&self) -> SchemeKind {
        SchemeKind::SplitFed
    }

    fn init(&mut self, ctx: &TrainContext) -> Result<()> {
        let cfg = &ctx.config;
        let net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let global = CowParams::new(ParamVec::from_network(&net));
        self.state = Some(State {
            template: net,
            global,
            plans: PlanSelector::from_config(&ctx.config),
            steps: ctx.steps_per_client(),
            ws: Workspace::new(),
            feedback: FeedbackStore::default(),
        });
        Ok(())
    }

    fn run_round(&mut self, ctx: &TrainContext, round: usize) -> Result<RoundOutcome> {
        let state = require_state_mut(&mut self.state)?;
        let cfg = &ctx.config;
        let (plan, costs) = state.plans.plan_for_round(ctx, round as u64)?;
        let available = ctx.available_clients(round as u64);
        let mut participants = available.clone();
        // A cohort cap admits only the head of the deterministic
        // participant order.
        if let Some(k) = plan.cohort {
            participants.truncate(k);
        }
        let singleton_groups: Vec<Vec<usize>> = participants.iter().map(|&c| vec![c]).collect();
        let group_costs = match &plan.client_cuts {
            None => vec![costs; singleton_groups.len()],
            Some(cuts) => participants
                .iter()
                .map(|&c| ctx.costs_by_cut[&cuts[c]].with_compression(&plan.codec))
                .collect(),
        };
        // Fault-aware pricing runs *before* training: the fate decides
        // which slots deliver an update (backup standbys cover crashed
        // primaries) and only those replicas train and aggregate.
        let recovery = ctx.round_recovery(round as u64, &participants, &available);
        let (mut latency, fate) = gsfl_round_recovered(
            ctx.env.as_ref(),
            &group_costs,
            &state.steps,
            &singleton_groups,
            cfg.bandwidth_policy,
            cfg.channel,
            round as u64,
            plan.shares.as_deref(),
            &recovery.plan,
        )?;
        if !recovery.quorum_met(&fate) {
            // Quorum miss: charged and recorded, nothing aggregates —
            // the global model is left unchanged.
            latency.faults.quorum_met = false;
            state.plans.observe_outcome(round as u64, &plan, &latency);
            return Ok(RoundOutcome {
                latency,
                train_loss: 0.0,
                aggregated: false,
            });
        }
        let shards = ctx.round_shards_recovered(round as u64, &recovery)?;
        let shards = shards.as_ref();
        // The clients that actually train this round: each surviving
        // slot's primary, or its standby when the primary crashed.
        let trainees: Vec<usize> = fate
            .survivors
            .iter()
            .map(|&slot| recovery.trainee_for(slot))
            .collect();
        // EF residual keys for the surviving slots (population member
        // ids, or dense trainee ids), parallel to `trainees`.
        let members = ctx.cohort_members(round as u64);
        let keys: Vec<u64> = fate
            .survivors
            .iter()
            .map(|&slot| feedback_key(members.as_deref(), &recovery, slot))
            .collect();

        // SplitFed's whole point is that clients train concurrently
        // against their own server-side replicas — so run them on
        // parallel host threads, collecting in fixed participant order
        // (byte-identical to the sequential path).
        let (threads, _grant) = round_fanout(cfg, trainees.len());

        let (loss_sum, step_sum) = match &plan.client_cuts {
            None => run_uniform(ctx, state, &plan, &trainees, &keys, shards, threads, round)?,
            Some(cuts) => run_hetero(
                ctx, state, &plan, cuts, &trainees, &keys, shards, threads, round,
            )?,
        };

        state.plans.observe_outcome(round as u64, &plan, &latency);
        Ok(RoundOutcome {
            latency,
            train_loss: loss_sum / step_sum.max(1) as f64,
            aggregated: true,
        })
    }

    fn global_params(&self) -> Result<ParamVec> {
        let state = require_state(&self.state)?;
        Ok(state.global.get().clone())
    }
}

/// The historical single-cut round: one shared split template, per-half
/// snapshots aggregated separately. Byte-identical to the pre-plan code
/// path when the plan is static.
#[allow(clippy::too_many_arguments)]
fn run_uniform(
    ctx: &TrainContext,
    state: &mut State,
    plan: &RoundPlan,
    participants: &[usize],
    keys: &[u64],
    shards: &[gsfl_data::dataset::ImageDataset],
    threads: usize,
    round: usize,
) -> Result<(f64, usize)> {
    let cfg = &ctx.config;
    let mut whole = state.template.clone();
    state.global.load_into(&mut whole)?;
    let template = SplitNetwork::split(whole, plan.cut)?;
    let template = &template;
    // Round-start client half: the delta reference every client's
    // model upload is encoded against.
    let client_ref = ParamVec::from_network(&template.client);
    let client_ref = &client_ref;
    let ef = plan.codec.error_feedback;
    let feedback = &state.feedback;
    let passes = run_indexed(participants.len(), threads, |idx| {
        let c = participants[idx];
        let mut replica = template.clone();
        let mut client_opt = make_opt(cfg);
        let mut server_opt = make_opt(cfg);
        let mut channel = make_cut_channel_for(&plan.codec);
        let mut model_codec = ModelCodec::new(&plan.codec.client_model, cfg.seed);
        let batcher = make_batcher(cfg, c)?;
        let (l, s) = split_train_epoch(
            &mut replica,
            &mut client_opt,
            &mut server_opt,
            &shards[c],
            &batcher,
            round as u64,
            CutLink::new(cfg, &mut channel, c),
        )?;
        // The client half crosses the wire for aggregation; the
        // server half lives at the server and ships nothing.
        let mut client_snap = ParamVec::from_network(&replica.client);
        let mut residual = feedback.fetch(ef, keys[idx]);
        model_codec.apply_vec(
            &mut client_snap,
            client_ref,
            residual.as_mut(),
            round as u64,
            c,
        )?;
        Ok((
            client_snap,
            ParamVec::from_network(&replica.server),
            shards[c].len() as f64,
            l,
            s,
            residual,
        ))
    })?;
    let mut client_snaps = Vec::with_capacity(passes.len());
    let mut server_snaps = Vec::with_capacity(passes.len());
    let mut weights = Vec::with_capacity(passes.len());
    let mut loss_sum = 0.0f64;
    let mut step_sum = 0usize;
    for (idx, (client_snap, server_snap, weight, l, s, residual)) in passes.into_iter().enumerate()
    {
        client_snaps.push(client_snap);
        server_snaps.push(server_snap);
        weights.push(weight);
        loss_sum += l;
        step_sum += s;
        if let Some(res) = residual {
            state.feedback.store(keys[idx], res);
        }
    }
    // Two-tier tree aggregation over the AP topology, bit-identical
    // to flat FedAvg (see `crate::aggregate`).
    let mut aps = Vec::with_capacity(participants.len());
    for &c in participants {
        aps.push(ctx.env.ap_of(c, round as u64)?);
    }
    let global_client = aggregate_tree(&client_snaps, &weights, &aps, &mut state.ws)?;
    let global_server = aggregate_tree(&server_snaps, &weights, &aps, &mut state.ws)?;
    state
        .global
        .replace(join_params(&global_client.params, &global_server.params));
    // Dead buffers feed the next round's aggregation scratch.
    state.ws.give(global_client.params.into_values());
    state.ws.give(global_server.params.into_values());
    for snap in client_snaps.into_iter().chain(server_snaps) {
        state.ws.give(snap.into_values());
    }
    Ok((loss_sum, step_sum))
}

/// Heterogeneous cuts: each participant's replica is split at its own
/// cut, so half shapes differ across clients and per-half aggregation is
/// impossible. Instead every replica re-joins into a full parameter
/// vector (cut-invariant layout) and one tree aggregation merges them.
#[allow(clippy::too_many_arguments)]
fn run_hetero(
    ctx: &TrainContext,
    state: &mut State,
    plan: &RoundPlan,
    cuts: &[usize],
    participants: &[usize],
    keys: &[u64],
    shards: &[gsfl_data::dataset::ImageDataset],
    threads: usize,
    round: usize,
) -> Result<(f64, usize)> {
    let cfg = &ctx.config;
    let template = &state.template;
    let global = state.global.clone();
    let global = &global;
    let ef = plan.codec.error_feedback;
    let feedback = &state.feedback;
    let passes = run_indexed(participants.len(), threads, |idx| {
        let c = participants[idx];
        let mut whole = template.clone();
        global.load_into(&mut whole)?;
        let mut replica = SplitNetwork::split(whole, cuts[c])?;
        // Round-start client half *at this client's cut* — the delta
        // reference its model upload is encoded against.
        let client_ref = ParamVec::from_network(&replica.client);
        let mut client_opt = make_opt(cfg);
        let mut server_opt = make_opt(cfg);
        let mut channel = make_cut_channel_for(&plan.codec);
        let mut model_codec = ModelCodec::new(&plan.codec.client_model, cfg.seed);
        let batcher = make_batcher(cfg, c)?;
        let (l, s) = split_train_epoch(
            &mut replica,
            &mut client_opt,
            &mut server_opt,
            &shards[c],
            &batcher,
            round as u64,
            CutLink::new(cfg, &mut channel, c),
        )?;
        let mut client_snap = ParamVec::from_network(&replica.client);
        let mut residual = feedback.fetch(ef, keys[idx]);
        model_codec.apply_vec(
            &mut client_snap,
            &client_ref,
            residual.as_mut(),
            round as u64,
            c,
        )?;
        Ok((
            join_params(&client_snap, &ParamVec::from_network(&replica.server)),
            shards[c].len() as f64,
            l,
            s,
            residual,
        ))
    })?;
    let mut snapshots = Vec::with_capacity(passes.len());
    let mut weights = Vec::with_capacity(passes.len());
    let mut loss_sum = 0.0f64;
    let mut step_sum = 0usize;
    for (idx, (snap, weight, l, s, residual)) in passes.into_iter().enumerate() {
        snapshots.push(snap);
        weights.push(weight);
        loss_sum += l;
        step_sum += s;
        if let Some(res) = residual {
            state.feedback.store(keys[idx], res);
        }
    }
    let mut aps = Vec::with_capacity(participants.len());
    for &c in participants {
        aps.push(ctx.env.ap_of(c, round as u64)?);
    }
    let tree = aggregate_tree(&snapshots, &weights, &aps, &mut state.ws)?;
    let old = std::mem::replace(&mut state.global, CowParams::new(tree.params));
    if let Some(dead) = old.into_inner() {
        state.ws.give(dead.into_values());
    }
    for snap in snapshots {
        state.ws.give(snap.into_values());
    }
    Ok((loss_sum, step_sum))
}
