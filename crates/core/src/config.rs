//! Experiment configuration.

use crate::compression::CompressionSpec;
use crate::cut::CutPolicySpec;
use crate::latency::ChannelMode;
use crate::orchestrator::OrchestratorSpec;
use crate::population::PopulationConfig;
use crate::recovery::RecoverySpec;
use crate::{CoreError, Result};
use gsfl_data::synth::Augment;
use gsfl_nn::model::{CutPoint, DeepThin, Mlp};
use gsfl_nn::Sequential;
use gsfl_wireless::allocation::BandwidthPolicy;
use gsfl_wireless::device::DeviceHeterogeneity;
use gsfl_wireless::environment::ChannelModel;
use gsfl_wireless::latency::LatencyModel;
use gsfl_wireless::scenario::Scenario;
use gsfl_wireless::server::EdgeServer;
use gsfl_wireless::units::{FlopsRate, Hertz};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which network architecture an experiment trains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The DeepThin-style lightweight CNN (NCHW inputs).
    DeepThin {
        /// First conv stage width.
        conv1: usize,
        /// Second conv stage width.
        conv2: usize,
        /// Dense hidden width.
        fc: usize,
    },
    /// An MLP over flattened inputs (fast; used by tests).
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
}

impl ModelKind {
    /// Paper-scale CNN defaults.
    pub fn deepthin_default() -> Self {
        ModelKind::DeepThin {
            conv1: 8,
            conv2: 16,
            fc: 64,
        }
    }

    /// Whether inputs must be flattened to `[n, d]`.
    pub fn wants_flat_inputs(&self) -> bool {
        matches!(self, ModelKind::Mlp { .. })
    }

    /// Builds the network for the given sample dims and class count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when the model cannot be built for the
    /// dims (e.g. non-multiple-of-4 image for the CNN).
    pub fn build(&self, sample_dims: &[usize], classes: usize, seed: u64) -> Result<Sequential> {
        match self {
            ModelKind::DeepThin { conv1, conv2, fc } => {
                if sample_dims.len() != 3 || sample_dims[0] != 3 {
                    return Err(CoreError::Config(format!(
                        "DeepThin needs [3,h,w] samples, got {sample_dims:?}"
                    )));
                }
                if sample_dims[1] != sample_dims[2] {
                    return Err(CoreError::Config("DeepThin needs square images".into()));
                }
                Ok(DeepThin::builder(sample_dims[1], classes)
                    .conv1_channels(*conv1)
                    .conv2_channels(*conv2)
                    .fc_width(*fc)
                    .seed(seed)
                    .build()?)
            }
            ModelKind::Mlp { hidden } => {
                let input: usize = sample_dims.iter().product();
                Ok(Mlp::new(input, hidden, classes, seed).into_sequential())
            }
        }
    }

    /// The default cut index (client-side depth) for split schemes.
    pub fn default_cut(&self) -> usize {
        match self {
            // After the first pooling stage — shallow client, as in the paper.
            ModelKind::DeepThin { .. } => CutPoint::AfterPool1.layer_index(),
            // After the first dense+relu block.
            ModelKind::Mlp { .. } => 2,
        }
    }
}

/// How the training data is spread across clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Shuffle-and-deal.
    Iid,
    /// Per-class Dirichlet(α) allocation; small α ⇒ more skew.
    Dirichlet(f64),
    /// Sort-by-label shards, `k` shards per client.
    Shards(usize),
}

/// Dataset generation parameters (the synthetic GTSRB substitution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of classes (≤ 43).
    pub classes: usize,
    /// Training samples generated per class.
    pub samples_per_class: usize,
    /// Test samples generated per class (independent draw).
    pub test_per_class: usize,
    /// Square image size (multiple of 4 for the CNN).
    pub image_size: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            classes: 43,
            samples_per_class: 50,
            test_per_class: 10,
            image_size: 16,
        }
    }
}

/// Wireless-network parameters (thin wrapper over the wireless crate's
/// builder so experiments serialize cleanly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirelessConfig {
    /// Total system bandwidth in MHz.
    pub bandwidth_mhz: f64,
    /// Edge-server slots (parallel server-side executions).
    pub server_slots: usize,
    /// Edge-server per-slot rate in GFLOP/s.
    pub server_gflops: f64,
    /// Client device rate range in GFLOP/s.
    pub device_min_gflops: f64,
    /// Client device rate range in GFLOP/s.
    pub device_max_gflops: f64,
    /// Enable Rayleigh block fading.
    pub fading: bool,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        WirelessConfig {
            bandwidth_mhz: 10.0,
            server_slots: 4,
            server_gflops: 50.0,
            // Effective on-device *training* throughput of IoT/mobile-class
            // CPUs — the paper's "resource-limited" regime.
            device_min_gflops: 0.2,
            device_max_gflops: 0.6,
            fading: true,
        }
    }
}

/// How clients are assigned to GSFL groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupingKind {
    /// Client `i` goes to group `i mod M`.
    RoundRobin,
    /// Random permutation, dealt round-robin.
    Random,
    /// Longest-processing-time balancing on estimated client round time.
    ComputeBalanced,
    /// Balancing on channel quality (distance as proxy).
    ChannelAware,
}

/// Full experiment description.
///
/// Construct with [`ExperimentConfig::builder`]; every scheme reads the
/// same config so comparisons share data, model init and channel
/// realizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of clients N.
    pub clients: usize,
    /// Number of GSFL groups M (must divide ≤ N).
    pub groups: usize,
    /// Training rounds to run.
    pub rounds: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub learning_rate: f32,
    /// SGD momentum (0 disables).
    pub momentum: f32,
    /// FL local epochs per round.
    pub local_epochs: usize,
    /// Model architecture.
    pub model: ModelKind,
    /// Cut index override for split schemes (client-side layer count);
    /// `None` uses the model's default cut.
    pub cut_index: Option<usize>,
    /// How split schemes choose the cut each round: the fixed configured
    /// cut (default, the paper's behavior), a greedy latency-estimate
    /// policy, or a bandit over realized latencies. Adaptive policies
    /// require `momentum == 0`.
    #[serde(default)]
    pub cut_policy: CutPolicySpec,
    /// How each round's joint cut × codec × bandwidth-share decision is
    /// made: statically from the configured fields (default, the paper's
    /// behavior), by a greedy per-round latency estimate, or by a bandit
    /// over realized latencies. Non-static orchestrators require
    /// `momentum == 0` and the fixed cut policy — the orchestrator owns
    /// the per-round cut decision.
    #[serde(default)]
    pub orchestrator: OrchestratorSpec,
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// Data partition strategy.
    pub partition: PartitionStrategy,
    /// Data augmentation.
    pub augment: Augment,
    /// Wireless parameters.
    pub wireless: WirelessConfig,
    /// The wireless scenario: static (default) or one of the
    /// time-varying environments (mobility, diurnal bandwidth,
    /// congestion, stragglers, dropouts, composite).
    #[serde(default)]
    pub scenario: Scenario,
    /// Which codec each exchanged artifact (smashed data, gradients,
    /// model updates) is encoded with before crossing the wire. Defaults
    /// to fp32 identity on everything — byte-identical to the pre-codec
    /// simulator.
    #[serde(default)]
    pub compression: CompressionSpec,
    /// Bandwidth split among concurrent transmitters (SharedPool mode).
    pub bandwidth_policy: BandwidthPolicy,
    /// Spectrum assignment model (dedicated OFDMA subchannels vs dynamic
    /// shared pool).
    pub channel: ChannelMode,
    /// Grouping strategy for GSFL.
    pub grouping: GroupingKind,
    /// Evaluate on the test set every this many rounds (≥ 1).
    pub eval_every: usize,
    /// Stop early once test accuracy reaches this fraction, if set.
    pub target_accuracy: Option<f64>,
    /// Per-round probability that a client is reachable and participates
    /// (1.0 = always available; lower values inject churn/failures).
    pub availability: f64,
    /// Optional population-scale mode: `Some` declares a configured
    /// population of [`PopulationConfig::clients`] sparse clients, of
    /// which each round samples and materializes a cohort of exactly
    /// `clients` — so `clients` doubles as the cohort capacity that the
    /// environment, grouping, and latency accounting are sized to.
    /// `None` (default) keeps every configured client dense, exactly as
    /// before.
    #[serde(default)]
    pub population: Option<PopulationConfig>,
    /// Fault recovery: optional round deadline with quorum aggregation
    /// and backup-client over-provisioning. The default spec is a no-op
    /// (no deadline, no backups) — rounds behave exactly as before.
    #[serde(default)]
    pub recovery: RecoverySpec,
    /// Host threads used to train independent clients/groups in parallel
    /// inside a round. `None` (default) draws from the shared
    /// process-wide budget (`GSFL_THREADS` env var or the machine's
    /// available parallelism); `Some(n)` forces exactly `n`. Results are
    /// bit-identical for every setting — work is partitioned at fixed
    /// boundaries and aggregated in fixed order.
    #[serde(default)]
    pub client_threads: Option<usize>,
    /// Master experiment seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Starts a builder with paper-scale defaults (30 clients, 6 groups).
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: ExperimentConfig {
                clients: 30,
                groups: 6,
                rounds: 100,
                batch_size: 16,
                learning_rate: 0.05,
                momentum: 0.0,
                local_epochs: 1,
                model: ModelKind::deepthin_default(),
                cut_index: None,
                cut_policy: CutPolicySpec::Fixed,
                orchestrator: OrchestratorSpec::Static,
                dataset: DatasetConfig::default(),
                partition: PartitionStrategy::Dirichlet(1.0),
                augment: Augment::default(),
                wireless: WirelessConfig::default(),
                scenario: Scenario::Static,
                compression: CompressionSpec::default(),
                bandwidth_policy: BandwidthPolicy::Equal,
                channel: ChannelMode::Dedicated,
                grouping: GroupingKind::RoundRobin,
                eval_every: 2,
                target_accuracy: None,
                availability: 1.0,
                population: None,
                recovery: RecoverySpec::default(),
                client_threads: None,
                seed: 0,
            },
        }
    }

    /// The resolved cut index for split schemes.
    pub fn cut(&self) -> usize {
        self.cut_index.unwrap_or_else(|| self.model.default_cut())
    }

    /// Builds the wireless environment for this experiment: the base
    /// latency model wrapped by whatever [`Scenario`] the config names.
    ///
    /// # Errors
    ///
    /// Propagates wireless and scenario configuration errors.
    pub fn environment(&self) -> Result<Arc<dyn ChannelModel>> {
        Ok(Arc::from(
            self.scenario.build(self.latency_model()?, self.seed)?,
        ))
    }

    /// Builds the static base wireless latency model for this experiment
    /// (before any scenario overlay; see [`ExperimentConfig::environment`]).
    ///
    /// # Errors
    ///
    /// Propagates wireless configuration errors.
    pub fn latency_model(&self) -> Result<LatencyModel> {
        Ok(LatencyModel::builder()
            .clients(self.clients)
            .seed(self.seed)
            .bandwidth(Hertz::from_mhz(self.wireless.bandwidth_mhz))
            .server(EdgeServer::new(
                FlopsRate::from_gflops(self.wireless.server_gflops),
                self.wireless.server_slots,
            )?)
            .heterogeneity(DeviceHeterogeneity {
                min_gflops: self.wireless.device_min_gflops,
                max_gflops: self.wireless.device_max_gflops,
            })
            .fading(self.wireless.fading)
            .build()?)
    }

    fn validate(&self) -> Result<()> {
        if self.clients == 0 {
            return Err(CoreError::Config("clients must be ≥ 1".into()));
        }
        if self.groups == 0 || self.groups > self.clients {
            return Err(CoreError::Config(format!(
                "groups must be in 1..={}, got {}",
                self.clients, self.groups
            )));
        }
        if self.rounds == 0 {
            return Err(CoreError::Config("rounds must be ≥ 1".into()));
        }
        if self.batch_size == 0 {
            return Err(CoreError::Config("batch_size must be ≥ 1".into()));
        }
        if self.eval_every == 0 {
            return Err(CoreError::Config("eval_every must be ≥ 1".into()));
        }
        if self.local_epochs == 0 {
            return Err(CoreError::Config("local_epochs must be ≥ 1".into()));
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return Err(CoreError::Config("learning_rate must be > 0".into()));
        }
        if !self.cut_policy.is_fixed() && self.momentum != 0.0 {
            return Err(CoreError::Config(
                "adaptive cut policies require momentum == 0 (optimizer \
                 velocity cannot be remapped across cuts)"
                    .into(),
            ));
        }
        if let CutPolicySpec::Bandit { epsilon } = self.cut_policy {
            if !(0.0..=1.0).contains(&epsilon) || epsilon.is_nan() {
                return Err(CoreError::Config(format!(
                    "bandit epsilon must be in [0,1], got {epsilon}"
                )));
            }
        }
        if !self.orchestrator.is_static() {
            if self.momentum != 0.0 {
                return Err(CoreError::Config(
                    "orchestrators require momentum == 0 (optimizer \
                     velocity cannot be remapped across cuts)"
                        .into(),
                ));
            }
            if !self.cut_policy.is_fixed() {
                return Err(CoreError::Config(
                    "orchestrators own the per-round cut decision; use the \
                     Fixed cut policy with a non-static orchestrator"
                        .into(),
                ));
            }
        }
        if let OrchestratorSpec::Bandit { epsilon } = self.orchestrator {
            if !(0.0..=1.0).contains(&epsilon) || epsilon.is_nan() {
                return Err(CoreError::Config(format!(
                    "orchestrator bandit epsilon must be in [0,1], got {epsilon}"
                )));
            }
        }
        if let Some(t) = self.target_accuracy {
            if !(0.0..=1.0).contains(&t) {
                return Err(CoreError::Config(format!(
                    "target_accuracy must be in [0,1], got {t}"
                )));
            }
        }
        if self.availability.is_nan() || self.availability <= 0.0 || self.availability > 1.0 {
            return Err(CoreError::Config(format!(
                "availability must be in (0,1], got {}",
                self.availability
            )));
        }
        if let PartitionStrategy::Dirichlet(a) = self.partition {
            if a.is_nan() || a <= 0.0 {
                return Err(CoreError::Config("dirichlet alpha must be > 0".into()));
            }
        }
        if let Some(p) = &self.population {
            if p.clients < self.clients as u64 {
                return Err(CoreError::Config(format!(
                    "population.clients ({}) must be at least the cohort \
                     capacity `clients` ({})",
                    p.clients, self.clients
                )));
            }
        }
        self.compression.validate()?;
        self.recovery.validate()?;
        Ok(())
    }
}

/// Builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the number of clients.
    pub fn clients(mut self, n: usize) -> Self {
        self.config.clients = n;
        self
    }

    /// Sets the number of GSFL groups.
    pub fn groups(mut self, m: usize) -> Self {
        self.config.groups = m;
        self
    }

    /// Sets the number of training rounds.
    pub fn rounds(mut self, r: usize) -> Self {
        self.config.rounds = r;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, b: usize) -> Self {
        self.config.batch_size = b;
        self
    }

    /// Sets the learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.learning_rate = lr;
        self
    }

    /// Sets SGD momentum.
    pub fn momentum(mut self, m: f32) -> Self {
        self.config.momentum = m;
        self
    }

    /// Sets FL local epochs.
    pub fn local_epochs(mut self, e: usize) -> Self {
        self.config.local_epochs = e;
        self
    }

    /// Sets the model architecture.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.config.model = model;
        self
    }

    /// Overrides the cut index.
    pub fn cut_index(mut self, cut: usize) -> Self {
        self.config.cut_index = Some(cut);
        self
    }

    /// Sets the cut via a named DeepThin cut point.
    pub fn cut_point(mut self, cp: CutPoint) -> Self {
        self.config.cut_index = Some(cp.layer_index());
        self
    }

    /// Sets the per-round cut-selection policy (see
    /// [`crate::cut::CutPolicySpec`]).
    pub fn cut_policy(mut self, p: CutPolicySpec) -> Self {
        self.config.cut_policy = p;
        self
    }

    /// Sets the per-round joint orchestrator (see
    /// [`crate::orchestrator::OrchestratorSpec`]).
    pub fn orchestrator(mut self, o: OrchestratorSpec) -> Self {
        self.config.orchestrator = o;
        self
    }

    /// Sets dataset generation parameters.
    pub fn dataset(mut self, d: DatasetConfig) -> Self {
        self.config.dataset = d;
        self
    }

    /// Sets the partition strategy.
    pub fn partition(mut self, p: PartitionStrategy) -> Self {
        self.config.partition = p;
        self
    }

    /// Sets augmentation ranges.
    pub fn augment(mut self, a: Augment) -> Self {
        self.config.augment = a;
        self
    }

    /// Sets wireless parameters.
    pub fn wireless(mut self, w: WirelessConfig) -> Self {
        self.config.wireless = w;
        self
    }

    /// Sets the wireless scenario (see [`Scenario::presets`]).
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.config.scenario = s;
        self
    }

    /// Sets the per-artifact payload compression (see
    /// [`CompressionSpec`]).
    pub fn compression(mut self, c: CompressionSpec) -> Self {
        self.config.compression = c;
        self
    }

    /// Sets the bandwidth allocation policy.
    pub fn bandwidth_policy(mut self, p: BandwidthPolicy) -> Self {
        self.config.bandwidth_policy = p;
        self
    }

    /// Sets the spectrum assignment model.
    pub fn channel(mut self, c: ChannelMode) -> Self {
        self.config.channel = c;
        self
    }

    /// Sets the grouping strategy.
    pub fn grouping(mut self, g: GroupingKind) -> Self {
        self.config.grouping = g;
        self
    }

    /// Sets evaluation cadence.
    pub fn eval_every(mut self, e: usize) -> Self {
        self.config.eval_every = e;
        self
    }

    /// Sets an early-stop accuracy target (fraction in `[0,1]`).
    pub fn target_accuracy(mut self, t: f64) -> Self {
        self.config.target_accuracy = Some(t);
        self
    }

    /// Sets the per-round client availability probability.
    pub fn availability(mut self, p: f64) -> Self {
        self.config.availability = p;
        self
    }

    /// Enables population-scale mode (see
    /// [`ExperimentConfig::population`]): `clients` becomes the cohort
    /// capacity sampled each round from a sparse population of
    /// `p.clients`.
    pub fn population(mut self, p: PopulationConfig) -> Self {
        self.config.population = Some(p);
        self
    }

    /// Sets the fault-recovery spec (round deadline / quorum / backup
    /// cohort size; see [`RecoverySpec`]).
    pub fn recovery(mut self, r: RecoverySpec) -> Self {
        self.config.recovery = r;
        self
    }

    /// Forces the in-round client/group parallelism to exactly `n` host
    /// threads (see [`ExperimentConfig::client_threads`]).
    pub fn client_threads(mut self, n: usize) -> Self {
        self.config.client_threads = Some(n.max(1));
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] describing the first invalid field.
    pub fn build(self) -> Result<ExperimentConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let c = ExperimentConfig::builder().build().unwrap();
        assert_eq!(c.clients, 30);
        assert_eq!(c.groups, 6);
        assert_eq!(c.cut(), CutPoint::AfterPool1.layer_index());
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(ExperimentConfig::builder().clients(0).build().is_err());
        assert!(ExperimentConfig::builder().groups(0).build().is_err());
        assert!(ExperimentConfig::builder()
            .clients(4)
            .groups(5)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder().rounds(0).build().is_err());
        assert!(ExperimentConfig::builder().batch_size(0).build().is_err());
        assert!(ExperimentConfig::builder()
            .target_accuracy(1.5)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder()
            .partition(PartitionStrategy::Dirichlet(0.0))
            .build()
            .is_err());
        assert!(ExperimentConfig::builder()
            .learning_rate(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn cut_policy_validation() {
        assert!(ExperimentConfig::builder()
            .cut_policy(CutPolicySpec::Greedy)
            .build()
            .is_ok());
        assert!(
            ExperimentConfig::builder()
                .cut_policy(CutPolicySpec::Greedy)
                .momentum(0.9)
                .build()
                .is_err(),
            "adaptive cuts cannot carry optimizer momentum"
        );
        assert!(ExperimentConfig::builder()
            .cut_policy(CutPolicySpec::Bandit { epsilon: 1.5 })
            .build()
            .is_err());
        // Serde default keeps old configs loading as Fixed.
        let json = r#"{"clients":2,"groups":1,"rounds":1,"batch_size":1,
            "learning_rate":0.1,"momentum":0.0,"local_epochs":1,
            "model":{"Mlp":{"hidden":[8]}},"cut_index":null,
            "dataset":{"classes":2,"samples_per_class":2,"test_per_class":1,"image_size":8},
            "partition":"Iid","augment":{"rotation":0.0,"translation":0.0,"scale_jitter":0.0,
            "brightness":0.0,"noise_std":0.0,"background_jitter":0.0},
            "wireless":{"bandwidth_mhz":10.0,"server_slots":4,"server_gflops":50.0,
            "device_min_gflops":0.2,"device_max_gflops":0.6,"fading":true},
            "bandwidth_policy":"Equal","channel":"Dedicated","grouping":"RoundRobin",
            "eval_every":1,"target_accuracy":null,"availability":1.0,"seed":0}"#;
        let cfg: ExperimentConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.cut_policy, CutPolicySpec::Fixed);
        // ... and (no `orchestrator` key) as the static orchestrator.
        assert_eq!(cfg.orchestrator, OrchestratorSpec::Static);
    }

    #[test]
    fn orchestrator_validation() {
        assert!(ExperimentConfig::builder()
            .orchestrator(OrchestratorSpec::Greedy)
            .build()
            .is_ok());
        assert!(
            ExperimentConfig::builder()
                .orchestrator(OrchestratorSpec::Greedy)
                .momentum(0.9)
                .build()
                .is_err(),
            "orchestrated cuts cannot carry optimizer momentum"
        );
        assert!(
            ExperimentConfig::builder()
                .orchestrator(OrchestratorSpec::Greedy)
                .cut_policy(CutPolicySpec::Greedy)
                .build()
                .is_err(),
            "two per-round cut deciders must be rejected"
        );
        assert!(ExperimentConfig::builder()
            .orchestrator(OrchestratorSpec::Bandit { epsilon: 1.5 })
            .build()
            .is_err());
        assert!(ExperimentConfig::builder()
            .orchestrator(OrchestratorSpec::Bandit { epsilon: 0.2 })
            .build()
            .is_ok());
    }

    #[test]
    fn population_mode_validates() {
        let ok = ExperimentConfig::builder()
            .clients(8)
            .groups(2)
            .population(PopulationConfig {
                clients: 1_000_000,
                samples_per_client: 0,
            })
            .build()
            .unwrap();
        assert_eq!(ok.population.unwrap().clients, 1_000_000);
        assert!(
            ExperimentConfig::builder()
                .clients(8)
                .groups(2)
                .population(PopulationConfig {
                    clients: 4,
                    samples_per_client: 0,
                })
                .build()
                .is_err(),
            "a population smaller than the cohort cannot fill it"
        );
        // Old configs (no `population` key) keep loading as dense mode —
        // the serde test JSON below omits it.
    }

    #[test]
    fn cut_override() {
        let c = ExperimentConfig::builder().cut_index(5).build().unwrap();
        assert_eq!(c.cut(), 5);
        let c = ExperimentConfig::builder()
            .cut_point(CutPoint::AfterConv2)
            .build()
            .unwrap();
        assert_eq!(c.cut(), CutPoint::AfterConv2.layer_index());
    }

    #[test]
    fn model_kind_builds_both_architectures() {
        let cnn = ModelKind::deepthin_default()
            .build(&[3, 16, 16], 10, 0)
            .unwrap();
        assert_eq!(cnn.output_shape(&[1, 3, 16, 16]).unwrap(), vec![1, 10]);
        let mlp = ModelKind::Mlp { hidden: vec![32] }
            .build(&[3, 8, 8], 5, 0)
            .unwrap();
        assert_eq!(mlp.output_shape(&[1, 192]).unwrap(), vec![1, 5]);
        assert!(ModelKind::deepthin_default()
            .build(&[1, 16, 16], 10, 0)
            .is_err());
    }

    #[test]
    fn latency_model_builds() {
        let c = ExperimentConfig::builder()
            .clients(4)
            .groups(2)
            .build()
            .unwrap();
        let m = c.latency_model().unwrap();
        assert_eq!(m.client_count(), 4);
    }

    #[test]
    fn config_serializes() {
        let c = ExperimentConfig::builder().build().unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
