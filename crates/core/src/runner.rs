//! The session driver: build a context once, stream any scheme's rounds
//! against it.
//!
//! The round loop that every scheme used to reimplement — eval cadence,
//! recording, early stopping — lives here once, generically over the
//! [`Scheme`] trait. Two entry points:
//!
//! * [`Runner::run`] — one-shot: drain a session, get the [`RunResult`].
//! * [`Runner::session`] — streaming: an iterator of [`RoundEvent`]s, so
//!   callers can observe rounds as they finish, checkpoint, stream CSV
//!   rows, or abort mid-run and keep the partial result. `run` is a thin
//!   drain of this iterator, so both paths produce identical records.

use crate::config::ExperimentConfig;
use crate::context::TrainContext;
use crate::results::{RoundRecord, RunResult};
use crate::scheme::{eval_params, should_eval, Recorder, Scheme, SchemeKind};
use crate::stop::{NeverStop, StopPolicy, StopReason, TargetAccuracy};
use crate::Result;
use gsfl_nn::Sequential;
use std::collections::VecDeque;

/// Builds the shared context for an experiment and runs schemes against
/// it, guaranteeing every scheme sees identical data, model init, channel
/// realizations and grouping.
///
/// # Example
///
/// ```no_run
/// use gsfl_core::config::ExperimentConfig;
/// use gsfl_core::runner::Runner;
/// use gsfl_core::scheme::SchemeKind;
///
/// # fn main() -> Result<(), gsfl_core::CoreError> {
/// let config = ExperimentConfig::builder().clients(8).groups(2).rounds(5).build()?;
/// let runner = Runner::new(config)?;
/// let gsfl = runner.run(SchemeKind::Gsfl)?;
/// let sl = runner.run(SchemeKind::VanillaSplit)?;
/// assert!(gsfl.total_latency_s() < sl.total_latency_s());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    ctx: TrainContext,
}

impl Runner {
    /// Builds the experiment context (datasets, shards, wireless model,
    /// groups).
    ///
    /// # Errors
    ///
    /// Propagates configuration and construction errors.
    pub fn new(config: ExperimentConfig) -> Result<Self> {
        Ok(Runner {
            ctx: TrainContext::from_config(config)?,
        })
    }

    /// The shared context.
    pub fn context(&self) -> &TrainContext {
        &self.ctx
    }

    /// Starts a streaming session for one scheme, with the stop policy
    /// implied by the config (`target_accuracy` if set).
    ///
    /// # Errors
    ///
    /// Propagates scheme initialization errors.
    pub fn session(&self, kind: SchemeKind) -> Result<Session<'_>> {
        Session::over(&self.ctx, kind)
    }

    /// Starts a streaming session with an explicit stop policy.
    ///
    /// The policy *replaces* the config-implied one: a config-level
    /// `target_accuracy` is not consulted. To keep it, compose it in via
    /// [`crate::stop::CompositePolicy`] with a
    /// [`crate::stop::TargetAccuracy`] member.
    ///
    /// # Errors
    ///
    /// Propagates scheme initialization errors.
    pub fn session_with_policy(
        &self,
        kind: SchemeKind,
        policy: Box<dyn StopPolicy>,
    ) -> Result<Session<'_>> {
        Session::with_scheme(&self.ctx, kind.scheme(), policy)
    }

    /// Starts a streaming session over a caller-provided scheme instance
    /// (e.g. one built by a [`crate::scheme::SchemeRegistry`]). As with
    /// [`Runner::session_with_policy`], `policy` replaces the
    /// config-implied stop policy.
    ///
    /// # Errors
    ///
    /// Propagates scheme initialization errors.
    pub fn session_scheme(
        &self,
        scheme: Box<dyn Scheme>,
        policy: Box<dyn StopPolicy>,
    ) -> Result<Session<'_>> {
        Session::with_scheme(&self.ctx, scheme, policy)
    }

    /// Runs one scheme to completion by draining its session.
    ///
    /// # Errors
    ///
    /// Propagates scheme execution errors.
    pub fn run(&self, kind: SchemeKind) -> Result<RunResult> {
        self.session(kind)?.run_to_end()
    }

    /// Runs several schemes concurrently (sharing the immutable context),
    /// returning results in the order of `kinds`. The fan-out is clamped
    /// through the shared thread budget (see
    /// [`gsfl_tensor::threading`]), so stacking `run_many` on top of
    /// per-round client/group parallelism cannot oversubscribe the host.
    /// Records are identical to sequential runs — each scheme's training
    /// is independent and internally deterministic. `wall_clock_s`,
    /// however, measures real elapsed host time while the schemes
    /// contend for cores, so it is not comparable to a solo run's.
    ///
    /// # Errors
    ///
    /// Propagates the first scheme failure, in `kinds` order.
    pub fn run_many(&self, kinds: &[SchemeKind]) -> Result<Vec<RunResult>> {
        // Scheme-level fan-out always draws from the shared budget;
        // `client_threads` governs only the *in-round* parallelism, so
        // honoring it here too would apply the override at two nesting
        // levels at once and oversubscribe.
        let grant = gsfl_tensor::threading::request_threads(kinds.len());
        crate::parallel::run_indexed(kinds.len(), grant.threads(), |i| self.run(kinds[i]))
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A progress event streamed by a [`Session`].
///
/// Per round, a session yields `RoundStarted`, then — once the round's
/// training completes — `Aggregated` (for FedAvg schemes), `Evaluated`
/// (on eval-cadence rounds), and `RoundFinished` with the full record.
/// The final event is always `Stopped`, carrying why the run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundEvent {
    /// Round `round` is about to train.
    RoundStarted {
        /// 1-based round number.
        round: usize,
    },
    /// The round ended in a server-side FedAvg aggregation.
    Aggregated {
        /// 1-based round number.
        round: usize,
    },
    /// The global model was evaluated on the test set this round.
    Evaluated {
        /// 1-based round number.
        round: usize,
        /// Test accuracy in `[0,1]`.
        accuracy: f64,
    },
    /// The round finished; `record` is what [`RunResult::records`] will
    /// contain.
    RoundFinished {
        /// 1-based round number.
        round: usize,
        /// The recorded metrics.
        record: RoundRecord,
    },
    /// The session ended.
    Stopped {
        /// The last finished round.
        round: usize,
        /// Why the session ended.
        reason: StopReason,
    },
}

/// A streaming training run: an iterator of [`RoundEvent`]s over one
/// scheme and one shared context.
///
/// Drop the session (or stop iterating and call [`Session::finish`]) to
/// abort mid-run; the records accumulated so far are kept.
///
/// # Example
///
/// ```no_run
/// use gsfl_core::config::ExperimentConfig;
/// use gsfl_core::runner::{RoundEvent, Runner};
/// use gsfl_core::scheme::SchemeKind;
///
/// # fn main() -> Result<(), gsfl_core::CoreError> {
/// let runner = Runner::new(ExperimentConfig::builder().clients(8).groups(2).build()?)?;
/// let mut session = runner.session(SchemeKind::Gsfl)?;
/// for event in &mut session {
///     if let RoundEvent::Evaluated { round, accuracy } = event? {
///         println!("round {round}: {:.1}%", accuracy * 100.0);
///     }
/// }
/// let result = session.finish();
/// println!("{} rounds recorded", result.records.len());
/// # Ok(())
/// # }
/// ```
pub struct Session<'a> {
    ctx: &'a TrainContext,
    scheme: Box<dyn Scheme>,
    policy: Box<dyn StopPolicy>,
    eval_net: Sequential,
    param_count: usize,
    recorder: Recorder,
    queue: VecDeque<RoundEvent>,
    next_round: usize,
    announced: Option<usize>,
    done: bool,
}

impl<'a> Session<'a> {
    /// A session over `kind` with the config-implied stop policy
    /// (`target_accuracy` if set, otherwise run all rounds).
    ///
    /// # Errors
    ///
    /// Propagates scheme initialization errors.
    pub fn over(ctx: &'a TrainContext, kind: SchemeKind) -> Result<Self> {
        Session::with_scheme(ctx, kind.scheme(), default_policy(&ctx.config))
    }

    /// A session over an explicit scheme instance and stop policy. The
    /// scheme may be freshly constructed; this initializes it.
    ///
    /// # Errors
    ///
    /// Propagates scheme initialization errors.
    pub fn with_scheme(
        ctx: &'a TrainContext,
        mut scheme: Box<dyn Scheme>,
        policy: Box<dyn StopPolicy>,
    ) -> Result<Self> {
        scheme.init(ctx)?;
        let cfg = &ctx.config;
        let eval_net = cfg
            .model
            .build(&ctx.sample_dims, cfg.dataset.classes, cfg.seed)?;
        let param_count = eval_net.param_count();
        let recorder = Recorder::new(scheme.name());
        Ok(Session {
            ctx,
            scheme,
            policy,
            eval_net,
            param_count,
            recorder,
            queue: VecDeque::new(),
            next_round: 1,
            announced: None,
            done: false,
        })
    }

    /// The scheme being trained.
    pub fn kind(&self) -> SchemeKind {
        self.scheme.kind()
    }

    /// Executes the announced round and queues its events.
    fn execute(&mut self, round: usize) -> Result<()> {
        let cfg = &self.ctx.config;
        let outcome = self.scheme.run_round(self.ctx, round)?;
        let accuracy = if should_eval(cfg, round) {
            let params = self.scheme.global_params()?;
            Some(eval_params(self.ctx, &mut self.eval_net, &params)?)
        } else {
            None
        };
        self.recorder
            .push(round, outcome.latency, outcome.train_loss, accuracy);
        let record = *self.recorder.last_record().expect("record was just pushed");

        if outcome.aggregated {
            self.queue.push_back(RoundEvent::Aggregated { round });
        }
        if let Some(accuracy) = accuracy {
            self.queue
                .push_back(RoundEvent::Evaluated { round, accuracy });
        }
        self.queue
            .push_back(RoundEvent::RoundFinished { round, record });

        self.next_round = round + 1;
        if let Some(reason) = self.policy.observe(&record) {
            self.queue.push_back(RoundEvent::Stopped { round, reason });
            self.done = true;
        } else if round >= cfg.rounds {
            self.queue.push_back(RoundEvent::Stopped {
                round,
                reason: StopReason::RoundBudget { rounds: cfg.rounds },
            });
            self.done = true;
        }
        Ok(())
    }

    /// Consumes the session and produces the result accumulated so far
    /// (the complete result after a full drain; a partial one after an
    /// abort).
    pub fn finish(self) -> RunResult {
        let storage = self.scheme.storage_bytes(self.ctx);
        self.recorder.finish(storage, self.param_count)
    }

    /// Drains every event and returns the final result — the one-shot
    /// path [`Runner::run`] uses.
    ///
    /// # Errors
    ///
    /// Propagates the first round error.
    pub fn run_to_end(mut self) -> Result<RunResult> {
        for event in &mut self {
            event?;
        }
        Ok(self.finish())
    }
}

impl Iterator for Session<'_> {
    type Item = Result<RoundEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(event) = self.queue.pop_front() {
            return Some(Ok(event));
        }
        if self.done {
            return None;
        }
        match self.announced.take() {
            None => {
                let round = self.next_round;
                if round > self.ctx.config.rounds {
                    self.done = true;
                    return None;
                }
                self.announced = Some(round);
                self.recorder.round_started();
                Some(Ok(RoundEvent::RoundStarted { round }))
            }
            Some(round) => match self.execute(round) {
                Ok(()) => self.queue.pop_front().map(Ok),
                Err(e) => {
                    self.done = true;
                    Some(Err(e))
                }
            },
        }
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("scheme", &self.scheme.name())
            .field("next_round", &self.next_round)
            .field("done", &self.done)
            .finish()
    }
}

/// The stop policy implied by a config: target accuracy if set.
fn default_policy(cfg: &ExperimentConfig) -> Box<dyn StopPolicy> {
    match cfg.target_accuracy {
        Some(target) => Box::new(TargetAccuracy::new(target)),
        None => Box::new(NeverStop),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, ModelKind};
    use crate::stop::LatencyBudget;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .clients(4)
            .groups(2)
            .rounds(3)
            .batch_size(4)
            .eval_every(1)
            .learning_rate(0.1)
            .dataset(DatasetConfig {
                classes: 3,
                samples_per_class: 8,
                test_per_class: 4,
                image_size: 8,
            })
            .model(ModelKind::Mlp { hidden: vec![16] })
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn runner_executes_every_scheme() {
        let runner = Runner::new(tiny()).unwrap();
        for kind in SchemeKind::all() {
            let result = runner.run(kind).unwrap();
            assert_eq!(result.records.len(), 3, "{kind}");
            assert!(result.total_latency_s() > 0.0, "{kind}");
            assert!(
                result.records.last().unwrap().test_accuracy.is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn deterministic_runs() {
        let runner = Runner::new(tiny()).unwrap();
        let a = runner.run(SchemeKind::Gsfl).unwrap();
        let b = runner.run(SchemeKind::Gsfl).unwrap();
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.train_loss, rb.train_loss);
            assert_eq!(ra.test_accuracy, rb.test_accuracy);
            assert_eq!(ra.round_latency_s, rb.round_latency_s);
        }
    }

    #[test]
    fn early_stop_truncates() {
        let mut cfg = tiny();
        cfg.target_accuracy = Some(0.0); // reached at the first eval
        let runner = Runner::new(cfg).unwrap();
        let result = runner.run(SchemeKind::Centralized).unwrap();
        assert_eq!(result.records.len(), 1);
    }

    #[test]
    fn session_streams_expected_event_shape() {
        let runner = Runner::new(tiny()).unwrap();
        let session = runner.session(SchemeKind::Gsfl).unwrap();
        let events: Vec<RoundEvent> = session.map(|e| e.unwrap()).collect();
        // 3 rounds × (started, aggregated, evaluated, finished) + stopped.
        assert_eq!(events.len(), 13);
        assert_eq!(events[0], RoundEvent::RoundStarted { round: 1 });
        assert!(matches!(events[1], RoundEvent::Aggregated { round: 1 }));
        assert!(matches!(events[2], RoundEvent::Evaluated { round: 1, .. }));
        assert!(matches!(
            events[3],
            RoundEvent::RoundFinished { round: 1, .. }
        ));
        assert!(matches!(
            events.last(),
            Some(RoundEvent::Stopped {
                round: 3,
                reason: StopReason::RoundBudget { rounds: 3 }
            })
        ));
    }

    #[test]
    fn session_abort_keeps_partial_records() {
        let runner = Runner::new(tiny()).unwrap();
        let mut session = runner.session(SchemeKind::Centralized).unwrap();
        // Consume events until the first round finishes, then abort.
        for event in &mut session {
            if matches!(event.unwrap(), RoundEvent::RoundFinished { round: 1, .. }) {
                break;
            }
        }
        let partial = session.finish();
        assert_eq!(partial.records.len(), 1);
        assert_eq!(partial.scheme, "cl");
    }

    #[test]
    fn latency_budget_policy_halts_mid_run() {
        let runner = Runner::new(tiny()).unwrap();
        // Find the first round's latency, then budget for just past it.
        let probe = runner.run(SchemeKind::VanillaSplit).unwrap();
        let first = probe.records[0].round_latency_s;
        let session = runner
            .session_with_policy(
                SchemeKind::VanillaSplit,
                Box::new(LatencyBudget::new(first * 1.5)),
            )
            .unwrap();
        let result = session.run_to_end().unwrap();
        assert!(
            result.records.len() < probe.records.len(),
            "budget must truncate the run"
        );
        assert!(result.total_latency_s() >= first * 1.5);
    }

    #[test]
    fn run_many_parallel_matches_sequential_order() {
        let runner = Runner::new(tiny()).unwrap();
        let kinds = [
            SchemeKind::Gsfl,
            SchemeKind::Federated,
            SchemeKind::Centralized,
        ];
        let many = runner.run_many(&kinds).unwrap();
        assert_eq!(many.len(), 3);
        for (kind, result) in kinds.iter().zip(&many) {
            assert_eq!(result.scheme, kind.name(), "order must be preserved");
            let solo = runner.run(*kind).unwrap();
            assert_eq!(solo.records.len(), result.records.len());
            for (a, b) in solo.records.iter().zip(&result.records) {
                assert_eq!(a, b, "{kind}: parallel run must match sequential");
            }
        }
    }
}
