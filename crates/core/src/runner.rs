//! Experiment runner: build a context once, run any scheme against it.

use crate::config::ExperimentConfig;
use crate::context::TrainContext;
use crate::results::RunResult;
use crate::scheme::SchemeKind;
use crate::Result;

/// Builds the shared context for an experiment and runs schemes against
/// it, guaranteeing every scheme sees identical data, model init, channel
/// realizations and grouping.
///
/// # Example
///
/// ```no_run
/// use gsfl_core::config::ExperimentConfig;
/// use gsfl_core::runner::Runner;
/// use gsfl_core::scheme::SchemeKind;
///
/// # fn main() -> Result<(), gsfl_core::CoreError> {
/// let config = ExperimentConfig::builder().clients(8).groups(2).rounds(5).build()?;
/// let runner = Runner::new(config)?;
/// let gsfl = runner.run(SchemeKind::Gsfl)?;
/// let sl = runner.run(SchemeKind::VanillaSplit)?;
/// assert!(gsfl.total_latency_s() < sl.total_latency_s());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    ctx: TrainContext,
}

impl Runner {
    /// Builds the experiment context (datasets, shards, wireless model,
    /// groups).
    ///
    /// # Errors
    ///
    /// Propagates configuration and construction errors.
    pub fn new(config: ExperimentConfig) -> Result<Self> {
        Ok(Runner {
            ctx: TrainContext::from_config(config)?,
        })
    }

    /// The shared context.
    pub fn context(&self) -> &TrainContext {
        &self.ctx
    }

    /// Runs one scheme.
    ///
    /// # Errors
    ///
    /// Propagates scheme execution errors.
    pub fn run(&self, kind: SchemeKind) -> Result<RunResult> {
        kind.run(&self.ctx)
    }

    /// Runs several schemes in sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first scheme failure.
    pub fn run_many(&self, kinds: &[SchemeKind]) -> Result<Vec<RunResult>> {
        kinds.iter().map(|k| self.run(*k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, ModelKind};

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .clients(4)
            .groups(2)
            .rounds(3)
            .batch_size(4)
            .eval_every(1)
            .learning_rate(0.1)
            .dataset(DatasetConfig {
                classes: 3,
                samples_per_class: 8,
                test_per_class: 4,
                image_size: 8,
            })
            .model(ModelKind::Mlp { hidden: vec![16] })
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn runner_executes_every_scheme() {
        let runner = Runner::new(tiny()).unwrap();
        for kind in SchemeKind::all() {
            let result = runner.run(kind).unwrap();
            assert_eq!(result.records.len(), 3, "{kind}");
            assert!(result.total_latency_s() > 0.0, "{kind}");
            assert!(
                result.records.last().unwrap().test_accuracy.is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn deterministic_runs() {
        let runner = Runner::new(tiny()).unwrap();
        let a = runner.run(SchemeKind::Gsfl).unwrap();
        let b = runner.run(SchemeKind::Gsfl).unwrap();
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.train_loss, rb.train_loss);
            assert_eq!(ra.test_accuracy, rb.test_accuracy);
            assert_eq!(ra.round_latency_s, rb.round_latency_s);
        }
    }

    #[test]
    fn early_stop_truncates() {
        let mut cfg = tiny();
        cfg.target_accuracy = Some(0.0); // reached at the first eval
        let runner = Runner::new(cfg).unwrap();
        let result = runner.run(SchemeKind::Centralized).unwrap();
        assert_eq!(result.records.len(), 1);
    }
}
