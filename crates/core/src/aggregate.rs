//! FedAvg aggregation of model halves.
//!
//! Step 3 of the paper's scheme: after every group finishes its pass, the
//! AP aggregates the M client-side models and the M server-side models
//! into one of each, weighted by the number of samples each group trained
//! on (the classic FedAvg rule).

use crate::Result;
use gsfl_nn::params::{fed_avg, ParamVec};
use gsfl_nn::Sequential;

/// Snapshots and aggregates a set of same-architecture networks in place.
///
/// `weights` are arbitrary non-negative scales (e.g. sample counts); the
/// aggregated parameters are written back into every network in
/// `networks`, so all replicas start the next round identical.
///
/// Returns the aggregated parameter vector (e.g. to measure wire size).
///
/// # Errors
///
/// Propagates FedAvg algebra errors (length/weight validation).
pub fn aggregate_in_place(networks: &mut [&mut Sequential], weights: &[f64]) -> Result<ParamVec> {
    let snapshots: Vec<ParamVec> = networks.iter().map(|n| ParamVec::from_network(n)).collect();
    let avg = fed_avg(&snapshots, weights)?;
    for net in networks.iter_mut() {
        avg.load_into(net)?;
    }
    Ok(avg)
}

/// Aggregates parameter vectors without touching networks (used when the
/// replicas live on worker threads and only their snapshots came back).
///
/// # Errors
///
/// Propagates FedAvg algebra errors.
pub fn aggregate_snapshots(snapshots: &[ParamVec], weights: &[f64]) -> Result<ParamVec> {
    Ok(fed_avg(snapshots, weights)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_nn::layers::Dense;

    fn net(seed: u64) -> Sequential {
        let mut n = Sequential::new();
        n.push(Dense::new(3, 2, seed));
        n
    }

    #[test]
    fn replicas_become_identical() {
        let mut a = net(1);
        let mut b = net(2);
        let mut c = net(3);
        assert_ne!(ParamVec::from_network(&a), ParamVec::from_network(&b));
        let avg = aggregate_in_place(&mut [&mut a, &mut b, &mut c], &[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(ParamVec::from_network(&a), avg);
        assert_eq!(ParamVec::from_network(&b), avg);
        assert_eq!(ParamVec::from_network(&c), avg);
    }

    #[test]
    fn weighted_mean_is_respected() {
        let mut a = net(1);
        let mut b = net(1); // identical start
        for p in a.params_mut() {
            p.value_mut().fill(0.0);
        }
        for p in b.params_mut() {
            p.value_mut().fill(4.0);
        }
        let avg = aggregate_in_place(&mut [&mut a, &mut b], &[3.0, 1.0]).unwrap();
        assert!(avg.values().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn snapshot_aggregation_matches() {
        let a = ParamVec::from_network(&net(5));
        let b = ParamVec::from_network(&net(6));
        let direct = aggregate_snapshots(&[a.clone(), b.clone()], &[1.0, 1.0]).unwrap();
        let mut na = net(5);
        let mut nb = net(6);
        let in_place = aggregate_in_place(&mut [&mut na, &mut nb], &[1.0, 1.0]).unwrap();
        assert_eq!(direct, in_place);
    }
}
