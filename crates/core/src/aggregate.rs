//! FedAvg aggregation of model halves — flat and two-tier (tree).
//!
//! Step 3 of the paper's scheme: after every group finishes its pass, the
//! AP aggregates the M client-side models and the M server-side models
//! into one of each, weighted by the number of samples each group trained
//! on (the classic FedAvg rule).
//!
//! At population scale the reduction runs as a **two-tier tree** over the
//! AP topology ([`aggregate_tree`]): each AP reduces the contributors it
//! serves, then a second tier merges the per-AP partial aggregates over
//! the AP→aggregator backhaul. Numerically the merge is defined to
//! accumulate contributions in cohort order through one `f64`
//! accumulator, independent of the AP partition — `f64` addition is not
//! associative, so re-grouping the sum by AP would perturb low-order
//! bits; pinning the accumulation order makes the tree reduction
//! bit-identical to flat [`aggregate_in_place`] by construction (the
//! tree shapes *cost*: per-AP payloads and backhaul charging live in
//! [`crate::latency`]).

use crate::Result;
use gsfl_nn::params::{fed_avg, fed_avg_with, ParamVec};
use gsfl_nn::Sequential;
use gsfl_tensor::workspace::Workspace;

/// Snapshots and aggregates a set of same-architecture networks in place.
///
/// `weights` are arbitrary non-negative scales (e.g. sample counts); the
/// aggregated parameters are written back into every network in
/// `networks`, so all replicas start the next round identical.
///
/// Returns the aggregated parameter vector (e.g. to measure wire size).
///
/// # Errors
///
/// Propagates FedAvg algebra errors (length/weight validation).
pub fn aggregate_in_place(networks: &mut [&mut Sequential], weights: &[f64]) -> Result<ParamVec> {
    let snapshots: Vec<ParamVec> = networks.iter().map(|n| ParamVec::from_network(n)).collect();
    let avg = fed_avg(&snapshots, weights)?;
    for net in networks.iter_mut() {
        avg.load_into(net)?;
    }
    Ok(avg)
}

/// Aggregates parameter vectors without touching networks (used when the
/// replicas live on worker threads and only their snapshots came back).
///
/// # Errors
///
/// Propagates FedAvg algebra errors.
pub fn aggregate_snapshots(snapshots: &[ParamVec], weights: &[f64]) -> Result<ParamVec> {
    Ok(fed_avg(snapshots, weights)?)
}

/// [`aggregate_snapshots`] over recycled [`Workspace`] buffers: the `f64`
/// accumulator and the `f32` result come from the pool, so a scheme that
/// recycles its dead round-start snapshot aggregates with zero fresh
/// allocations in steady state. Bitwise identical to
/// [`aggregate_snapshots`].
///
/// # Errors
///
/// Propagates FedAvg algebra errors.
pub fn aggregate_snapshots_with(
    snapshots: &[ParamVec],
    weights: &[f64],
    ws: &mut Workspace,
) -> Result<ParamVec> {
    Ok(fed_avg_with(snapshots, weights, ws)?)
}

/// One AP's share of a two-tier tree reduction (see [`aggregate_tree`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApShare {
    /// The AP index.
    pub ap: usize,
    /// How many contributors this AP reduced locally.
    pub members: usize,
}

/// A two-tier tree reduction: the aggregated parameters plus the per-AP
/// membership the latency layer prices backhaul transfers from.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeAggregate {
    /// The aggregated parameters — bit-identical to flat aggregation of
    /// the same snapshots/weights in the same order.
    pub params: ParamVec,
    /// Per-AP contributor counts, ascending by AP index; APs that served
    /// no contributor are absent.
    pub shares: Vec<ApShare>,
}

/// Reduces `snapshots` as a two-tier tree over an AP partition: each AP
/// locally reduces the contributors assigned to it (`aps[i]` is
/// contributor `i`'s AP), then the second tier merges the per-AP partial
/// aggregates. The returned parameters are **bit-identical** to
/// [`aggregate_snapshots`] over the same inputs in the same order (see
/// the module docs for why the accumulation order is pinned); the tree
/// shows up in [`TreeAggregate::shares`], which the latency layer uses to
/// price per-AP backhaul transfers.
///
/// # Errors
///
/// Returns a config error when `aps.len() != snapshots.len()`;
/// propagates FedAvg algebra errors.
pub fn aggregate_tree(
    snapshots: &[ParamVec],
    weights: &[f64],
    aps: &[usize],
    ws: &mut Workspace,
) -> Result<TreeAggregate> {
    if aps.len() != snapshots.len() {
        return Err(crate::CoreError::Config(format!(
            "aggregate_tree needs one AP per snapshot, got {} APs for {} snapshots",
            aps.len(),
            snapshots.len()
        )));
    }
    let params = fed_avg_with(snapshots, weights, ws)?;
    let mut shares: Vec<ApShare> = Vec::new();
    for &ap in aps {
        match shares.binary_search_by_key(&ap, |s| s.ap) {
            Ok(i) => shares[i].members += 1,
            Err(i) => shares.insert(i, ApShare { ap, members: 1 }),
        }
    }
    Ok(TreeAggregate { params, shares })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_nn::layers::Dense;

    fn net(seed: u64) -> Sequential {
        let mut n = Sequential::new();
        n.push(Dense::new(3, 2, seed));
        n
    }

    #[test]
    fn replicas_become_identical() {
        let mut a = net(1);
        let mut b = net(2);
        let mut c = net(3);
        assert_ne!(ParamVec::from_network(&a), ParamVec::from_network(&b));
        let avg = aggregate_in_place(&mut [&mut a, &mut b, &mut c], &[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(ParamVec::from_network(&a), avg);
        assert_eq!(ParamVec::from_network(&b), avg);
        assert_eq!(ParamVec::from_network(&c), avg);
    }

    #[test]
    fn weighted_mean_is_respected() {
        let mut a = net(1);
        let mut b = net(1); // identical start
        for p in a.params_mut() {
            p.value_mut().fill(0.0);
        }
        for p in b.params_mut() {
            p.value_mut().fill(4.0);
        }
        let avg = aggregate_in_place(&mut [&mut a, &mut b], &[3.0, 1.0]).unwrap();
        assert!(avg.values().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn workspace_aggregation_is_bitwise_flat_and_allocation_free() {
        let snaps: Vec<ParamVec> = (0..5).map(|s| ParamVec::from_network(&net(s))).collect();
        let weights = [2.0, 1.0, 4.0, 0.5, 3.0];
        let flat = aggregate_snapshots(&snaps, &weights).unwrap();
        let mut ws = Workspace::new();
        let pooled = aggregate_snapshots_with(&snaps, &weights, &mut ws).unwrap();
        let flat_bits: Vec<u32> = flat.values().iter().map(|v| v.to_bits()).collect();
        let pooled_bits: Vec<u32> = pooled.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(flat_bits, pooled_bits);
        assert_eq!(ws.fresh_allocs(), 2); // warm-up: one f64 acc, one f32 out
        ws.give(pooled.into_values());
        for _ in 0..4 {
            let again = aggregate_snapshots_with(&snaps, &weights, &mut ws).unwrap();
            ws.give(again.into_values());
        }
        assert_eq!(ws.fresh_allocs(), 2, "steady state must not allocate");
    }

    #[test]
    fn tree_reduction_is_bitwise_flat_and_counts_members() {
        let snaps: Vec<ParamVec> = (0..6).map(|s| ParamVec::from_network(&net(s))).collect();
        let weights = [1.0, 2.0, 3.0, 1.0, 2.0, 1.0];
        let aps = [2usize, 0, 2, 1, 0, 2];
        let mut ws = Workspace::new();
        let tree = aggregate_tree(&snaps, &weights, &aps, &mut ws).unwrap();
        let flat = aggregate_snapshots(&snaps, &weights).unwrap();
        let flat_bits: Vec<u32> = flat.values().iter().map(|v| v.to_bits()).collect();
        let tree_bits: Vec<u32> = tree.params.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(flat_bits, tree_bits);
        assert_eq!(
            tree.shares,
            vec![
                ApShare { ap: 0, members: 2 },
                ApShare { ap: 1, members: 1 },
                ApShare { ap: 2, members: 3 },
            ]
        );
        // Partition length must match.
        assert!(aggregate_tree(&snaps, &weights, &[0, 1], &mut ws).is_err());
    }

    #[test]
    fn snapshot_aggregation_matches() {
        let a = ParamVec::from_network(&net(5));
        let b = ParamVec::from_network(&net(6));
        let direct = aggregate_snapshots(&[a.clone(), b.clone()], &[1.0, 1.0]).unwrap();
        let mut na = net(5);
        let mut nb = net(6);
        let in_place = aggregate_in_place(&mut [&mut na, &mut nb], &[1.0, 1.0]).unwrap();
        assert_eq!(direct, in_place);
    }
}
