//! Group-based split federated learning (GSFL) and its baselines.
//!
//! This crate is the reproduction of the paper's contribution: the
//! **GSFL** training scheme ([`scheme::Gsfl`]) operating in a
//! *split-then-federated* manner over a simulated resource-limited
//! wireless network, together with the evaluation baselines:
//!
//! * [`scheme::Centralized`] — all data pooled at the server (CL),
//! * [`scheme::Federated`] — FedAvg over full models (FL),
//! * [`scheme::VanillaSplit`] — sequential split learning with client-model
//!   relay through the AP (SL),
//! * [`scheme::SplitFed`] — the "simple combination" with one server-side
//!   model per client (SFL), included to demonstrate the storage blow-up
//!   GSFL's grouping avoids,
//! * [`scheme::Gsfl`] — the paper's scheme: M groups, per-group server-side
//!   model replicas, sequential split training inside each group, parallel
//!   training across groups, FedAvg of both model halves per round.
//!
//! Latency is charged through the pluggable
//! [`gsfl_wireless::environment::ChannelModel`] trait — the composed
//! static model by default, or any time-varying
//! [`gsfl_wireless::scenario::Scenario`] (mobility drift, diurnal
//! bandwidth, stragglers, dropouts) named by the config's `scenario`
//! field — and, for the parallel schemes, a discrete-event simulation
//! ([`gsfl_simnet`]) in which the edge server is a k-slot FIFO resource —
//! inter-group parallelism is throttled by server contention exactly as on
//! a shared edge server.
//!
//! # Architecture
//!
//! Every scheme implements the [`scheme::Scheme`] trait (`init` /
//! `run_round`); the shared round loop — eval cadence, recording, early
//! stopping — lives once in the generic session driver
//! ([`runner::Session`]). Sessions stream [`runner::RoundEvent`]s, so
//! callers can observe a run round-by-round, checkpoint, or abort;
//! [`runner::Runner::run`] is a thin drain of the same iterator. Early
//! stopping is pluggable through [`stop::StopPolicy`] (target accuracy,
//! round/latency budgets, loss plateau — composable), and schemes are
//! name-dispatchable through [`scheme::SchemeRegistry`].
//!
//! # Quickstart
//!
//! ```no_run
//! use gsfl_core::config::ExperimentConfig;
//! use gsfl_core::runner::{RoundEvent, Runner};
//! use gsfl_core::scheme::SchemeKind;
//!
//! # fn main() -> Result<(), gsfl_core::CoreError> {
//! let config = ExperimentConfig::builder()
//!     .clients(30)
//!     .groups(6)
//!     .rounds(100)
//!     .seed(42)
//!     .build()?;
//! let runner = Runner::new(config)?;
//!
//! // One-shot: drain the session, get the result.
//! let result = runner.run(SchemeKind::Gsfl)?;
//! println!("final accuracy: {:.1}%", result.final_accuracy_pct());
//!
//! // Streaming: observe the same run round-by-round.
//! let mut session = runner.session(SchemeKind::Gsfl)?;
//! for event in &mut session {
//!     if let RoundEvent::Evaluated { round, accuracy } = event? {
//!         println!("round {round}: {:.1}%", accuracy * 100.0);
//!     }
//! }
//! let streamed = session.finish(); // identical records to `result`
//! # Ok(())
//! # }
//! ```
//!
//! Budgeted runs swap the stop policy:
//!
//! ```no_run
//! # use gsfl_core::config::ExperimentConfig;
//! # use gsfl_core::runner::Runner;
//! # use gsfl_core::scheme::SchemeKind;
//! use gsfl_core::stop::LatencyBudget;
//!
//! # fn main() -> Result<(), gsfl_core::CoreError> {
//! # let runner = Runner::new(ExperimentConfig::builder().build()?)?;
//! // Train for at most one simulated hour of edge time.
//! let session = runner.session_with_policy(
//!     SchemeKind::Gsfl,
//!     Box::new(LatencyBudget::new(3600.0)),
//! )?;
//! let result = session.run_to_end()?;
//! # Ok(())
//! # }
//! ```
//!
//! Time-varying wireless scenarios plug in through the config:
//!
//! ```no_run
//! # use gsfl_core::config::ExperimentConfig;
//! # use gsfl_core::runner::Runner;
//! # use gsfl_core::scheme::SchemeKind;
//! use gsfl_wireless::scenario::{Scenario, StragglerSpec};
//!
//! # fn main() -> Result<(), gsfl_core::CoreError> {
//! let config = ExperimentConfig::builder()
//!     .clients(30)
//!     .groups(6)
//!     .scenario(Scenario::Stragglers(StragglerSpec {
//!         probability: 0.25,
//!         slowdown: 4.0,
//!     }))
//!     .build()?;
//! let result = Runner::new(config)?.run(SchemeKind::Gsfl)?;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod aggregate;
pub mod compression;
pub mod config;
pub mod context;
pub mod cut;
pub mod grouping;
pub mod latency;
pub mod orchestrator;
pub(crate) mod parallel;
pub mod population;
pub mod recovery;
pub mod results;
pub mod runner;
pub mod scheme;
pub mod stop;
pub mod storage;

pub use error::CoreError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
