//! Deterministic fan-out of independent per-item work onto host threads.
//!
//! All in-round parallelism in the training engine — clients in
//! [`crate::scheme::Federated`]/[`crate::scheme::SplitFed`], groups in
//! GSFL, whole schemes in [`crate::runner::Runner::run_many`] — goes
//! through [`run_indexed`]: items are split into contiguous chunks, each
//! chunk runs sequentially on one thread, and results come back ordered
//! by item index. Because every item's computation is independent and
//! deterministic, the output is **byte-identical** for any thread count,
//! including the fully sequential fallback.
//!
//! Thread counts are clamped through the shared
//! [`gsfl_tensor::threading`] budget (or forced by
//! [`crate::config::ExperimentConfig::client_threads`]), so nested
//! parallelism — e.g. a GEMM inside a client inside a scheme — degrades
//! to sequential instead of oversubscribing the host.

use crate::config::ExperimentConfig;
use crate::{CoreError, Result};
use gsfl_tensor::threading::{request_threads, ThreadGrant};

/// How many threads a scheme may fan out over this round's items: the
/// config's forced `client_threads` if set, otherwise a lease from the
/// process-wide budget. The grant (if any) must stay alive while the
/// threads run.
pub(crate) fn round_fanout(cfg: &ExperimentConfig, items: usize) -> (usize, Option<ThreadGrant>) {
    match cfg.client_threads {
        Some(n) => (n.clamp(1, items.max(1)), None),
        None => {
            let grant = request_threads(items);
            (grant.threads().min(items.max(1)), Some(grant))
        }
    }
}

/// Runs `f(0..items)` across `threads` host threads in contiguous
/// chunks, returning results ordered by item index. `threads <= 1` (or a
/// single item) runs inline with no spawn. A panicking worker surfaces
/// as [`CoreError::Config`]. Every worker is joined before any failure
/// is reported; failures surface in chunk order (and within a chunk, in
/// item order), so the winning error always belongs to the earliest
/// failing region of the index space.
pub(crate) fn run_indexed<T, F>(items: usize, threads: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if items == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, items);
    if threads == 1 {
        return (0..items).map(&f).collect();
    }
    // Join ALL handles (no short-circuit): abandoning a panicked handle
    // would make the scope re-raise the panic instead of returning Err.
    let chunk_results: Vec<Result<Vec<Result<T>>>> = std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for t in 0..threads {
            let len = (items - start).div_ceil(threads - t);
            let range = start..start + len;
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<Result<T>>>()));
            start += len;
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|payload| {
                    CoreError::Config(format!(
                        "worker thread panicked: {}",
                        crate::runner::panic_message(payload.as_ref())
                    ))
                })
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items);
    for chunk in chunk_results {
        for r in chunk? {
            out.push(r?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        for threads in [1usize, 2, 3, 7, 64] {
            let got = run_indexed(10, threads, |i| Ok(i * i)).unwrap();
            assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert!(run_indexed(0, 4, Ok).unwrap().is_empty());
        assert_eq!(run_indexed(1, 4, |i| Ok(i + 1)).unwrap(), vec![1]);
    }

    #[test]
    fn first_error_in_index_order_wins() {
        let err = run_indexed(8, 3, |i| {
            if i >= 2 {
                Err(CoreError::Config(format!("boom {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("boom 2"), "{err}");
    }

    #[test]
    fn worker_panic_is_reported() {
        let err = run_indexed(4, 2, |i| {
            if i == 3 {
                panic!("kaput");
            }
            Ok(i)
        })
        .unwrap_err();
        assert!(err.to_string().contains("kaput"), "{err}");
    }

    #[test]
    fn forced_fanout_ignores_budget() {
        let cfg = ExperimentConfig::builder()
            .clients(4)
            .groups(2)
            .client_threads(3)
            .build()
            .unwrap();
        let (threads, grant) = round_fanout(&cfg, 8);
        assert_eq!(threads, 3);
        assert!(grant.is_none());
        let (threads, _) = round_fanout(&cfg, 2);
        assert_eq!(threads, 2, "fan-out never exceeds the item count");
    }
}
