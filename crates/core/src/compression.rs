//! Per-artifact compression configuration.
//!
//! A split-learning round ships four kinds of artifact across the
//! wireless link, and each can carry its own [`CodecSpec`]:
//!
//! | artifact | encoded direction | codec field |
//! |---|---|---|
//! | smashed activations (+ labels) | client → AP | [`CompressionSpec::smashed`] |
//! | cut-layer gradients | AP → client | [`CompressionSpec::gradient`] |
//! | client-side model halves | client → AP (relay/upload hops) | [`CompressionSpec::client_model`] |
//! | full models | client → AP (FL upload) | [`CompressionSpec::full_model`] |
//!
//! Model codecs compress the **uplink** only: the AP decodes each
//! encoded upload and relays/broadcasts the model onward in fp32, which
//! is exactly what the training loops do (downloaded models are never
//! transcoded) — charging a compressed downlink would save airtime the
//! accuracy never paid for.
//!
//! The spec is threaded from [`crate::config::ExperimentConfig`] through
//! [`crate::context::TrainContext`] into every scheme: training applies
//! the lossy transcode to the artifacts themselves (so accuracy pays),
//! while [`crate::latency::SplitCosts::with_compression`] shrinks the
//! wire sizes both latency calculators charge (so airtime saves). Labels
//! always travel as 4-byte class ids — codecs apply to the activation
//! payload only.
//!
//! The default is [`CodecSpec::Identity`] everywhere, which is provably
//! byte-identical to the pre-codec simulator (the golden-fixture tests
//! pin this).

use crate::Result;
use gsfl_nn::codec::CodecSpec;
use serde::{Deserialize, Serialize};

/// Which codec each exchanged artifact uses (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CompressionSpec {
    /// Codec for smashed activations (client → AP). Labels ride along
    /// uncompressed.
    #[serde(default)]
    pub smashed: CodecSpec,
    /// Codec for cut-layer gradients (AP → client).
    #[serde(default)]
    pub gradient: CodecSpec,
    /// Codec for client-side model halves, applied as a delta against
    /// the round-start global on every relay/upload hop (uplink only;
    /// the AP relays fp32 downlink).
    #[serde(default)]
    pub client_model: CodecSpec,
    /// Codec for full models, applied as a delta against the
    /// round-start global on the FL upload (the broadcast is fp32).
    #[serde(default)]
    pub full_model: CodecSpec,
    /// EF21-style error feedback: carry each lossy codec's residual
    /// (what the wire dropped) into the next transmission on the same
    /// stream. Applies to the gradient downlink and both model-delta
    /// uplinks; smashed activations are not an additive signal and
    /// never accumulate feedback. Changes nothing for identity codecs.
    #[serde(default)]
    pub error_feedback: bool,
}

impl CompressionSpec {
    /// The same codec on every artifact — what codec-ranking sweeps use.
    pub fn uniform(codec: CodecSpec) -> Self {
        CompressionSpec {
            smashed: codec,
            gradient: codec,
            client_model: codec,
            full_model: codec,
            error_feedback: false,
        }
    }

    /// The same spec with error feedback switched on (builder-style,
    /// for sweeps that pair each lossy config with its EF twin).
    #[must_use]
    pub fn with_error_feedback(mut self) -> Self {
        self.error_feedback = true;
        self
    }

    /// Whether every artifact uses the fp32 passthrough (the hot paths
    /// skip all codec work then — byte-identity by construction).
    pub fn is_transparent(&self) -> bool {
        self.smashed.is_identity()
            && self.gradient.is_identity()
            && self.client_model.is_identity()
            && self.full_model.is_identity()
    }

    /// A short label for tables: the uniform codec's name, or a
    /// per-artifact summary when the artifacts differ.
    pub fn label(&self) -> String {
        let names = [
            self.smashed.name(),
            self.gradient.name(),
            self.client_model.name(),
            self.full_model.name(),
        ];
        let base = if names.iter().all(|n| *n == names[0]) {
            names[0].clone()
        } else {
            names.join("/")
        };
        if self.error_feedback {
            format!("{base}+ef")
        } else {
            base
        }
    }

    /// Validates every codec's parameters.
    ///
    /// # Errors
    ///
    /// Returns the first invalid codec's error.
    pub fn validate(&self) -> Result<()> {
        self.smashed.validate()?;
        self.gradient.validate()?;
        self.client_model.validate()?;
        self.full_model.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_transparent() {
        let spec = CompressionSpec::default();
        assert!(spec.is_transparent());
        assert_eq!(spec.label(), "identity");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn uniform_and_mixed_labels() {
        assert_eq!(CompressionSpec::uniform(CodecSpec::Fp16).label(), "fp16");
        let mixed = CompressionSpec {
            smashed: CodecSpec::IntQ { bits: 8 },
            gradient: CodecSpec::IntQ { bits: 8 },
            client_model: CodecSpec::TopK { frac: 0.25 },
            full_model: CodecSpec::TopK { frac: 0.25 },
            error_feedback: false,
        };
        assert!(!mixed.is_transparent());
        assert_eq!(mixed.label(), "intq8/intq8/topk25/topk25");
        assert_eq!(
            CompressionSpec::uniform(CodecSpec::TopK { frac: 0.25 })
                .with_error_feedback()
                .label(),
            "topk25+ef"
        );
    }

    #[test]
    fn validation_delegates_to_codecs() {
        let bad = CompressionSpec {
            smashed: CodecSpec::IntQ { bits: 99 },
            ..CompressionSpec::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_defaults_keep_old_configs_loading() {
        let spec: CompressionSpec = serde_json::from_str("{}").unwrap();
        assert!(spec.is_transparent());
        let full = CompressionSpec::uniform(CodecSpec::IntQ { bits: 4 });
        let json = serde_json::to_string(&full).unwrap();
        let back: CompressionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);
    }
}
