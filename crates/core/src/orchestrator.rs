//! Joint per-round orchestration: cut × bandwidth × codec × cohort.
//!
//! The [`crate::cut`] module adapts exactly one knob — the split point.
//! Real deployments tune several coupled knobs at once: where to cut,
//! which codec to put on the wire, how to divide the band among the
//! round's participants, and how many clients to admit at all. This
//! module closes that joint loop:
//!
//! * [`Orchestrator`] — the per-round decision trait. Implementations
//!   see a [`PlanQuery`] (live [`RoundConditions`], candidate cuts with
//!   pre-computed [`SplitCosts`], the codec menu, the participant list)
//!   and emit a [`RoundPlan`].
//! * [`StaticPlan`] — the baseline: configured cut, configured codec, no
//!   share or cohort overrides. Byte-identical to the pre-orchestrator
//!   code (the golden-fixture tests pin this).
//! * [`GreedyJoint`] — enumerates the cut × codec × share-mode product,
//!   estimates each combination's straggler-bound round latency from the
//!   live conditions, and picks the argmin. Also fills per-client cuts
//!   (via the same estimator, per client) for schemes that can exercise
//!   heterogeneous splits — SplitFed, where every client already owns a
//!   private server-side replica.
//! * [`BanditPlan`] — seeded ε-greedy over the same arm space, learning
//!   from *realized* [`crate::latency::RoundLatency`] durations fed back
//!   via [`Orchestrator::observe`] instead of trusting the estimator.
//!
//! Plans are applied by the schemes through [`PlanSelector`] (one per
//! scheme run, like [`CutSelector`] — learned state never leaks across
//! sessions). Every emitted plan is feasibility-checked by
//! [`validate_plan`]: the cut must be a candidate, shares must be
//! finite, non-negative and sum to ≤ 1, per-client cuts must be
//! candidates, and the cohort must fit the round's participant count.
//!
//! Orchestrators are named in configs by [`OrchestratorSpec`] (serde).
//! Non-static orchestrators require `momentum == 0` (optimizer velocity
//! is not remappable across cuts) and the *fixed* cut policy — the
//! orchestrator owns the per-round cut decision, and the config
//! validation rejects a second decider rather than arbitrating.

use crate::compression::CompressionSpec;
use crate::cut::CutSelector;
use crate::latency::SplitCosts;
use gsfl_nn::codec::CodecSpec;
use gsfl_tensor::rng::SeedDerive;
use gsfl_wireless::environment::{ChannelModel, RoundConditions};
use gsfl_wireless::units::Hertz;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One round's joint resource decision.
///
/// `None` in an optional field means "keep the legacy behavior" for that
/// knob — a plan of all-`None` fields with the configured cut and codec
/// reproduces the pre-orchestrator round byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// The round's global cut layer (must be a candidate).
    pub cut: usize,
    /// Optional per-client cuts, indexed by client id (length = client
    /// count, every entry a candidate). Only schemes whose server side
    /// is per-client — SplitFed — can honor heterogeneous cuts; the
    /// others train at [`RoundPlan::cut`].
    pub client_cuts: Option<Vec<usize>>,
    /// Optional bandwidth shares, indexed by client id: each entry is
    /// the fraction of the round's total band that client transmits on
    /// (finite, ≥ 0, summing to ≤ 1; participants need > 0). `None`
    /// keeps the channel-mode default (dedicated `B/N` subchannels).
    pub shares: Option<Vec<f64>>,
    /// The codec every wire artifact uses this round.
    pub codec: CompressionSpec,
    /// Optional cohort cap: admit only the first `cohort` participants
    /// this round. `None` admits everyone available.
    pub cohort: Option<usize>,
}

/// Everything an [`Orchestrator`] may look at when planning a round.
pub struct PlanQuery<'a> {
    /// The round being decided (0-based environment round).
    pub round: u64,
    /// The configured cut — the fallback on estimator failure.
    pub default_cut: usize,
    /// Valid candidate cut indices, ascending.
    pub candidates: &'a [usize],
    /// Per-candidate cost profiles (wire fields under the *configured*
    /// codec; planners re-derive them per menu entry via
    /// [`SplitCosts::with_compression`]).
    pub costs: &'a BTreeMap<usize, SplitCosts>,
    /// The codec menu the planner may choose from (first entry = the
    /// configured spec).
    pub codec_menu: &'a [CompressionSpec],
    /// The environment snapshot for the round.
    pub conditions: &'a RoundConditions,
    /// The environment itself, for per-client latency queries.
    pub env: &'a dyn ChannelModel,
    /// Per-client step counts (index = client id; length = client count).
    pub steps: &'a [usize],
    /// The clients available this round, ascending.
    pub participants: &'a [usize],
}

/// Plans one round's joint resource allocation.
///
/// Implementations must be `Send + Sync` (contexts are shared across
/// scheme threads) and deterministic given their construction seed and
/// the observation sequence.
pub trait Orchestrator: std::fmt::Debug + Send + Sync {
    /// The plan for `q.round`. Must satisfy [`validate_plan`].
    fn plan(&self, q: &PlanQuery<'_>) -> RoundPlan;

    /// Realized-latency feedback after the round ran under `plan`.
    fn observe(&self, round: u64, plan: &RoundPlan, latency_s: f64) {
        let _ = (round, plan, latency_s);
    }
}

/// Checks a plan against the round's query: cut ∈ candidates, per-client
/// cuts ∈ candidates (length = client count), shares finite/non-negative
/// with positive entries for active participants and total ≤ 1, cohort
/// within `1..=participants`, codec parameters valid.
///
/// # Errors
///
/// Returns [`crate::CoreError::Config`] naming the violated constraint.
pub fn validate_plan(plan: &RoundPlan, q: &PlanQuery<'_>) -> crate::Result<()> {
    let err = |msg: String| Err(crate::CoreError::Config(msg));
    if !q.candidates.contains(&plan.cut) {
        return err(format!(
            "orchestrator chose cut {}, not among candidates {:?}",
            plan.cut, q.candidates
        ));
    }
    if let Some(cuts) = &plan.client_cuts {
        if cuts.len() != q.steps.len() {
            return err(format!(
                "client_cuts has {} entries for {} clients",
                cuts.len(),
                q.steps.len()
            ));
        }
        if let Some(bad) = cuts.iter().find(|c| !q.candidates.contains(c)) {
            return err(format!(
                "client cut {bad} not among candidates {:?}",
                q.candidates
            ));
        }
    }
    if let Some(shares) = &plan.shares {
        if shares.len() != q.steps.len() {
            return err(format!(
                "shares has {} entries for {} clients",
                shares.len(),
                q.steps.len()
            ));
        }
        if shares.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return err("shares must be finite and ≥ 0".into());
        }
        let sum: f64 = shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return err(format!("shares sum to {sum}, exceeding the band"));
        }
        for &c in q.participants {
            if q.steps.get(c).copied().unwrap_or(0) > 0 && shares[c] <= 0.0 {
                return err(format!("participant {c} was allocated zero bandwidth"));
            }
        }
    }
    if let Some(k) = plan.cohort {
        if k == 0 || k > q.participants.len() {
            return err(format!(
                "cohort {k} outside 1..={} participants",
                q.participants.len()
            ));
        }
    }
    plan.codec.validate()?;
    Ok(())
}

/// The baseline plan: configured cut, configured codec (the menu's first
/// entry), no share/cohort/per-client overrides. Exists so the trait has
/// a reference implementation; [`PlanSelector`] short-circuits the
/// static path through [`CutSelector`] instead (which also covers
/// adaptive *cut-only* policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticPlan;

impl Orchestrator for StaticPlan {
    fn plan(&self, q: &PlanQuery<'_>) -> RoundPlan {
        RoundPlan {
            cut: q.default_cut,
            client_cuts: None,
            shares: None,
            codec: q.codec_menu.first().cloned().unwrap_or_default(),
            cohort: None,
        }
    }
}

/// How a planner divides the band among the round's participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShareMode {
    /// The channel-mode default (dedicated `B/N` subchannels) — no
    /// override.
    Legacy,
    /// The band split equally among the round's *active* participants
    /// (beats `B/N` whenever churn benches part of the fleet).
    EqualParticipants,
    /// Shares proportional to each participant's estimated airtime at an
    /// equal-share probe — approximately equalizes transmit completion,
    /// shrinking the straggler under heterogeneous channels.
    DemandWeighted,
}

const SHARE_MODES: [ShareMode; 3] = [
    ShareMode::Legacy,
    ShareMode::EqualParticipants,
    ShareMode::DemandWeighted,
];

/// Clients that actually train this round: participants with steps.
fn active(q: &PlanQuery<'_>) -> Vec<usize> {
    q.participants
        .iter()
        .copied()
        .filter(|&c| q.steps.get(c).copied().unwrap_or(0) > 0)
        .collect()
}

/// The Hertz share client `c` transmits on under `shares` (legacy
/// dedicated share when `None`). `None` result = zero allocation.
fn share_for(q: &PlanQuery<'_>, shares: Option<&[f64]>, c: usize) -> Option<Hertz> {
    match shares {
        Some(f) => {
            let frac = f.get(c).copied().unwrap_or(0.0);
            (frac > 0.0).then(|| q.conditions.bandwidth.fraction(frac))
        }
        None => Some(q.conditions.dedicated_share()),
    }
}

/// Estimated latency of client `c`'s split chain at `share`: model
/// download + `steps ×` (forward, smashed uplink, server pass, gradient
/// downlink, backward). Mirrors [`crate::cut::GreedyLatency`] with the
/// candidate codec's wire sizes.
fn chain_estimate(q: &PlanQuery<'_>, costs: &SplitCosts, c: usize, share: Hertz) -> Option<f64> {
    let steps = q.steps.get(c).copied().unwrap_or(0);
    if steps == 0 {
        return Some(0.0);
    }
    let dl_model = q
        .env
        .downlink_time(c, costs.client_model_bytes, q.round, share)
        .ok()?;
    let fwd = q
        .env
        .client_compute(c, costs.client_fwd_flops, q.round)
        .ok()?;
    let ul = q
        .env
        .uplink_time(c, costs.smashed_wire_bytes, q.round, share)
        .ok()?;
    let ap = q.env.ap_of(c, q.round).ok()?;
    let srv = q.env.server_compute_at(ap, costs.server_flops);
    let dl = q
        .env
        .downlink_time(c, costs.grad_wire_bytes, q.round, share)
        .ok()?;
    let bwd = q
        .env
        .client_compute(c, costs.client_bwd_flops, q.round)
        .ok()?;
    Some(dl_model.as_secs_f64() + steps as f64 * (fwd + ul + srv + dl + bwd).as_secs_f64())
}

/// Straggler-bound round estimate over the active participants.
fn straggler_estimate(
    q: &PlanQuery<'_>,
    costs: &SplitCosts,
    shares: Option<&[f64]>,
) -> Option<f64> {
    let mut worst = 0.0f64;
    for c in active(q) {
        let share = share_for(q, shares, c)?;
        worst = worst.max(chain_estimate(q, costs, c, share)?);
    }
    Some(worst)
}

/// The share vector of `mode` (indexed by client id), or `None` for the
/// legacy default.
fn mode_shares(q: &PlanQuery<'_>, costs: &SplitCosts, mode: ShareMode) -> Option<Option<Vec<f64>>> {
    let act = active(q);
    if act.is_empty() {
        return Some(None);
    }
    match mode {
        ShareMode::Legacy => Some(None),
        ShareMode::EqualParticipants => {
            let mut v = vec![0.0f64; q.steps.len()];
            let frac = 1.0 / act.len() as f64;
            for &c in &act {
                v[c] = frac;
            }
            Some(Some(v))
        }
        ShareMode::DemandWeighted => {
            // Airtime of each participant's round payload at an equal
            // probe share; shares proportional to it equalize completion.
            let probe = q.conditions.bandwidth.fraction(1.0 / act.len() as f64);
            let mut airtime = vec![0.0f64; q.steps.len()];
            let mut sum = 0.0f64;
            for &c in &act {
                let steps = q.steps[c] as f64;
                let ul = q
                    .env
                    .uplink_time(c, costs.smashed_wire_bytes, q.round, probe)
                    .ok()?;
                let dl = q
                    .env
                    .downlink_time(c, costs.grad_wire_bytes, q.round, probe)
                    .ok()?;
                let model_dl = q
                    .env
                    .downlink_time(c, costs.client_model_bytes, q.round, probe)
                    .ok()?;
                let model_ul = q
                    .env
                    .uplink_time(c, costs.client_model_wire_bytes, q.round, probe)
                    .ok()?;
                let t = steps * (ul + dl).as_secs_f64() + (model_dl + model_ul).as_secs_f64();
                airtime[c] = t;
                sum += t;
            }
            if sum <= 0.0 {
                return Some(None);
            }
            for v in &mut airtime {
                *v /= sum;
            }
            Some(Some(airtime))
        }
    }
}

/// The estimated-latency improvement a challenger arm must show over the
/// incumbent before [`GreedyJoint`] switches: churn damping, because a
/// marginal estimate win rarely survives estimation error, while every
/// cut/codec switch perturbs the training trajectory (re-splits the
/// model, changes quantization noise).
const SWITCH_MARGIN: f64 = 0.1;

/// Enumerates cut × codec × share mode, estimates each combination's
/// straggler-bound latency from the live conditions, and emits the
/// argmin — plus per-client cuts (the per-client argmin at the chosen
/// codec and shares) for schemes that can split heterogeneously.
///
/// Decisions carry hysteresis: once an arm is chosen, a challenger must
/// beat its *current-round* estimate by a 10% margin to displace
/// it. Shares are still recomputed from the live conditions every round
/// — only the discrete (cut, codec, mode) choice is damped.
#[derive(Debug, Default)]
pub struct GreedyJoint {
    /// The committed (cut, codec-menu index, share-mode index) arm.
    incumbent: Mutex<Option<(usize, usize, usize)>>,
}

impl GreedyJoint {
    /// A fresh planner with no committed arm.
    pub fn new() -> Self {
        GreedyJoint::default()
    }
}

impl Orchestrator for GreedyJoint {
    fn plan(&self, q: &PlanQuery<'_>) -> RoundPlan {
        let fallback = || StaticPlan.plan(q);
        let held = *self.incumbent.lock().expect("greedy state lock");
        let mut best: Option<(f64, (usize, usize, usize), RoundPlan)> = None;
        let mut held_now: Option<(f64, RoundPlan)> = None;
        for &cut in q.candidates {
            let Some(base) = q.costs.get(&cut) else {
                continue;
            };
            for (ki, codec) in q.codec_menu.iter().enumerate() {
                let costs = base.with_compression(codec);
                for (mi, mode) in SHARE_MODES.iter().enumerate() {
                    let Some(shares) = mode_shares(q, &costs, *mode) else {
                        continue;
                    };
                    let Some(est) = straggler_estimate(q, &costs, shares.as_deref()) else {
                        continue;
                    };
                    let plan = RoundPlan {
                        cut,
                        client_cuts: None,
                        shares,
                        codec: *codec,
                        cohort: None,
                    };
                    if held == Some((cut, ki, mi)) {
                        held_now = Some((est, plan.clone()));
                    }
                    if best.as_ref().is_none_or(|(b, _, _)| est < *b) {
                        best = Some((est, (cut, ki, mi), plan));
                    }
                }
            }
        }
        let Some((best_est, best_arm, best_plan)) = best else {
            return fallback();
        };
        // Keep the incumbent unless the challenger clears the margin on
        // this round's conditions.
        let (arm, mut plan) = match held_now {
            Some((held_est, held_plan)) if best_est >= held_est * (1.0 - SWITCH_MARGIN) => {
                (held.expect("held_now implies held"), held_plan)
            }
            _ => (best_arm, best_plan),
        };
        *self.incumbent.lock().expect("greedy state lock") = Some(arm);
        // Per-client refinement at the chosen codec and shares: each
        // active client's own-chain argmin. SplitFed (private
        // server-side replicas) honors these; everything else trains at
        // the global cut.
        let mut client_cuts = vec![plan.cut; q.steps.len()];
        for c in active(q) {
            let Some(share) = share_for(q, plan.shares.as_deref(), c) else {
                continue;
            };
            let mut best_cut = plan.cut;
            let mut best_est = f64::INFINITY;
            for &cut in q.candidates {
                let Some(base) = q.costs.get(&cut) else {
                    continue;
                };
                let costs = base.with_compression(&plan.codec);
                if let Some(est) = chain_estimate(q, &costs, c, share) {
                    if est < best_est {
                        best_cut = cut;
                        best_est = est;
                    }
                }
            }
            client_cuts[c] = best_cut;
        }
        plan.client_cuts = Some(client_cuts);
        plan
    }
}

/// One arm of the plan bandit: (cut, codec-menu index, share mode).
type Arm = (usize, usize, usize);

/// ε-greedy bandit over realized round latencies on the cut × codec ×
/// share-mode arm space: explore a uniform random arm with probability ε
/// (deterministic per round given the seed), otherwise exploit the
/// lowest observed mean. Untried arms are explored first, in ascending
/// (cut, codec, mode) order. Emits no per-client cuts — it learns the
/// joint arm, not per-client structure.
#[derive(Debug)]
pub struct BanditPlan {
    epsilon: f64,
    seeds: SeedDerive,
    /// arm → (observations, mean realized latency).
    arms: Mutex<BTreeMap<Arm, (u64, f64)>>,
    /// round → the arm played, pending its observation.
    pending: Mutex<BTreeMap<u64, Arm>>,
}

impl BanditPlan {
    /// A fresh bandit; `epsilon` is the exploration probability and
    /// `seed` makes the exploration schedule reproducible.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        BanditPlan {
            epsilon,
            seeds: SeedDerive::new(seed).child("orchestrator-bandit"),
            arms: Mutex::new(BTreeMap::new()),
            pending: Mutex::new(BTreeMap::new()),
        }
    }

    fn arm_space(q: &PlanQuery<'_>) -> Vec<Arm> {
        let mut v = Vec::new();
        for &cut in q.candidates {
            for ci in 0..q.codec_menu.len() {
                for mi in 0..SHARE_MODES.len() {
                    v.push((cut, ci, mi));
                }
            }
        }
        v
    }

    fn plan_of(q: &PlanQuery<'_>, arm: Arm) -> Option<RoundPlan> {
        let (cut, ci, mi) = arm;
        let codec = *q.codec_menu.get(ci)?;
        let costs = q.costs.get(&cut)?.with_compression(&codec);
        let shares = mode_shares(q, &costs, SHARE_MODES[mi])?;
        Some(RoundPlan {
            cut,
            client_cuts: None,
            shares,
            codec,
            cohort: None,
        })
    }
}

impl Orchestrator for BanditPlan {
    fn plan(&self, q: &PlanQuery<'_>) -> RoundPlan {
        let space = BanditPlan::arm_space(q);
        if space.is_empty() {
            return StaticPlan.plan(q);
        }
        let arm = {
            let arms = self.arms.lock().expect("bandit lock poisoned");
            if let Some(&arm) = space.iter().find(|a| !arms.contains_key(a)) {
                arm
            } else {
                let mut rng = self.seeds.index(q.round).rng();
                if rng.gen::<f64>() < self.epsilon {
                    space[rng.gen_range(0..space.len())]
                } else {
                    space
                        .iter()
                        .copied()
                        .min_by(|a, b| {
                            let ma = arms.get(a).map(|&(_, m)| m).unwrap_or(f64::INFINITY);
                            let mb = arms.get(b).map(|&(_, m)| m).unwrap_or(f64::INFINITY);
                            ma.partial_cmp(&mb).expect("latencies are finite")
                        })
                        .expect("space is non-empty")
                }
            }
        };
        let Some(plan) = BanditPlan::plan_of(q, arm) else {
            return StaticPlan.plan(q);
        };
        self.pending
            .lock()
            .expect("bandit lock poisoned")
            .insert(q.round, arm);
        plan
    }

    fn observe(&self, round: u64, _plan: &RoundPlan, latency_s: f64) {
        let Some(arm) = self
            .pending
            .lock()
            .expect("bandit lock poisoned")
            .remove(&round)
        else {
            return;
        };
        let mut arms = self.arms.lock().expect("bandit lock poisoned");
        let (n, mean) = arms.entry(arm).or_insert((0, 0.0));
        *n += 1;
        *mean += (latency_s - *mean) / *n as f64;
    }
}

/// Serde-loadable orchestrator names for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OrchestratorSpec {
    /// The configured cut, codec and channel mode every round (the
    /// paper's behavior) — default.
    #[default]
    Static,
    /// Greedy joint estimate over cut × codec × shares ([`GreedyJoint`]).
    Greedy,
    /// ε-greedy bandit over realized latencies ([`BanditPlan`]).
    Bandit {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
}

impl OrchestratorSpec {
    /// Whether this is the static (non-planning) orchestrator.
    pub fn is_static(&self) -> bool {
        matches!(self, OrchestratorSpec::Static)
    }

    /// Builds the planner, or `None` for the static path; `seed` drives
    /// any stochastic exploration.
    pub fn orchestrator(&self, seed: u64) -> Option<Box<dyn Orchestrator>> {
        match *self {
            OrchestratorSpec::Static => None,
            OrchestratorSpec::Greedy => Some(Box::new(GreedyJoint::new())),
            OrchestratorSpec::Bandit { epsilon } => Some(Box::new(BanditPlan::new(epsilon, seed))),
        }
    }
}

/// The codec menu a planner may choose from: the configured spec first,
/// then the near-lossless compressive options (uniform fp16 and int8
/// quantization) and an aggressive error-feedback arm (int8 at the cut
/// boundary, sparse TopK model deltas with EF21 residuals — the
/// feedback is what keeps this arm convergent), deduplicated.
pub fn codec_menu(base: &CompressionSpec) -> Vec<CompressionSpec> {
    let mut menu = vec![*base];
    let ef_arm = CompressionSpec {
        smashed: CodecSpec::IntQ { bits: 8 },
        gradient: CodecSpec::IntQ { bits: 8 },
        client_model: CodecSpec::TopK { frac: 0.05 },
        full_model: CodecSpec::TopK { frac: 0.05 },
        error_feedback: true,
    };
    for spec in [
        CompressionSpec::uniform(CodecSpec::Fp16),
        CompressionSpec::uniform(CodecSpec::IntQ { bits: 8 }),
        ef_arm,
    ] {
        if !menu.contains(&spec) {
            menu.push(spec);
        }
    }
    menu
}

/// Per-run plan-selection state: one orchestrator instance per scheme
/// run, wrapping a [`CutSelector`] for the static path (so adaptive
/// *cut-only* policies keep working under the static orchestrator).
/// Built in each scheme's [`crate::scheme::Scheme::init`], **not** in
/// the shared context — learning planners accumulate observations, and
/// sharing that state would break run independence and determinism.
#[derive(Debug)]
pub struct PlanSelector {
    cuts: CutSelector,
    orch: Option<Box<dyn Orchestrator>>,
    base_codec: CompressionSpec,
}

impl PlanSelector {
    /// A fresh selector for one scheme run, from the config's
    /// orchestrator spec (seeded by the experiment seed).
    pub fn from_config(config: &crate::config::ExperimentConfig) -> Self {
        PlanSelector {
            cuts: CutSelector::from_config(config),
            orch: config.orchestrator.orchestrator(config.seed),
            base_codec: config.compression,
        }
    }

    /// Resolves the round's plan and the cost profile of its chosen cut
    /// under its chosen codec. The static orchestrator short-circuits
    /// through the [`CutSelector`] (configured codec, no overrides) —
    /// byte-identical to the pre-orchestrator behavior; planners consult
    /// the round's conditions and are feasibility-checked.
    ///
    /// # Errors
    ///
    /// Propagates environment query errors; fails if the planner emits
    /// an infeasible plan ([`validate_plan`]).
    pub fn plan_for_round(
        &self,
        ctx: &crate::context::TrainContext,
        round: u64,
    ) -> crate::Result<(RoundPlan, SplitCosts)> {
        let Some(orch) = &self.orch else {
            let (cut, costs) = self.cuts.cut_for_round(ctx, round)?;
            // Adaptive cut policies also refine per client (the
            // `CutPolicy::choose_for` hook); the fixed policy yields
            // `None` and every client trains at the configured cut.
            let client_cuts = self.cuts.client_cuts_for_round(ctx, round)?;
            return Ok((
                RoundPlan {
                    cut,
                    client_cuts,
                    shares: None,
                    codec: self.base_codec,
                    cohort: None,
                },
                costs,
            ));
        };
        let conditions = ctx.conditions(round)?;
        let steps = ctx.steps_per_client();
        let participants = ctx.available_clients(round);
        let q = PlanQuery {
            round,
            default_cut: ctx.config.cut(),
            candidates: &ctx.cut_candidates,
            costs: &ctx.costs_by_cut,
            codec_menu: &ctx.codec_menu,
            conditions: &conditions,
            env: ctx.env.as_ref(),
            steps: &steps,
            participants: &participants,
        };
        let plan = orch.plan(&q);
        validate_plan(&plan, &q)?;
        let costs = ctx
            .costs_by_cut
            .get(&plan.cut)
            .copied()
            .ok_or_else(|| {
                crate::CoreError::Config(format!(
                    "orchestrator chose cut {}, not among candidates {:?}",
                    plan.cut, ctx.cut_candidates
                ))
            })?
            .with_compression(&plan.codec);
        Ok((plan, costs))
    }

    /// Feeds a round's realized latency back to the planner (or to the
    /// cut policy on the static path).
    pub fn observe(&self, round: u64, plan: &RoundPlan, latency_s: f64) {
        match &self.orch {
            Some(orch) => orch.observe(round, plan, latency_s),
            None => self.cuts.observe(round, plan.cut, latency_s),
        }
    }

    /// Feeds a round's full realized *outcome* — latency plus fault
    /// accounting — back to the planner. Failures inflate the effective
    /// latency the bandit learns from, so arms whose aggressive cohorts
    /// or codecs keep losing clients (or missing quorum outright) look
    /// expensive and are avoided. A clean round is exactly
    /// [`PlanSelector::observe`].
    pub fn observe_outcome(
        &self,
        round: u64,
        plan: &RoundPlan,
        latency: &crate::latency::RoundLatency,
    ) {
        let f = &latency.faults;
        let mut effective = latency.duration.as_secs_f64();
        // Each client lost mid-round wasted its slice of the cohort's
        // work; a missed quorum wasted the whole round (global model
        // unchanged) and then some.
        effective *= 1.0 + 0.25 * f64::from(f.lost_clients);
        if !f.quorum_met {
            effective *= 4.0;
        }
        self.observe(round, plan, effective);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_nn::model::Mlp;
    use gsfl_wireless::environment::StaticEnvironment;
    use gsfl_wireless::latency::LatencyModel;

    struct Fixture {
        env: StaticEnvironment,
        costs: BTreeMap<usize, SplitCosts>,
        candidates: Vec<usize>,
        menu: Vec<CompressionSpec>,
        steps: Vec<usize>,
        participants: Vec<usize>,
    }

    fn fixture() -> Fixture {
        let env = StaticEnvironment::new(
            LatencyModel::builder()
                .clients(3)
                .seed(4)
                .fading(false)
                .build()
                .unwrap(),
        );
        let net = Mlp::new(48, &[32, 32], 5, 0).into_sequential();
        let candidates: Vec<usize> = (1..net.depth()).collect();
        let costs = candidates
            .iter()
            .map(|&cut| (cut, SplitCosts::compute(&net, cut, &[48], 8).unwrap()))
            .collect();
        Fixture {
            env,
            costs,
            candidates,
            menu: codec_menu(&CompressionSpec::default()),
            steps: vec![2, 2, 2],
            participants: vec![0, 1, 2],
        }
    }

    fn query<'a>(f: &'a Fixture, cond: &'a RoundConditions) -> PlanQuery<'a> {
        PlanQuery {
            round: cond.round,
            default_cut: f.candidates[0],
            candidates: &f.candidates,
            costs: &f.costs,
            codec_menu: &f.menu,
            conditions: cond,
            env: &f.env,
            steps: &f.steps,
            participants: &f.participants,
        }
    }

    #[test]
    fn static_plan_is_the_identity_decision() {
        let f = fixture();
        let cond = f.env.conditions(0).unwrap();
        let q = query(&f, &cond);
        let plan = StaticPlan.plan(&q);
        assert_eq!(plan.cut, q.default_cut);
        assert!(plan.client_cuts.is_none());
        assert!(plan.shares.is_none());
        assert!(plan.cohort.is_none());
        assert_eq!(plan.codec, f.menu[0]);
        validate_plan(&plan, &q).unwrap();
    }

    #[test]
    fn greedy_emits_feasible_deterministic_plans() {
        let f = fixture();
        for round in 0..4 {
            let cond = f.env.conditions(round).unwrap();
            let q = query(&f, &cond);
            let greedy = GreedyJoint::new();
            let a = greedy.plan(&q);
            let b = greedy.plan(&q);
            assert_eq!(a, b, "round {round}");
            validate_plan(&a, &q).unwrap();
            let cuts = a.client_cuts.as_ref().expect("greedy fills client cuts");
            assert!(cuts.iter().all(|c| f.candidates.contains(c)));
        }
    }

    #[test]
    fn greedy_estimate_never_worse_than_static() {
        // The static decision is inside greedy's search space (legacy
        // shares, menu[0] codec, default cut is a candidate), so the
        // chosen estimate is ≤ the static estimate.
        let f = fixture();
        let cond = f.env.conditions(2).unwrap();
        let q = query(&f, &cond);
        let plan = GreedyJoint::new().plan(&q);
        let chosen_costs = f.costs[&plan.cut].with_compression(&plan.codec);
        let chosen = straggler_estimate(&q, &chosen_costs, plan.shares.as_deref()).unwrap();
        let static_costs = f.costs[&q.default_cut];
        let baseline = straggler_estimate(&q, &static_costs, None).unwrap();
        assert!(chosen <= baseline + 1e-12, "{chosen} vs {baseline}");
    }

    #[test]
    fn bandit_explores_arms_then_exploits() {
        let f = fixture();
        let bandit = BanditPlan::new(0.0, 7);
        let space = {
            let cond = f.env.conditions(0).unwrap();
            BanditPlan::arm_space(&query(&f, &cond))
        };
        // Every arm is tried once, in order.
        for (i, &expect) in space.iter().enumerate() {
            let cond = f.env.conditions(i as u64).unwrap();
            let q = query(&f, &cond);
            let plan = bandit.plan(&q);
            validate_plan(&plan, &q).unwrap();
            assert_eq!(plan.cut, expect.0, "arm {i}");
            // Penalize later arms so the first arm wins exploitation.
            bandit.observe(i as u64, &plan, 1.0 + i as f64);
        }
        let round = space.len() as u64;
        let cond = f.env.conditions(round).unwrap();
        let q = query(&f, &cond);
        let plan = bandit.plan(&q);
        assert_eq!((plan.cut, 0usize), (space[0].0, 0), "exploits best arm");
        assert_eq!(plan.codec, f.menu[space[0].1]);
    }

    #[test]
    fn bandit_schedule_is_seed_deterministic() {
        let f = fixture();
        // Enough rounds to get past the deterministic try-every-arm
        // phase (cuts × menu × modes) into stochastic exploration.
        let run = |seed: u64| -> Vec<usize> {
            let bandit = BanditPlan::new(0.5, seed);
            (0..80u64)
                .map(|r| {
                    let cond = f.env.conditions(r).unwrap();
                    let q = query(&f, &cond);
                    let plan = bandit.plan(&q);
                    bandit.observe(r, &plan, 1.0 + plan.cut as f64);
                    plan.cut
                })
                .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds explore differently");
    }

    #[test]
    fn validate_plan_rejects_each_violation() {
        let f = fixture();
        let cond = f.env.conditions(0).unwrap();
        let q = query(&f, &cond);
        let ok = StaticPlan.plan(&q);
        validate_plan(&ok, &q).unwrap();
        let mut bad = ok.clone();
        bad.cut = 99;
        assert!(validate_plan(&bad, &q).is_err());
        let mut bad = ok.clone();
        bad.client_cuts = Some(vec![99; 3]);
        assert!(validate_plan(&bad, &q).is_err());
        let mut bad = ok.clone();
        bad.client_cuts = Some(vec![f.candidates[0]; 2]);
        assert!(validate_plan(&bad, &q).is_err(), "wrong length");
        let mut bad = ok.clone();
        bad.shares = Some(vec![0.5, 0.5, 0.5]);
        assert!(validate_plan(&bad, &q).is_err(), "oversubscribed band");
        let mut bad = ok.clone();
        bad.shares = Some(vec![0.9, 0.1, 0.0]);
        assert!(validate_plan(&bad, &q).is_err(), "starved participant");
        let mut bad = ok.clone();
        bad.shares = Some(vec![f64::NAN, 0.1, 0.1]);
        assert!(validate_plan(&bad, &q).is_err());
        let mut bad = ok.clone();
        bad.cohort = Some(0);
        assert!(validate_plan(&bad, &q).is_err());
        let mut bad = ok;
        bad.cohort = Some(99);
        assert!(validate_plan(&bad, &q).is_err());
    }

    #[test]
    fn spec_builds_every_orchestrator() {
        assert!(OrchestratorSpec::Static.is_static());
        assert!(!OrchestratorSpec::Greedy.is_static());
        assert!(OrchestratorSpec::Static.orchestrator(0).is_none());
        assert!(OrchestratorSpec::Greedy.orchestrator(0).is_some());
        assert!(OrchestratorSpec::Bandit { epsilon: 0.2 }
            .orchestrator(0)
            .is_some());
        let json = serde_json::to_string(&OrchestratorSpec::Bandit { epsilon: 0.2 }).unwrap();
        let back: OrchestratorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, OrchestratorSpec::Bandit { epsilon: 0.2 });
    }

    #[test]
    fn codec_menu_leads_with_the_configured_spec() {
        let base = CompressionSpec::uniform(CodecSpec::Fp16);
        let menu = codec_menu(&base);
        assert_eq!(menu[0], base);
        assert_eq!(menu.len(), 3, "fp16 deduplicates against itself");
        let menu = codec_menu(&CompressionSpec::default());
        assert_eq!(menu.len(), 4);
        // The aggressive arm only makes sense with its feedback armed.
        assert!(menu.iter().any(|m| m.error_feedback));
    }
}
