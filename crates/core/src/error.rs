use std::fmt;

/// Error type for experiment configuration and execution.
#[derive(Debug)]
pub enum CoreError {
    /// Neural-network stack error.
    Nn(gsfl_nn::NnError),
    /// Dataset error.
    Data(gsfl_data::DataError),
    /// Wireless model error.
    Wireless(gsfl_wireless::WirelessError),
    /// Discrete-event simulation error.
    Sim(gsfl_simnet::SimError),
    /// Experiment configuration error.
    Config(String),
    /// I/O error writing results.
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "nn error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Wireless(e) => write!(f, "wireless error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Wireless(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Config(_) => None,
        }
    }
}

impl From<gsfl_nn::NnError> for CoreError {
    fn from(e: gsfl_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<gsfl_data::DataError> for CoreError {
    fn from(e: gsfl_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<gsfl_wireless::WirelessError> for CoreError {
    fn from(e: gsfl_wireless::WirelessError) -> Self {
        CoreError::Wireless(e)
    }
}

impl From<gsfl_simnet::SimError> for CoreError {
    fn from(e: gsfl_simnet::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<gsfl_tensor::TensorError> for CoreError {
    fn from(e: gsfl_tensor::TensorError) -> Self {
        CoreError::Nn(gsfl_nn::NnError::Tensor(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        use std::error::Error;
        let e = CoreError::from(gsfl_nn::NnError::Config("x".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("nn error"));
        assert!(CoreError::Config("y".into()).source().is_none());
    }
}
