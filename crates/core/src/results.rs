//! Round records and run results.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Metrics recorded for one training round.
///
/// `bytes_up`/`bytes_down` are what the wire actually carried — the
/// **encoded** totals airtime was charged for. `bytes_up_raw`/
/// `bytes_down_raw` are the same artifacts' uncompressed fp32 footprint;
/// under the default identity codecs the pairs are equal, and the
/// hand-written serde below omits the raw fields then, keeping identity
/// runs byte-identical to the pre-codec golden fixtures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Simulated wall-clock duration of this round (seconds).
    pub round_latency_s: f64,
    /// Cumulative simulated time after this round (seconds).
    pub cumulative_latency_s: f64,
    /// Mean training loss over the round's steps.
    pub train_loss: f64,
    /// Test accuracy in `[0,1]`, present on evaluation rounds.
    pub test_accuracy: Option<f64>,
    /// Client→AP bytes on the wire this round (encoded).
    pub bytes_up: u64,
    /// AP→client bytes on the wire this round (encoded).
    pub bytes_down: u64,
    /// Uncompressed client→AP bytes this round.
    pub bytes_up_raw: u64,
    /// Uncompressed AP→client bytes this round.
    pub bytes_down_raw: u64,
    /// Total client-side energy this round, joules.
    pub client_energy_j: f64,
    /// Retransmission attempts beyond the first, summed over transfers.
    pub retries: u64,
    /// Bytes charged to the air but never delivered: retransmitted
    /// copies plus the traffic of clients that crashed mid-round.
    pub wasted_airtime_bytes: u64,
    /// Clients planned into the round but lost to a crash or deadline.
    pub lost_clients: u32,
    /// Backup clients activated to replace failed primaries.
    pub backups_activated: u32,
    /// Whether the round met its aggregation quorum; `false` means the
    /// round was skipped and the global model left unchanged.
    pub quorum_met: bool,
}

// Hand-written (de)serialization: the vendored serde derive has no
// `skip_serializing_if`, and the golden-fixture tests compare serialized
// records *as strings* — so the raw-byte fields must only appear when a
// lossy codec actually made them differ from the wire totals.
impl Serialize for RoundRecord {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("round".to_string(), self.round.to_value()),
            (
                "round_latency_s".to_string(),
                self.round_latency_s.to_value(),
            ),
            (
                "cumulative_latency_s".to_string(),
                self.cumulative_latency_s.to_value(),
            ),
            ("train_loss".to_string(), self.train_loss.to_value()),
            ("test_accuracy".to_string(), self.test_accuracy.to_value()),
            ("bytes_up".to_string(), self.bytes_up.to_value()),
            ("bytes_down".to_string(), self.bytes_down.to_value()),
        ];
        if self.bytes_up_raw != self.bytes_up || self.bytes_down_raw != self.bytes_down {
            fields.push(("bytes_up_raw".to_string(), self.bytes_up_raw.to_value()));
            fields.push(("bytes_down_raw".to_string(), self.bytes_down_raw.to_value()));
        }
        fields.push((
            "client_energy_j".to_string(),
            self.client_energy_j.to_value(),
        ));
        // Fault accounting only appears on rounds that actually saw
        // faults — fault-free runs keep the historical record shape.
        if self.retries != 0 {
            fields.push(("retries".to_string(), self.retries.to_value()));
        }
        if self.wasted_airtime_bytes != 0 {
            fields.push((
                "wasted_airtime_bytes".to_string(),
                self.wasted_airtime_bytes.to_value(),
            ));
        }
        if self.lost_clients != 0 {
            fields.push(("lost_clients".to_string(), self.lost_clients.to_value()));
        }
        if self.backups_activated != 0 {
            fields.push((
                "backups_activated".to_string(),
                self.backups_activated.to_value(),
            ));
        }
        if !self.quorum_met {
            fields.push(("quorum_met".to_string(), self.quorum_met.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RoundRecord {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", v))?;
        let field =
            |name: &str| serde::find(entries, name).ok_or_else(|| serde::DeError::missing(name));
        let bytes_up = u64::from_value(field("bytes_up")?)?;
        let bytes_down = u64::from_value(field("bytes_down")?)?;
        Ok(RoundRecord {
            round: usize::from_value(field("round")?)?,
            round_latency_s: f64::from_value(field("round_latency_s")?)?,
            cumulative_latency_s: f64::from_value(field("cumulative_latency_s")?)?,
            train_loss: f64::from_value(field("train_loss")?)?,
            test_accuracy: Option::<f64>::from_value(field("test_accuracy")?)?,
            bytes_up,
            bytes_down,
            // Absent on identity-codec records: the raw totals equal the
            // wire totals.
            bytes_up_raw: match serde::find(entries, "bytes_up_raw") {
                Some(raw) => u64::from_value(raw)?,
                None => bytes_up,
            },
            bytes_down_raw: match serde::find(entries, "bytes_down_raw") {
                Some(raw) => u64::from_value(raw)?,
                None => bytes_down,
            },
            // Pre-energy records load with zero energy (the historical
            // `#[serde(default)]`).
            client_energy_j: match serde::find(entries, "client_energy_j") {
                Some(e) => f64::from_value(e)?,
                None => 0.0,
            },
            // Fault fields are absent on fault-free (and historical)
            // records; the defaults mean "clean round".
            retries: match serde::find(entries, "retries") {
                Some(x) => u64::from_value(x)?,
                None => 0,
            },
            wasted_airtime_bytes: match serde::find(entries, "wasted_airtime_bytes") {
                Some(x) => u64::from_value(x)?,
                None => 0,
            },
            lost_clients: match serde::find(entries, "lost_clients") {
                Some(x) => u32::from_value(x)?,
                None => 0,
            },
            backups_activated: match serde::find(entries, "backups_activated") {
                Some(x) => u32::from_value(x)?,
                None => 0,
            },
            quorum_met: match serde::find(entries, "quorum_met") {
                Some(x) => bool::from_value(x)?,
                None => true,
            },
        })
    }
}

/// The complete outcome of running one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Scheme name (`"cl"`, `"fl"`, `"sl"`, `"sfl"`, `"gsfl"`).
    pub scheme: String,
    /// Per-round records, in order.
    pub records: Vec<RoundRecord>,
    /// Server-side storage the scheme requires (bytes of resident models).
    pub server_storage_bytes: u64,
    /// Total model parameters (client + server sides).
    pub param_count: usize,
    /// Real (host) time the run took, for harness reporting.
    pub wall_clock_s: f64,
}

impl RunResult {
    /// The last recorded test accuracy as a percentage (0 if never
    /// evaluated).
    pub fn final_accuracy_pct(&self) -> f64 {
        self.records
            .iter()
            .rev()
            .find_map(|r| r.test_accuracy)
            .unwrap_or(0.0)
            * 100.0
    }

    /// The best recorded test accuracy as a percentage.
    pub fn best_accuracy_pct(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
            * 100.0
    }

    /// First round at which test accuracy reached `target` (fraction).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.round)
    }

    /// Simulated seconds until test accuracy first reached `target`.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_latency_s)
    }

    /// Simulated seconds until test accuracy reached `target` and never
    /// fell below it again — robust to the one-evaluation flukes that
    /// [`RunResult::time_to_accuracy`] counts as arrival.
    pub fn sustained_time_to_accuracy(&self, target: f64) -> Option<f64> {
        let from = self
            .records
            .iter()
            .rposition(|r| r.test_accuracy.is_some_and(|a| a < target))
            .map_or(0, |i| i + 1);
        self.records[from..]
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_latency_s)
    }

    /// Client-side joules spent until test accuracy first reached
    /// `target` (fraction) — the energy twin of
    /// [`RunResult::time_to_accuracy`], used to rank schemes on battery
    /// cost in scenario sweeps.
    pub fn energy_to_accuracy(&self, target: f64) -> Option<f64> {
        let mut spent = 0.0;
        for r in &self.records {
            spent += r.client_energy_j;
            if r.test_accuracy.is_some_and(|a| a >= target) {
                return Some(spent);
            }
        }
        None
    }

    /// Total bytes moved over the wire (encoded, up + down).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes_up + r.bytes_down).sum()
    }

    /// Total uncompressed bytes the same run would have moved (up +
    /// down). Equal to [`RunResult::total_bytes`] under identity codecs.
    pub fn total_raw_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.bytes_up_raw + r.bytes_down_raw)
            .sum()
    }

    /// Wire bytes divided by raw bytes over the run — 1.0 uncompressed,
    /// smaller is tighter. 1.0 for an empty run.
    pub fn compression_ratio(&self) -> f64 {
        let raw = self.total_raw_bytes();
        if raw == 0 {
            return 1.0;
        }
        self.total_bytes() as f64 / raw as f64
    }

    /// Total client-side energy over the run, joules.
    pub fn total_client_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.client_energy_j).sum()
    }

    /// Rounds that missed their aggregation quorum and were skipped.
    pub fn rounds_skipped(&self) -> usize {
        self.records.iter().filter(|r| !r.quorum_met).count()
    }

    /// Total retransmission attempts beyond the first over the run.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| r.retries).sum()
    }

    /// Total airtime bytes spent on traffic that never aggregated
    /// (retransmissions plus crashed-client payloads).
    pub fn total_wasted_airtime_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.wasted_airtime_bytes).sum()
    }

    /// Total clients lost mid-round (crash or deadline) over the run.
    pub fn total_lost_clients(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.lost_clients)).sum()
    }

    /// Total backup activations over the run.
    pub fn total_backups_activated(&self) -> u64 {
        self.records
            .iter()
            .map(|r| u64::from(r.backups_activated))
            .sum()
    }

    /// Total simulated duration of the run.
    pub fn total_latency_s(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.cumulative_latency_s)
            .unwrap_or(0.0)
    }

    /// Renders the records as CSV (header + one row per round; empty
    /// accuracy cells on non-evaluation rounds).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scheme,round,round_latency_s,cumulative_latency_s,train_loss,test_accuracy,bytes_up,bytes_down,bytes_up_raw,bytes_down_raw,client_energy_j,retries,wasted_airtime_bytes,lost_clients,backups_activated,quorum_met\n",
        );
        for r in &self.records {
            let acc = r
                .test_accuracy
                .map(|a| format!("{a:.6}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{:.6},{},{},{},{},{}\n",
                self.scheme,
                r.round,
                r.round_latency_s,
                r.cumulative_latency_s,
                r.train_loss,
                acc,
                r.bytes_up,
                r.bytes_down,
                r.bytes_up_raw,
                r.bytes_down_raw,
                r.client_energy_j,
                r.retries,
                r.wasted_airtime_bytes,
                r.lost_clients,
                r.backups_activated,
                r.quorum_met
            ));
        }
        out
    }

    /// Writes the CSV next to a JSON twin (`<stem>.csv` / `<stem>.json`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, stem: &Path) -> std::io::Result<()> {
        if let Some(dir) = stem.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut csv = std::fs::File::create(stem.with_extension("csv"))?;
        csv.write_all(self.to_csv().as_bytes())?;
        let json = serde_json::to_string_pretty(self).expect("RunResult serialization cannot fail");
        std::fs::write(stem.with_extension("json"), json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, cumulative: f64, loss: f64, acc: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            round_latency_s: 2.0,
            cumulative_latency_s: cumulative,
            train_loss: loss,
            test_accuracy: acc,
            bytes_up: 100,
            bytes_down: 50,
            bytes_up_raw: 100,
            bytes_down_raw: 50,
            client_energy_j: 3.0,
            retries: 0,
            wasted_airtime_bytes: 0,
            lost_clients: 0,
            backups_activated: 0,
            quorum_met: true,
        }
    }

    fn result() -> RunResult {
        RunResult {
            scheme: "test".into(),
            records: vec![
                record(1, 2.0, 1.5, Some(0.3)),
                record(2, 4.0, 1.0, None),
                record(3, 6.0, 0.5, Some(0.8)),
            ],
            server_storage_bytes: 1234,
            param_count: 99,
            wall_clock_s: 0.1,
        }
    }

    #[test]
    fn accuracy_summaries() {
        let r = result();
        assert!((r.final_accuracy_pct() - 80.0).abs() < 1e-9);
        assert!((r.best_accuracy_pct() - 80.0).abs() < 1e-9);
        assert_eq!(r.rounds_to_accuracy(0.25), Some(1));
        assert_eq!(r.rounds_to_accuracy(0.5), Some(3));
        assert_eq!(r.rounds_to_accuracy(0.9), None);
        assert_eq!(r.time_to_accuracy(0.5), Some(6.0));
    }

    #[test]
    fn byte_and_time_totals() {
        let r = result();
        assert_eq!(r.total_bytes(), 450);
        assert_eq!(r.total_latency_s(), 6.0);
        assert!((r.total_client_energy_j() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn energy_to_accuracy_accumulates_until_target() {
        let r = result();
        assert_eq!(r.energy_to_accuracy(0.25), Some(3.0)); // round 1
        assert_eq!(r.energy_to_accuracy(0.5), Some(9.0)); // round 3
        assert_eq!(r.energy_to_accuracy(0.95), None);
    }

    #[test]
    fn csv_shape() {
        let csv = result().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme,round"));
        // Missing accuracy leaves an empty cell.
        assert!(lines[2].contains(",,"));
    }

    #[test]
    fn json_round_trip() {
        let r = result();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), r.records.len());
        assert_eq!(back.scheme, r.scheme);
        assert_eq!(back.records[0], r.records[0]);
    }

    #[test]
    fn raw_bytes_serialize_only_when_compressed() {
        // Identity (raw == wire): the raw fields must not appear — the
        // golden fixtures compare serialized records as strings.
        let identity = record(1, 2.0, 1.0, None);
        let json = serde_json::to_string(&identity).unwrap();
        assert!(!json.contains("bytes_up_raw"), "{json}");
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, identity);

        // Compressed: both raw fields appear and round-trip.
        let mut squeezed = identity;
        squeezed.bytes_up = 25;
        squeezed.bytes_down = 13;
        let json = serde_json::to_string(&squeezed).unwrap();
        assert!(json.contains("bytes_up_raw"), "{json}");
        assert!(json.contains("bytes_down_raw"), "{json}");
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, squeezed);
    }

    #[test]
    fn fault_fields_serialize_only_when_faulted() {
        // Clean round: no fault keys at all — golden fixtures compare
        // serialized records as strings, so the clean shape is pinned.
        let clean = record(1, 2.0, 1.0, None);
        let json = serde_json::to_string(&clean).unwrap();
        for key in [
            "retries",
            "wasted_airtime_bytes",
            "lost_clients",
            "backups_activated",
            "quorum_met",
        ] {
            assert!(!json.contains(key), "{key} leaked into {json}");
        }
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, clean);

        // Faulted round: every non-default field appears and round-trips.
        let mut faulted = clean;
        faulted.retries = 3;
        faulted.wasted_airtime_bytes = 4096;
        faulted.lost_clients = 2;
        faulted.backups_activated = 1;
        faulted.quorum_met = false;
        let json = serde_json::to_string(&faulted).unwrap();
        for key in [
            "retries",
            "wasted_airtime_bytes",
            "lost_clients",
            "backups_activated",
            "quorum_met",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, faulted);
    }

    #[test]
    fn fault_totals_and_skip_count() {
        let mut r = result();
        assert_eq!(r.rounds_skipped(), 0);
        assert_eq!(r.total_retries(), 0);
        r.records[1].retries = 5;
        r.records[1].wasted_airtime_bytes = 100;
        r.records[1].lost_clients = 1;
        r.records[2].quorum_met = false;
        r.records[2].backups_activated = 2;
        assert_eq!(r.rounds_skipped(), 1);
        assert_eq!(r.total_retries(), 5);
        assert_eq!(r.total_wasted_airtime_bytes(), 100);
        assert_eq!(r.total_lost_clients(), 1);
        assert_eq!(r.total_backups_activated(), 2);
    }

    #[test]
    fn compression_totals() {
        let mut r = result();
        assert_eq!(r.total_raw_bytes(), 450);
        assert!((r.compression_ratio() - 1.0).abs() < 1e-12);
        for rec in &mut r.records {
            rec.bytes_up = 50;
            rec.bytes_down = 25;
        }
        assert_eq!(r.total_bytes(), 225);
        assert_eq!(r.total_raw_bytes(), 450);
        assert!((r.compression_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_result_defaults() {
        let r = RunResult {
            scheme: "x".into(),
            records: vec![],
            server_storage_bytes: 0,
            param_count: 0,
            wall_clock_s: 0.0,
        };
        assert_eq!(r.final_accuracy_pct(), 0.0);
        assert_eq!(r.total_latency_s(), 0.0);
        assert_eq!(r.rounds_to_accuracy(0.1), None);
    }
}
