//! Round records and run results.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Metrics recorded for one training round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Simulated wall-clock duration of this round (seconds).
    pub round_latency_s: f64,
    /// Cumulative simulated time after this round (seconds).
    pub cumulative_latency_s: f64,
    /// Mean training loss over the round's steps.
    pub train_loss: f64,
    /// Test accuracy in `[0,1]`, present on evaluation rounds.
    pub test_accuracy: Option<f64>,
    /// Client→AP bytes this round.
    pub bytes_up: u64,
    /// AP→client bytes this round.
    pub bytes_down: u64,
    /// Total client-side energy this round, joules.
    #[serde(default)]
    pub client_energy_j: f64,
}

/// The complete outcome of running one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Scheme name (`"cl"`, `"fl"`, `"sl"`, `"sfl"`, `"gsfl"`).
    pub scheme: String,
    /// Per-round records, in order.
    pub records: Vec<RoundRecord>,
    /// Server-side storage the scheme requires (bytes of resident models).
    pub server_storage_bytes: u64,
    /// Total model parameters (client + server sides).
    pub param_count: usize,
    /// Real (host) time the run took, for harness reporting.
    pub wall_clock_s: f64,
}

impl RunResult {
    /// The last recorded test accuracy as a percentage (0 if never
    /// evaluated).
    pub fn final_accuracy_pct(&self) -> f64 {
        self.records
            .iter()
            .rev()
            .find_map(|r| r.test_accuracy)
            .unwrap_or(0.0)
            * 100.0
    }

    /// The best recorded test accuracy as a percentage.
    pub fn best_accuracy_pct(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
            * 100.0
    }

    /// First round at which test accuracy reached `target` (fraction).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.round)
    }

    /// Simulated seconds until test accuracy first reached `target`.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_latency_s)
    }

    /// Client-side joules spent until test accuracy first reached
    /// `target` (fraction) — the energy twin of
    /// [`RunResult::time_to_accuracy`], used to rank schemes on battery
    /// cost in scenario sweeps.
    pub fn energy_to_accuracy(&self, target: f64) -> Option<f64> {
        let mut spent = 0.0;
        for r in &self.records {
            spent += r.client_energy_j;
            if r.test_accuracy.is_some_and(|a| a >= target) {
                return Some(spent);
            }
        }
        None
    }

    /// Total bytes moved over the run (up + down).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes_up + r.bytes_down).sum()
    }

    /// Total client-side energy over the run, joules.
    pub fn total_client_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.client_energy_j).sum()
    }

    /// Total simulated duration of the run.
    pub fn total_latency_s(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.cumulative_latency_s)
            .unwrap_or(0.0)
    }

    /// Renders the records as CSV (header + one row per round; empty
    /// accuracy cells on non-evaluation rounds).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scheme,round,round_latency_s,cumulative_latency_s,train_loss,test_accuracy,bytes_up,bytes_down,client_energy_j\n",
        );
        for r in &self.records {
            let acc = r
                .test_accuracy
                .map(|a| format!("{a:.6}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{},{},{},{:.6}\n",
                self.scheme,
                r.round,
                r.round_latency_s,
                r.cumulative_latency_s,
                r.train_loss,
                acc,
                r.bytes_up,
                r.bytes_down,
                r.client_energy_j
            ));
        }
        out
    }

    /// Writes the CSV next to a JSON twin (`<stem>.csv` / `<stem>.json`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, stem: &Path) -> std::io::Result<()> {
        if let Some(dir) = stem.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut csv = std::fs::File::create(stem.with_extension("csv"))?;
        csv.write_all(self.to_csv().as_bytes())?;
        let json = serde_json::to_string_pretty(self).expect("RunResult serialization cannot fail");
        std::fs::write(stem.with_extension("json"), json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            scheme: "test".into(),
            records: vec![
                RoundRecord {
                    round: 1,
                    round_latency_s: 2.0,
                    cumulative_latency_s: 2.0,
                    train_loss: 1.5,
                    test_accuracy: Some(0.3),
                    bytes_up: 100,
                    bytes_down: 50,
                    client_energy_j: 3.0,
                },
                RoundRecord {
                    round: 2,
                    round_latency_s: 2.0,
                    cumulative_latency_s: 4.0,
                    train_loss: 1.0,
                    test_accuracy: None,
                    bytes_up: 100,
                    bytes_down: 50,
                    client_energy_j: 3.0,
                },
                RoundRecord {
                    round: 3,
                    round_latency_s: 2.0,
                    cumulative_latency_s: 6.0,
                    train_loss: 0.5,
                    test_accuracy: Some(0.8),
                    bytes_up: 100,
                    bytes_down: 50,
                    client_energy_j: 3.0,
                },
            ],
            server_storage_bytes: 1234,
            param_count: 99,
            wall_clock_s: 0.1,
        }
    }

    #[test]
    fn accuracy_summaries() {
        let r = result();
        assert!((r.final_accuracy_pct() - 80.0).abs() < 1e-9);
        assert!((r.best_accuracy_pct() - 80.0).abs() < 1e-9);
        assert_eq!(r.rounds_to_accuracy(0.25), Some(1));
        assert_eq!(r.rounds_to_accuracy(0.5), Some(3));
        assert_eq!(r.rounds_to_accuracy(0.9), None);
        assert_eq!(r.time_to_accuracy(0.5), Some(6.0));
    }

    #[test]
    fn byte_and_time_totals() {
        let r = result();
        assert_eq!(r.total_bytes(), 450);
        assert_eq!(r.total_latency_s(), 6.0);
        assert!((r.total_client_energy_j() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn energy_to_accuracy_accumulates_until_target() {
        let r = result();
        assert_eq!(r.energy_to_accuracy(0.25), Some(3.0)); // round 1
        assert_eq!(r.energy_to_accuracy(0.5), Some(9.0)); // round 3
        assert_eq!(r.energy_to_accuracy(0.95), None);
    }

    #[test]
    fn csv_shape() {
        let csv = result().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme,round"));
        // Missing accuracy leaves an empty cell.
        assert!(lines[2].contains(",,"));
    }

    #[test]
    fn json_round_trip() {
        let r = result();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), r.records.len());
        assert_eq!(back.scheme, r.scheme);
    }

    #[test]
    fn empty_result_defaults() {
        let r = RunResult {
            scheme: "x".into(),
            records: vec![],
            server_storage_bytes: 0,
            param_count: 0,
            wall_clock_s: 0.0,
        };
        assert_eq!(r.final_accuracy_pct(), 0.0);
        assert_eq!(r.total_latency_s(), 0.0);
        assert_eq!(r.rounds_to_accuracy(0.1), None);
    }
}
