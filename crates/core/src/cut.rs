//! Adaptive cut-layer selection.
//!
//! The paper fixes the split point once per experiment; the follow-up
//! literature (Accelerating-SFL, ASFL) picks it from observed channel and
//! compute conditions, because the latency-optimal cut moves when
//! bandwidth collapses, interference rises or stragglers appear. This
//! module closes that loop:
//!
//! * [`CutPolicy`] — the per-round decision trait the split schemes
//!   consult. Policies see a [`CutQuery`]: the round's
//!   [`RoundConditions`] snapshot, the candidate cut indices, and the
//!   pre-computed [`SplitCosts`] profile of every candidate.
//! * [`FixedCut`] — the baseline: always the configured cut. Runs are
//!   byte-identical to the pre-policy code.
//! * [`GreedyLatency`] — estimates the round's straggler-bound latency
//!   for every candidate from the live conditions and picks the argmin.
//! * [`BanditCut`] — ε-greedy over realized round latencies fed back via
//!   [`CutPolicy::observe`]; learns the environment instead of trusting
//!   the estimator, at the price of exploration rounds.
//!
//! Policies are named in configs by [`CutPolicySpec`] (serde). Adaptive
//! policies require `momentum == 0` — optimizer velocity is not
//! remappable across cuts, and the config validation rejects the
//! combination rather than silently resetting state.

use crate::latency::SplitCosts;
use gsfl_tensor::rng::SeedDerive;
use gsfl_wireless::environment::{ChannelModel, RoundConditions};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Everything a [`CutPolicy`] may look at when choosing a round's cut.
pub struct CutQuery<'a> {
    /// The round being decided (0-based environment round).
    pub round: u64,
    /// The configured (fixed) cut — the fallback on estimator failure.
    pub default_cut: usize,
    /// Valid candidate cut indices, ascending.
    pub candidates: &'a [usize],
    /// Per-candidate cost profiles.
    pub costs: &'a BTreeMap<usize, SplitCosts>,
    /// The environment snapshot for the round.
    pub conditions: &'a RoundConditions,
    /// The environment itself, for per-client latency queries.
    pub env: &'a dyn ChannelModel,
    /// Per-client step counts (index = client id).
    pub steps: &'a [usize],
}

/// Chooses the cut layer each round (optionally per client).
///
/// Implementations must be `Send + Sync` — contexts are shared across
/// scheme threads — and deterministic given their construction seed and
/// the observation sequence.
pub trait CutPolicy: std::fmt::Debug + Send + Sync {
    /// The cut every client uses in `q.round`. Must return one of
    /// `q.candidates`.
    fn choose(&self, q: &CutQuery<'_>) -> usize;

    /// Optional per-client refinement; defaults to the round-level cut.
    fn choose_for(&self, client: usize, q: &CutQuery<'_>) -> usize {
        let _ = client;
        self.choose(q)
    }

    /// Realized-latency feedback after the round ran at `cut`.
    fn observe(&self, round: u64, cut: usize, latency_s: f64) {
        let _ = (round, cut, latency_s);
    }
}

/// Always the configured cut — the paper's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedCut;

impl CutPolicy for FixedCut {
    fn choose(&self, q: &CutQuery<'_>) -> usize {
        q.default_cut
    }
}

/// Picks the candidate minimizing an estimate of the round's
/// straggler-bound latency under the live conditions: per participating
/// client, model download + `steps ×` (client forward, smashed uplink,
/// server pass, gradient downlink, client backward) at the round's
/// dedicated bandwidth share, maximized over clients. Ignores server
/// slot contention and group structure — it is an *estimator*, and a
/// deliberately cheap one; [`BanditCut`] learns what it misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyLatency;

impl GreedyLatency {
    fn estimate(q: &CutQuery<'_>, cut: usize) -> Option<f64> {
        let costs = q.costs.get(&cut)?;
        let share = q.conditions.dedicated_share();
        let mut worst = 0.0f64;
        for cond in &q.conditions.clients {
            let c = cond.client;
            if !cond.available || q.steps.get(c).copied().unwrap_or(0) == 0 {
                continue;
            }
            let steps = q.steps[c] as f64;
            // Estimates charge the encoded wire sizes — what actually
            // occupies the air under the configured compression (model
            // downlinks are fp32, matching the round calculators).
            let dl_model = q
                .env
                .downlink_time(c, costs.client_model_bytes, q.round, share)
                .ok()?;
            let fwd = q
                .env
                .client_compute(c, costs.client_fwd_flops, q.round)
                .ok()?;
            let ul = q
                .env
                .uplink_time(c, costs.smashed_wire_bytes, q.round, share)
                .ok()?;
            let ap = q.env.ap_of(c, q.round).ok()?;
            let srv = q.env.server_compute_at(ap, costs.server_flops);
            let dl = q
                .env
                .downlink_time(c, costs.grad_wire_bytes, q.round, share)
                .ok()?;
            let bwd = q
                .env
                .client_compute(c, costs.client_bwd_flops, q.round)
                .ok()?;
            let per_step = (fwd + ul + srv + dl + bwd).as_secs_f64();
            worst = worst.max(dl_model.as_secs_f64() + steps * per_step);
        }
        Some(worst)
    }

    /// The same chain estimate for one client only — drives the
    /// per-client [`CutPolicy::choose_for`] refinement.
    fn estimate_for(q: &CutQuery<'_>, cut: usize, client: usize) -> Option<f64> {
        let costs = q.costs.get(&cut)?;
        let share = q.conditions.dedicated_share();
        let steps = q.steps.get(client).copied().unwrap_or(0);
        if steps == 0 {
            return Some(0.0);
        }
        let dl_model = q
            .env
            .downlink_time(client, costs.client_model_bytes, q.round, share)
            .ok()?;
        let fwd = q
            .env
            .client_compute(client, costs.client_fwd_flops, q.round)
            .ok()?;
        let ul = q
            .env
            .uplink_time(client, costs.smashed_wire_bytes, q.round, share)
            .ok()?;
        let ap = q.env.ap_of(client, q.round).ok()?;
        let srv = q.env.server_compute_at(ap, costs.server_flops);
        let dl = q
            .env
            .downlink_time(client, costs.grad_wire_bytes, q.round, share)
            .ok()?;
        let bwd = q
            .env
            .client_compute(client, costs.client_bwd_flops, q.round)
            .ok()?;
        let per_step = (fwd + ul + srv + dl + bwd).as_secs_f64();
        Some(dl_model.as_secs_f64() + steps as f64 * per_step)
    }
}

impl CutPolicy for GreedyLatency {
    fn choose(&self, q: &CutQuery<'_>) -> usize {
        let mut best = q.default_cut;
        let mut best_est = f64::INFINITY;
        for &cut in q.candidates {
            let Some(est) = GreedyLatency::estimate(q, cut) else {
                continue;
            };
            if est < best_est {
                best = cut;
                best_est = est;
            }
        }
        best
    }

    /// Per-client argmin of the single-client chain estimate — schemes
    /// whose server side is per-client (SplitFed) can train each client
    /// at its own latency-optimal cut.
    fn choose_for(&self, client: usize, q: &CutQuery<'_>) -> usize {
        let mut best = self.choose(q);
        let mut best_est = f64::INFINITY;
        for &cut in q.candidates {
            let Some(est) = GreedyLatency::estimate_for(q, cut, client) else {
                continue;
            };
            if est < best_est {
                best = cut;
                best_est = est;
            }
        }
        best
    }
}

/// ε-greedy bandit over realized round latencies: explore a uniform
/// random candidate with probability ε (deterministic per round given
/// the seed), otherwise exploit the lowest observed mean latency.
/// Candidates never tried are explored first, in ascending order.
#[derive(Debug)]
pub struct BanditCut {
    epsilon: f64,
    seeds: SeedDerive,
    /// cut → (observations, mean latency).
    arms: Mutex<BTreeMap<usize, (u64, f64)>>,
}

impl BanditCut {
    /// A fresh bandit; `epsilon` is the exploration probability and
    /// `seed` makes the exploration schedule reproducible.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        BanditCut {
            epsilon,
            seeds: SeedDerive::new(seed).child("cut-bandit"),
            arms: Mutex::new(BTreeMap::new()),
        }
    }
}

impl CutPolicy for BanditCut {
    fn choose(&self, q: &CutQuery<'_>) -> usize {
        if q.candidates.is_empty() {
            return q.default_cut;
        }
        let arms = self.arms.lock().expect("bandit lock poisoned");
        // Untried arms first.
        if let Some(&cut) = q.candidates.iter().find(|c| !arms.contains_key(c)) {
            return cut;
        }
        let mut rng = self.seeds.index(q.round).rng();
        if rng.gen::<f64>() < self.epsilon {
            return q.candidates[rng.gen_range(0..q.candidates.len())];
        }
        q.candidates
            .iter()
            .copied()
            .min_by(|a, b| {
                let ma = arms.get(a).map(|&(_, m)| m).unwrap_or(f64::INFINITY);
                let mb = arms.get(b).map(|&(_, m)| m).unwrap_or(f64::INFINITY);
                ma.partial_cmp(&mb).expect("latencies are finite")
            })
            .unwrap_or(q.default_cut)
    }

    fn observe(&self, _round: u64, cut: usize, latency_s: f64) {
        let mut arms = self.arms.lock().expect("bandit lock poisoned");
        let (n, mean) = arms.entry(cut).or_insert((0, 0.0));
        *n += 1;
        *mean += (latency_s - *mean) / *n as f64;
    }
}

/// Serde-loadable cut-policy names for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CutPolicySpec {
    /// The configured cut every round (the paper's behavior) — default.
    #[default]
    Fixed,
    /// Greedy latency-estimate policy ([`GreedyLatency`]).
    Greedy,
    /// ε-greedy bandit over realized latencies ([`BanditCut`]).
    Bandit {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
}

impl CutPolicySpec {
    /// Whether this is the fixed (non-adaptive) policy.
    pub fn is_fixed(&self) -> bool {
        matches!(self, CutPolicySpec::Fixed)
    }

    /// Builds the policy object; `seed` drives any stochastic
    /// exploration.
    pub fn policy(&self, seed: u64) -> Box<dyn CutPolicy> {
        match *self {
            CutPolicySpec::Fixed => Box::new(FixedCut),
            CutPolicySpec::Greedy => Box::new(GreedyLatency),
            CutPolicySpec::Bandit { epsilon } => Box::new(BanditCut::new(epsilon, seed)),
        }
    }
}

/// Per-run cut-selection state: one policy instance per scheme run.
///
/// Built in each scheme's [`crate::scheme::Scheme::init`], **not** in
/// the shared [`crate::context::TrainContext`] — a learning policy
/// (the bandit) accumulates observations, and sharing that state across
/// sessions would warm-start later runs and let concurrently running
/// schemes (`Runner::run_many`) interleave feedback in thread-scheduling
/// order, breaking run independence and determinism.
#[derive(Debug)]
pub struct CutSelector {
    policy: Box<dyn CutPolicy>,
    fixed: bool,
}

impl CutSelector {
    /// A fresh selector for one scheme run, from the config's policy
    /// spec (seeded by the experiment seed).
    pub fn from_config(config: &crate::config::ExperimentConfig) -> Self {
        CutSelector {
            policy: config.cut_policy.policy(config.seed),
            fixed: config.cut_policy.is_fixed(),
        }
    }

    /// Resolves the cut layer for `round`, with its cost profile. The
    /// fixed policy short-circuits to the configured cut and the
    /// context's cached costs — byte-identical to the pre-policy
    /// behavior; adaptive policies consult the round's conditions.
    ///
    /// # Errors
    ///
    /// Propagates environment query errors; fails if the policy returns
    /// a cut outside the context's candidate set.
    pub fn cut_for_round(
        &self,
        ctx: &crate::context::TrainContext,
        round: u64,
    ) -> crate::Result<(usize, SplitCosts)> {
        if self.fixed {
            return Ok((ctx.config.cut(), ctx.costs));
        }
        let conditions = ctx.env.conditions(round)?;
        let steps = ctx.steps_per_client();
        let q = CutQuery {
            round,
            default_cut: ctx.config.cut(),
            candidates: &ctx.cut_candidates,
            costs: &ctx.costs_by_cut,
            conditions: &conditions,
            env: ctx.env.as_ref(),
            steps: &steps,
        };
        let cut = self.policy.choose(&q);
        let costs = ctx.costs_by_cut.get(&cut).copied().ok_or_else(|| {
            crate::CoreError::Config(format!(
                "cut policy chose cut {cut}, not among candidates {:?}",
                ctx.cut_candidates
            ))
        })?;
        Ok((cut, costs))
    }

    /// Per-client cuts from the policy's [`CutPolicy::choose_for`] hook,
    /// indexed by client id. `None` on the fixed path — every client
    /// trains at the configured cut, byte-identical to before. Only
    /// schemes whose server side is per-client (SplitFed) can honor
    /// heterogeneous cuts.
    ///
    /// # Errors
    ///
    /// Propagates environment query errors; fails if the policy returns
    /// a cut outside the context's candidate set.
    pub fn client_cuts_for_round(
        &self,
        ctx: &crate::context::TrainContext,
        round: u64,
    ) -> crate::Result<Option<Vec<usize>>> {
        if self.fixed {
            return Ok(None);
        }
        let conditions = ctx.env.conditions(round)?;
        let steps = ctx.steps_per_client();
        let q = CutQuery {
            round,
            default_cut: ctx.config.cut(),
            candidates: &ctx.cut_candidates,
            costs: &ctx.costs_by_cut,
            conditions: &conditions,
            env: ctx.env.as_ref(),
            steps: &steps,
        };
        let cuts: Vec<usize> = (0..ctx.config.clients)
            .map(|c| self.policy.choose_for(c, &q))
            .collect();
        if let Some(bad) = cuts.iter().find(|c| !ctx.cut_candidates.contains(c)) {
            return Err(crate::CoreError::Config(format!(
                "cut policy chose per-client cut {bad}, not among candidates {:?}",
                ctx.cut_candidates
            )));
        }
        Ok(Some(cuts))
    }

    /// Feeds a round's realized latency back to the policy (no-op for
    /// policies that do not learn).
    pub fn observe(&self, round: u64, cut: usize, latency_s: f64) {
        self.policy.observe(round, cut, latency_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_nn::model::Mlp;
    use gsfl_wireless::environment::StaticEnvironment;
    use gsfl_wireless::latency::LatencyModel;

    fn fixture() -> (StaticEnvironment, BTreeMap<usize, SplitCosts>, Vec<usize>) {
        let env = StaticEnvironment::new(
            LatencyModel::builder()
                .clients(3)
                .seed(4)
                .fading(false)
                .build()
                .unwrap(),
        );
        let net = Mlp::new(48, &[32, 32], 5, 0).into_sequential();
        let candidates: Vec<usize> = (1..net.depth()).collect();
        let costs = candidates
            .iter()
            .map(|&cut| (cut, SplitCosts::compute(&net, cut, &[48], 8).unwrap()))
            .collect();
        (env, costs, candidates)
    }

    fn query<'a>(
        env: &'a StaticEnvironment,
        costs: &'a BTreeMap<usize, SplitCosts>,
        candidates: &'a [usize],
        conditions: &'a RoundConditions,
        steps: &'a [usize],
    ) -> CutQuery<'a> {
        CutQuery {
            round: conditions.round,
            default_cut: candidates[0],
            candidates,
            costs,
            conditions,
            env,
            steps,
        }
    }

    #[test]
    fn fixed_returns_default() {
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(0).unwrap();
        let steps = vec![2, 2, 2];
        let q = query(&env, &costs, &candidates, &cond, &steps);
        assert_eq!(FixedCut.choose(&q), candidates[0]);
        assert_eq!(FixedCut.choose_for(1, &q), candidates[0]);
    }

    #[test]
    fn greedy_picks_a_candidate_and_is_deterministic() {
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(3).unwrap();
        let steps = vec![2, 2, 2];
        let q = query(&env, &costs, &candidates, &cond, &steps);
        let a = GreedyLatency.choose(&q);
        let b = GreedyLatency.choose(&q);
        assert_eq!(a, b);
        assert!(candidates.contains(&a));
    }

    #[test]
    fn greedy_choose_for_minimizes_each_clients_chain() {
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(1).unwrap();
        // Client 2 trains far more than the others — its own-chain argmin
        // is the minimum of its per-client estimate, whatever that is.
        let steps = vec![1, 1, 9];
        let q = query(&env, &costs, &candidates, &cond, &steps);
        for client in 0..3 {
            let cut = GreedyLatency.choose_for(client, &q);
            assert!(candidates.contains(&cut));
            let est = GreedyLatency::estimate_for(&q, cut, client).unwrap();
            for &c in &candidates {
                assert!(est <= GreedyLatency::estimate_for(&q, c, client).unwrap() + 1e-12);
            }
        }
        // Zero-step clients cost nothing everywhere; any candidate works.
        let steps = vec![0, 1, 1];
        let q = query(&env, &costs, &candidates, &cond, &steps);
        assert!(candidates.contains(&GreedyLatency.choose_for(0, &q)));
    }

    #[test]
    fn greedy_prefers_cheaper_estimated_cut() {
        // The greedy estimate of the chosen cut is minimal among
        // candidates, by construction.
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(1).unwrap();
        let steps = vec![3, 1, 2];
        let q = query(&env, &costs, &candidates, &cond, &steps);
        let chosen = GreedyLatency.choose(&q);
        let chosen_est = GreedyLatency::estimate(&q, chosen).unwrap();
        for &cut in &candidates {
            assert!(chosen_est <= GreedyLatency::estimate(&q, cut).unwrap() + 1e-12);
        }
    }

    #[test]
    fn bandit_explores_then_exploits() {
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(0).unwrap();
        let steps = vec![1, 1, 1];
        let bandit = BanditCut::new(0.0, 7);
        // First |candidates| rounds try every arm once, in order.
        for (i, &expect) in candidates.iter().enumerate() {
            let q = query(&env, &costs, &candidates, &cond, &steps);
            let cut = bandit.choose(&q);
            assert_eq!(cut, expect, "round {i}");
            // Make arm `expect` look worse the deeper the cut.
            bandit.observe(i as u64, cut, expect as f64);
        }
        // With ε = 0 the bandit now exploits the best-observed arm.
        let q = query(&env, &costs, &candidates, &cond, &steps);
        assert_eq!(bandit.choose(&q), candidates[0]);
    }

    #[test]
    fn bandit_exploration_deterministic_per_seed() {
        let (env, costs, candidates) = fixture();
        let cond = env.conditions(0).unwrap();
        let steps = vec![1, 1, 1];
        let run = |seed: u64| -> Vec<usize> {
            let bandit = BanditCut::new(0.5, seed);
            (0..20u64)
                .map(|r| {
                    let cond = env.conditions(r).unwrap();
                    let q = CutQuery {
                        round: r,
                        default_cut: candidates[0],
                        candidates: &candidates,
                        costs: &costs,
                        conditions: &cond,
                        env: &env,
                        steps: &steps,
                    };
                    let cut = bandit.choose(&q);
                    bandit.observe(r, cut, 1.0 + cut as f64);
                    cut
                })
                .collect()
        };
        let _ = cond;
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should explore differently");
    }

    #[test]
    fn spec_builds_every_policy() {
        assert!(CutPolicySpec::Fixed.is_fixed());
        assert!(!CutPolicySpec::Greedy.is_fixed());
        let _ = CutPolicySpec::Fixed.policy(0);
        let _ = CutPolicySpec::Greedy.policy(0);
        let _ = CutPolicySpec::Bandit { epsilon: 0.2 }.policy(0);
        let json = serde_json::to_string(&CutPolicySpec::Bandit { epsilon: 0.2 }).unwrap();
        let back: CutPolicySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CutPolicySpec::Bandit { epsilon: 0.2 });
    }
}
