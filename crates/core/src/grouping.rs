//! Client-to-group assignment strategies.
//!
//! GSFL partitions the N clients into M groups; §IV of the paper lists
//! grouping as a future-work axis, so several strategies are provided and
//! swept by the `ablation_groups` bench.

use crate::config::GroupingKind;
use crate::{CoreError, Result};
use gsfl_tensor::rng::SeedDerive;
use rand::seq::SliceRandom;

/// A client's cost features used by load-aware strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientCost {
    /// Estimated per-round training time (seconds) of this client alone.
    pub round_time_s: f64,
    /// Distance from the AP in meters (channel-quality proxy).
    pub distance_m: f64,
}

/// Assigns `clients` into `groups` groups under the given strategy.
///
/// All strategies return every client exactly once and never produce an
/// empty group (for `groups ≤ clients`).
///
/// # Errors
///
/// Returns [`CoreError::Config`] for zero groups, more groups than
/// clients, or missing cost features for the load-aware strategies.
pub fn assign_groups(
    kind: GroupingKind,
    clients: usize,
    groups: usize,
    costs: Option<&[ClientCost]>,
    seed: u64,
) -> Result<Vec<Vec<usize>>> {
    if groups == 0 || groups > clients {
        return Err(CoreError::Config(format!(
            "groups must be in 1..={clients}, got {groups}"
        )));
    }
    match kind {
        GroupingKind::RoundRobin => {
            let mut out = vec![Vec::new(); groups];
            for c in 0..clients {
                out[c % groups].push(c);
            }
            Ok(out)
        }
        GroupingKind::Random => {
            let mut ids: Vec<usize> = (0..clients).collect();
            let mut rng = SeedDerive::new(seed).child("grouping").rng();
            ids.shuffle(&mut rng);
            let mut out = vec![Vec::new(); groups];
            for (pos, c) in ids.into_iter().enumerate() {
                out[pos % groups].push(c);
            }
            Ok(out)
        }
        GroupingKind::ComputeBalanced => {
            let costs = require_costs(costs, clients)?;
            Ok(lpt_balance(clients, groups, |c| costs[c].round_time_s))
        }
        GroupingKind::ChannelAware => {
            let costs = require_costs(costs, clients)?;
            Ok(lpt_balance(clients, groups, |c| costs[c].distance_m))
        }
    }
}

fn require_costs(costs: Option<&[ClientCost]>, clients: usize) -> Result<&[ClientCost]> {
    let costs = costs.ok_or_else(|| {
        CoreError::Config("load-aware grouping needs client cost features".into())
    })?;
    if costs.len() != clients {
        return Err(CoreError::Config(format!(
            "{} cost entries for {clients} clients",
            costs.len()
        )));
    }
    Ok(costs)
}

/// Longest-processing-time-first greedy balancing: sort clients by
/// descending cost, repeatedly give the next client to the group with the
/// smallest current total. Since GSFL's round time is the *max over groups*
/// of the *sum within a group*, this directly minimizes the makespan
/// heuristic.
fn lpt_balance(clients: usize, groups: usize, cost: impl Fn(usize) -> f64) -> Vec<Vec<usize>> {
    let mut ids: Vec<usize> = (0..clients).collect();
    ids.sort_by(|&a, &b| cost(b).total_cmp(&cost(a)).then(a.cmp(&b)));
    let mut out = vec![Vec::new(); groups];
    let mut totals = vec![0.0f64; groups];
    for c in ids {
        // Prefer an empty group first so none stays empty, then least load.
        let g = (0..groups)
            .min_by(|&x, &y| {
                let ex = (!out[x].is_empty()) as u8;
                let ey = (!out[y].is_empty()) as u8;
                ex.cmp(&ey)
                    .then(totals[x].total_cmp(&totals[y]))
                    .then(x.cmp(&y))
            })
            .expect("groups ≥ 1");
        out[g].push(c);
        totals[g] += cost(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_valid(groups: &[Vec<usize>], clients: usize) {
        let mut seen = vec![false; clients];
        for g in groups {
            assert!(!g.is_empty(), "empty group");
            for &c in g {
                assert!(!seen[c], "client {c} in two groups");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_shape() {
        let g = assign_groups(GroupingKind::RoundRobin, 30, 6, None, 0).unwrap();
        is_valid(&g, 30);
        assert!(g.iter().all(|grp| grp.len() == 5));
        assert_eq!(g[0], vec![0, 6, 12, 18, 24]);
    }

    #[test]
    fn random_covers_everyone_deterministically() {
        let a = assign_groups(GroupingKind::Random, 13, 4, None, 7).unwrap();
        let b = assign_groups(GroupingKind::Random, 13, 4, None, 7).unwrap();
        let c = assign_groups(GroupingKind::Random, 13, 4, None, 8).unwrap();
        is_valid(&a, 13);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn compute_balanced_beats_round_robin_on_skewed_costs() {
        // Client 0 is very slow; LPT must isolate it.
        let mut costs = vec![
            ClientCost {
                round_time_s: 1.0,
                distance_m: 10.0
            };
            8
        ];
        costs[0].round_time_s = 10.0;
        let g = assign_groups(GroupingKind::ComputeBalanced, 8, 4, Some(&costs), 0).unwrap();
        is_valid(&g, 8);
        let group_of_0 = g.iter().find(|grp| grp.contains(&0)).unwrap();
        assert_eq!(group_of_0.len(), 1, "slow client should be alone: {g:?}");
        // Makespan comparison.
        let makespan = |groups: &[Vec<usize>]| -> f64 {
            groups
                .iter()
                .map(|grp| grp.iter().map(|&c| costs[c].round_time_s).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let rr = assign_groups(GroupingKind::RoundRobin, 8, 4, None, 0).unwrap();
        assert!(makespan(&g) <= makespan(&rr));
    }

    #[test]
    fn channel_aware_uses_distance() {
        let costs: Vec<ClientCost> = (0..6)
            .map(|i| ClientCost {
                round_time_s: 1.0,
                distance_m: (i as f64 + 1.0) * 30.0,
            })
            .collect();
        let g = assign_groups(GroupingKind::ChannelAware, 6, 3, Some(&costs), 0).unwrap();
        is_valid(&g, 6);
        // The two farthest clients (4,5) must not share a group.
        let far_group: Vec<_> = g.iter().filter(|grp| grp.contains(&5)).collect();
        assert!(!far_group[0].contains(&4));
    }

    #[test]
    fn validation() {
        assert!(assign_groups(GroupingKind::RoundRobin, 4, 0, None, 0).is_err());
        assert!(assign_groups(GroupingKind::RoundRobin, 4, 5, None, 0).is_err());
        assert!(assign_groups(GroupingKind::ComputeBalanced, 4, 2, None, 0).is_err());
        let costs = vec![
            ClientCost {
                round_time_s: 1.0,
                distance_m: 1.0
            };
            3
        ];
        assert!(assign_groups(GroupingKind::ComputeBalanced, 4, 2, Some(&costs), 0).is_err());
    }

    #[test]
    fn groups_equal_clients_gives_singletons() {
        let g = assign_groups(GroupingKind::RoundRobin, 5, 5, None, 0).unwrap();
        assert!(g.iter().all(|grp| grp.len() == 1));
    }
}
