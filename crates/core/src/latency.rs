//! Latency accounting for every scheme.
//!
//! Two calculators are provided and cross-checked in tests:
//!
//! * **closed-form** expressions for the sequential / embarrassingly
//!   parallel schemes (CL, FL, SL), and
//! * a **discrete-event simulation** (DES) for the schemes with real
//!   concurrency and contention (GSFL, SFL), in which the edge server is a
//!   k-slot FIFO resource and each concurrent transmitter gets a bandwidth
//!   share from the configured [`BandwidthPolicy`].
//!
//! Both calculators consume the wireless layer exclusively through the
//! [`ChannelModel`] trait: each round they take a [`RoundConditions`]
//! snapshot (that round's bandwidth and availability) for the share math
//! and charge per-task times via the trait's per-round queries, so
//! time-varying environments (mobility, diurnal bandwidth, stragglers)
//! plug in without touching this module.
//!
//! On contention-free configurations the DES reproduces the closed forms
//! exactly (see the property tests in `tests/`).

use crate::compression::CompressionSpec;
use crate::recovery::{RecoveryPlan, RoundFate};
use crate::{CoreError, Result};
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;
use gsfl_simnet::{Schedule, SimTime, Simulator, TaskGraph};
use gsfl_wireless::allocation::{allocate, BandwidthPolicy, LinkDemand};
use gsfl_wireless::environment::{ChannelModel, RoundConditions};
use gsfl_wireless::units::{Bytes, Hertz, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the AP's spectrum is assigned to client links.
///
/// * [`ChannelMode::Dedicated`] — OFDMA-style fixed subchannels: every one
///   of the N registered clients owns `B/N` at all times, in every scheme.
///   This is the classic resource-block model of the wireless-FL
///   literature and the default calibration: sequential schemes cannot
///   borrow idle clients' spectrum, so GSFL's group parallelism
///   translates into real communication parallelism.
/// * [`ChannelMode::SharedPool`] — the total bandwidth is dynamically
///   re-split among *currently active* transmitters (one client in SL
///   gets the whole band; GSFL groups share it per the
///   [`BandwidthPolicy`]). An idealized scheduler that favours the
///   sequential baselines; kept for the resource-allocation ablation
///   (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChannelMode {
    /// Fixed per-client OFDMA subchannels (`B/N` each) — default.
    #[default]
    Dedicated,
    /// Dynamic reallocation of the full band among active transmitters.
    SharedPool,
}

/// Per-mini-batch cost profile of a model at a given cut.
///
/// The `*_bytes` fields are the **raw** fp32 footprints of each artifact;
/// the `*_wire_bytes` twins are what actually crosses the air after the
/// configured [`CompressionSpec`] encodes it (equal to the raw fields
/// under the default identity codecs — see
/// [`SplitCosts::with_compression`]). The latency calculators charge
/// transmission time on the wire sizes and report both totals in
/// [`RoundBytes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCosts {
    /// Client-side forward FLOPs per batch.
    pub client_fwd_flops: u64,
    /// Client-side backward FLOPs per batch.
    pub client_bwd_flops: u64,
    /// Server-side forward+backward FLOPs per batch.
    pub server_flops: u64,
    /// Full-model forward+backward FLOPs per batch (FL/CL).
    pub full_flops: u64,
    /// Smashed-data payload per batch (activations + labels), raw fp32.
    pub smashed_bytes: Bytes,
    /// Gradient payload per batch (same tensor shape as the smashed
    /// data), raw fp32.
    pub grad_bytes: Bytes,
    /// Client-side model size, raw fp32.
    pub client_model_bytes: Bytes,
    /// Full-model size (FL), raw fp32.
    pub full_model_bytes: Bytes,
    /// Encoded smashed-data payload per batch (labels always ride
    /// uncompressed).
    pub smashed_wire_bytes: Bytes,
    /// Encoded gradient payload per batch.
    pub grad_wire_bytes: Bytes,
    /// Encoded client-side model size — charged on model *uplinks*
    /// only; downlinks relay the AP's decoded fp32 state and are
    /// charged raw.
    pub client_model_wire_bytes: Bytes,
    /// Encoded full-model size — charged on the FL *upload*; the
    /// broadcast is fp32.
    pub full_model_wire_bytes: Bytes,
}

impl SplitCosts {
    /// Computes the profile for `net` split at `cut`, with `batch`-sized
    /// mini-batches of `sample_dims` inputs.
    ///
    /// # Errors
    ///
    /// Propagates shape or cut errors.
    pub fn compute(
        net: &Sequential,
        cut: usize,
        sample_dims: &[usize],
        batch: usize,
    ) -> Result<Self> {
        let mut input_dims = vec![batch];
        input_dims.extend_from_slice(sample_dims);

        let full = net.flops(&input_dims)?.for_batch(batch);
        let full_model_bytes = Bytes::new(net.param_bytes());

        let split = SplitNetwork::split(net.clone(), cut)?;
        let client_flops = split.client.flops(&input_dims)?.for_batch(batch);
        let smashed_dims = split.client.output_shape(&input_dims)?;
        let server_flops = split.server.flops(&smashed_dims)?.for_batch(batch);
        let smashed_payload = split.smashed_bytes(&input_dims)? + 4 * batch as u64; // + labels
        let client_model_bytes = Bytes::new(split.client.param_bytes());

        Ok(SplitCosts {
            client_fwd_flops: client_flops.forward,
            client_bwd_flops: client_flops.backward,
            server_flops: server_flops.forward + server_flops.backward,
            full_flops: full.forward + full.backward,
            smashed_bytes: Bytes::new(smashed_payload),
            grad_bytes: Bytes::new(smashed_payload - 4 * batch as u64),
            client_model_bytes,
            full_model_bytes,
            smashed_wire_bytes: Bytes::new(smashed_payload),
            grad_wire_bytes: Bytes::new(smashed_payload - 4 * batch as u64),
            client_model_wire_bytes: client_model_bytes,
            full_model_wire_bytes: full_model_bytes,
        })
    }

    /// A copy whose `*_wire_bytes` fields reflect `comp`'s codecs via
    /// the closed-form container size law
    /// ([`gsfl_nn::codec::CodecSpec::encoded_len`]) — cheap enough for planner hot
    /// loops. Raw fields (and therefore compute/storage accounting) are
    /// untouched; identity codecs leave the wire fields bit-identical
    /// to the raw ones. Labels (the difference between `smashed_bytes`
    /// and `grad_bytes`) always travel as 4-byte class ids.
    ///
    /// The law is value-independent and equals the measured `len()` of
    /// a real encode — [`SplitCosts::measured_with_compression`] runs
    /// the actual encoders and a test pins the two equal, so every byte
    /// charged here is the length of a buffer that exists.
    pub fn with_compression(&self, comp: &CompressionSpec) -> SplitCosts {
        let act_numel = (self.grad_bytes.as_u64() / 4) as usize;
        let label_bytes = self.smashed_bytes.as_u64() - self.grad_bytes.as_u64();
        let client_numel = (self.client_model_bytes.as_u64() / 4) as usize;
        let full_numel = (self.full_model_bytes.as_u64() / 4) as usize;
        SplitCosts {
            smashed_wire_bytes: Bytes::new(comp.smashed.encoded_len(act_numel) + label_bytes),
            grad_wire_bytes: Bytes::new(comp.gradient.encoded_len(act_numel)),
            client_model_wire_bytes: Bytes::new(comp.client_model.encoded_len(client_numel)),
            full_model_wire_bytes: Bytes::new(comp.full_model.encoded_len(full_numel)),
            ..*self
        }
    }

    /// Like [`SplitCosts::with_compression`], but each wire size is the
    /// measured `WireBuf::len()` of an actual encode
    /// ([`gsfl_nn::codec::CodecSpec::measured_len`]) rather than the size law. This is
    /// what [`crate::context::TrainContext`] uses when it builds the
    /// costs a run will charge: airtime comes from buffers that
    /// actually exist. The law and the measurement are pinned equal by
    /// tests, so planner loops may keep the cheap form.
    pub fn measured_with_compression(
        &self,
        comp: &CompressionSpec,
        ws: &mut gsfl_tensor::Workspace,
    ) -> SplitCosts {
        let act_numel = (self.grad_bytes.as_u64() / 4) as usize;
        let label_bytes = self.smashed_bytes.as_u64() - self.grad_bytes.as_u64();
        let client_numel = (self.client_model_bytes.as_u64() / 4) as usize;
        let full_numel = (self.full_model_bytes.as_u64() / 4) as usize;
        SplitCosts {
            smashed_wire_bytes: Bytes::new(comp.smashed.measured_len(act_numel, ws) + label_bytes),
            grad_wire_bytes: Bytes::new(comp.gradient.measured_len(act_numel, ws)),
            client_model_wire_bytes: Bytes::new(comp.client_model.measured_len(client_numel, ws)),
            full_model_wire_bytes: Bytes::new(comp.full_model.measured_len(full_numel, ws)),
            ..*self
        }
    }
}

/// Byte counters accumulated by a round-latency computation.
///
/// `up`/`down` are the **encoded** totals — the bytes airtime was
/// actually charged for. `raw_up`/`raw_down` are what the same
/// artifacts would have weighed uncompressed (equal under the identity
/// codecs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundBytes {
    /// Total client→AP bytes on the wire (encoded).
    pub up: u64,
    /// Total AP→client bytes on the wire (encoded).
    pub down: u64,
    /// Uncompressed client→AP bytes.
    pub raw_up: u64,
    /// Uncompressed AP→client bytes.
    pub raw_down: u64,
}

/// Where a round's charged time went, summed over every task in the
/// round (not the critical path — parallel schemes overlap phases, so
/// the components sum to more than the wall-clock duration).
///
/// Attribution rule: time a server-side task spends **queued for a busy
/// edge-server slot is server time**, not uplink time — the uplink
/// finished when the last bit arrived; everything after that is the
/// (per-AP) server's contention. This is what makes multi-AP rounds
/// legible: a congested AP shows up as `server_s`, not as a mysteriously
/// slow radio.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// On-device computation, seconds.
    pub client_compute_s: f64,
    /// Pure client→AP transmit time, seconds.
    pub uplink_s: f64,
    /// Pure AP→client transmit time, seconds.
    pub downlink_s: f64,
    /// Server-side computation **plus** slot-queue waiting, seconds.
    pub server_s: f64,
    /// Second-tier AP→aggregator backhaul transfer time, seconds (zero
    /// unless the environment prices its backhaul — see
    /// [`ChannelModel::backhaul`]).
    pub backhaul_s: f64,
}

impl LatencyBreakdown {
    /// Total charged seconds across all phases.
    pub fn total_s(&self) -> f64 {
        self.client_compute_s + self.uplink_s + self.downlink_s + self.server_s + self.backhaul_s
    }
}

/// Fault accounting of one round. The default — no retries, nothing
/// wasted, nobody lost, quorum met — is what every fault-free round
/// reports, so clean runs stay byte-identical through the serde layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Retransmissions across every wire transfer this round (total
    /// attempts minus first tries).
    pub retries: u64,
    /// Airtime bytes that bought nothing: retransmitted payloads plus
    /// everything charged to clients that crashed mid-round.
    pub wasted_airtime_bytes: u64,
    /// Scheduled clients that delivered no update (crashed without a
    /// backup, or still in flight at the deadline).
    pub lost_clients: u32,
    /// Standby clients that activated for a crashed primary.
    pub backups_activated: u32,
    /// Whether the round met its aggregation quorum (`false` only when a
    /// [`crate::recovery::DeadlinePolicy`] skipped the round).
    pub quorum_met: bool,
}

impl Default for FaultStats {
    fn default() -> Self {
        FaultStats {
            retries: 0,
            wasted_airtime_bytes: 0,
            lost_clients: 0,
            backups_activated: 0,
            quorum_met: true,
        }
    }
}

impl FaultStats {
    /// Whether the round saw no fault activity at all (the identity).
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// The latency (and traffic) of one round of a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundLatency {
    /// Wall-clock duration of the round in simulated seconds.
    pub duration: Seconds,
    /// Bytes moved during the round.
    pub bytes: RoundBytes,
    /// Total client-side energy spent this round (all clients), joules —
    /// radio TX/RX plus on-device computation, per the latency model's
    /// [`gsfl_wireless::energy::PowerProfile`].
    pub client_energy_j: f64,
    /// Per-phase attribution of the round's charged time.
    pub breakdown: LatencyBreakdown,
    /// Fault accounting (all-zero / quorum-met on fault-free rounds).
    pub faults: FaultStats,
}

/// A wire transfer priced through the environment's fault stream:
/// `time` is what the round waits (airtime × attempts + backoff),
/// `air` the radio-active seconds the energy model charges. Both equal
/// the raw airtime bit-for-bit on a clean first-try outcome.
#[derive(Debug, Clone, Copy)]
struct PricedTransfer {
    time: Seconds,
    air: Seconds,
}

/// Per-round transfer pricing: numbers each client's wire transfers
/// sequentially and asks the environment's seeded
/// [`ChannelModel::transfer_outcome`] stream how many attempts each one
/// took, accumulating retry and wasted-airtime stats. On fault-free
/// environments every outcome is the clean first try and the returned
/// times are the input airtimes, bit for bit.
#[derive(Debug, Default)]
struct FaultMeter {
    counters: BTreeMap<usize, u64>,
    retries: u64,
    wasted_airtime_bytes: u64,
}

impl FaultMeter {
    fn price(
        &mut self,
        latency: &dyn ChannelModel,
        client: usize,
        round: u64,
        airtime: Seconds,
        wire: Bytes,
    ) -> PricedTransfer {
        let counter = self.counters.entry(client).or_insert(0);
        let transfer = *counter;
        *counter += 1;
        let outcome = latency.transfer_outcome(client, round, transfer);
        let lost = u64::from(outcome.attempts.max(1)) - 1;
        self.retries += lost;
        self.wasted_airtime_bytes += wire.as_u64() * lost;
        let air = if outcome.attempts <= 1 {
            airtime
        } else {
            Seconds::new(airtime.as_secs_f64() * f64::from(outcome.attempts))
        };
        PricedTransfer {
            time: outcome.total_time(airtime),
            air,
        }
    }

    fn stats(&self, fate: &RoundFate) -> FaultStats {
        FaultStats {
            retries: self.retries,
            wasted_airtime_bytes: self.wasted_airtime_bytes,
            lost_clients: fate.lost(),
            backups_activated: fate.backups_activated,
            quorum_met: true,
        }
    }

    fn waste(&mut self, wire: u64) {
        self.wasted_airtime_bytes += wire;
    }
}

/// Closed-form CL round: one epoch of centralized SGD on the server
/// (one slot), no wireless traffic.
pub fn cl_round(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    total_steps: usize,
) -> RoundLatency {
    let flops = costs.full_flops * total_steps as u64;
    let duration = latency.server_compute(flops);
    RoundLatency {
        duration,
        bytes: RoundBytes::default(),
        client_energy_j: 0.0,
        breakdown: LatencyBreakdown {
            server_s: duration.as_secs_f64(),
            ..LatencyBreakdown::default()
        },
        faults: FaultStats::default(),
    }
}

/// Closed-form FL round: every client downloads the full model, trains
/// `local_epochs` epochs, uploads; all concurrently on equal bandwidth
/// shares; round time is the straggler's. All participants upload
/// concurrently, so under an interference-aware environment every
/// client's uplink sees the rest of the cohort as co-channel
/// interference.
///
/// # Errors
///
/// Propagates wireless model errors.
pub fn fl_round(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    local_epochs: usize,
    round: u64,
) -> Result<RoundLatency> {
    fl_round_planned(latency, costs, steps, local_epochs, round, None)
}

/// [`fl_round`] with an optional per-client bandwidth-share override
/// from an orchestrator's [`crate::orchestrator::RoundPlan`]:
/// `share_fracs[c]` is client `c`'s fraction of the round's total band
/// (entries ≤ 0 fall back to the default equal split). `None` is exactly
/// [`fl_round`].
///
/// # Errors
///
/// Propagates wireless model errors.
pub fn fl_round_planned(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    local_epochs: usize,
    round: u64,
    share_fracs: Option<&[f64]>,
) -> Result<RoundLatency> {
    fl_round_recovered(
        latency,
        costs,
        steps,
        local_epochs,
        round,
        share_fracs,
        &RecoveryPlan::default(),
    )
    .map(|(latency, _)| latency)
}

/// [`fl_round_planned`] under a [`RecoveryPlan`]: mid-compute crashes
/// (from the environment's [`ChannelModel::crash_point`] stream) charge
/// a crashed client its broadcast plus its completed fraction of local
/// work and drop its upload; an assigned backup then re-runs the slot's
/// work on its own channel, serialized after the crash. A deadline
/// truncates the round — in-flight updates at the cutoff are dropped.
/// Returns the per-slot [`RoundFate`] alongside the priced latency;
/// the default plan on a fault-free environment is exactly
/// [`fl_round_planned`].
///
/// # Errors
///
/// Propagates wireless model errors.
#[allow(clippy::too_many_arguments)]
pub fn fl_round_recovered(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    local_epochs: usize,
    round: u64,
    share_fracs: Option<&[f64]>,
    recovery: &RecoveryPlan,
) -> Result<(RoundLatency, RoundFate)> {
    let cond = latency.conditions(round)?;
    // Clients with zero steps are non-participants this round (e.g.
    // unavailable under churn): they neither train nor exchange models.
    let participants: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0)
        .map(|(c, _)| c)
        .collect();
    let n = participants.len().max(1);
    let default_share = cond.bandwidth.fraction(1.0 / n as f64);
    let share_of = |c: usize| match share_fracs {
        Some(f) if f.get(c).copied().unwrap_or(0.0) > 0.0 => cond.bandwidth.fraction(f[c]),
        _ => default_share,
    };
    let power = *latency.power();
    let mut bytes = RoundBytes::default();
    let mut energy = 0.0f64;
    let mut breakdown = LatencyBreakdown::default();
    let mut meter = FaultMeter::default();
    let mut fate = RoundFate {
        planned: participants.clone(),
        ..RoundFate::default()
    };
    // (slot, completion time, delivers-an-update) — the deadline filter
    // runs over this after every path is priced.
    let mut paths: Vec<(usize, Seconds, bool)> = Vec::with_capacity(participants.len());
    for &c in &participants {
        let s = steps[c];
        let share = share_of(c);
        let others: Vec<usize> = participants.iter().copied().filter(|&o| o != c).collect();
        // All participants receive the broadcast concurrently, so the
        // downlink pays SINR against the cohort just like the uplink.
        // The broadcast itself is fp32 — only the *upload* is encoded
        // (the aggregated global is never transcoded, so charging a
        // compressed downlink would save airtime the accuracy never
        // paid for).
        let dl_air =
            latency.downlink_time_among(c, costs.full_model_bytes, round, share, &others)?;
        let dl = meter.price(latency, c, round, dl_air, costs.full_model_bytes);
        let compute_flops = costs.full_flops * (s * local_epochs) as u64;
        let compute = latency.client_compute(c, compute_flops, round)?;
        bytes.down += costs.full_model_bytes.as_u64();
        bytes.raw_down += costs.full_model_bytes.as_u64();
        breakdown.downlink_s += dl.time.as_secs_f64();
        if let Some(f) = latency.crash_point(c, round) {
            // Crash after `f` of the local work: the broadcast and the
            // partial epochs are charged and wasted; the upload never
            // starts.
            fate.crashed.push(c);
            meter.waste(costs.full_model_bytes.as_u64());
            let partial = Seconds::new(compute.as_secs_f64() * f);
            energy += (power.rx_energy(dl.air) + power.compute_energy(partial)).as_joules();
            breakdown.client_compute_s += partial.as_secs_f64();
            let mut done = dl.time + partial;
            let mut delivers = false;
            if let Some(b) = recovery.backup_for(c) {
                // The standby re-runs the slot's work on its own channel,
                // serialized after the crash is detected.
                let b_dl_air = latency.downlink_time_among(
                    b.client,
                    costs.full_model_bytes,
                    round,
                    share_of(b.client),
                    &others,
                )?;
                let b_dl = meter.price(latency, b.client, round, b_dl_air, costs.full_model_bytes);
                let b_flops = costs.full_flops * (b.steps * local_epochs) as u64;
                let b_compute = latency.client_compute(b.client, b_flops, round)?;
                let b_ul_air = latency.uplink_time_among(
                    b.client,
                    costs.full_model_wire_bytes,
                    round,
                    share_of(b.client),
                    &others,
                )?;
                let b_ul = meter.price(
                    latency,
                    b.client,
                    round,
                    b_ul_air,
                    costs.full_model_wire_bytes,
                );
                done = done + b_dl.time + b_compute + b_ul.time;
                bytes.up += costs.full_model_wire_bytes.as_u64();
                bytes.down += costs.full_model_bytes.as_u64();
                bytes.raw_up += costs.full_model_bytes.as_u64();
                bytes.raw_down += costs.full_model_bytes.as_u64();
                energy += (power.rx_energy(b_dl.air)
                    + power.compute_energy(b_compute)
                    + power.tx_energy(b_ul.air))
                .as_joules();
                breakdown.downlink_s += b_dl.time.as_secs_f64();
                breakdown.client_compute_s += b_compute.as_secs_f64();
                breakdown.uplink_s += b_ul.time.as_secs_f64();
                fate.backups_activated += 1;
                delivers = true;
            }
            paths.push((c, done, delivers));
        } else {
            let ul_air =
                latency.uplink_time_among(c, costs.full_model_wire_bytes, round, share, &others)?;
            let ul = meter.price(latency, c, round, ul_air, costs.full_model_wire_bytes);
            bytes.up += costs.full_model_wire_bytes.as_u64();
            bytes.raw_up += costs.full_model_bytes.as_u64();
            energy +=
                (power.rx_energy(dl.air) + power.compute_energy(compute) + power.tx_energy(ul.air))
                    .as_joules();
            breakdown.uplink_s += ul.time.as_secs_f64();
            breakdown.client_compute_s += compute.as_secs_f64();
            paths.push((c, dl.time + compute + ul.time, true));
        }
    }
    // Deadline truncation: an update still in flight at the cutoff is
    // dropped; the server stops waiting at the deadline.
    let mut worst = Seconds::ZERO;
    let mut deadline_hit = false;
    for &(c, done, delivers) in &paths {
        let in_time = recovery.deadline_s.is_none_or(|d| done.as_secs_f64() <= d);
        if delivers && in_time {
            fate.survivors.push(c);
            worst = worst.max(done);
        } else if delivers {
            fate.deadline_dropped.push(c);
            deadline_hit = true;
        }
    }
    if deadline_hit {
        // The server waited out the full deadline for the missing
        // updates before proceeding.
        worst = Seconds::new(recovery.deadline_s.unwrap_or(0.0));
    } else if fate.survivors.is_empty() {
        // Nobody delivered: the round ends when the last partial dies.
        for &(_, done, _) in &paths {
            worst = worst.max(done);
        }
        if let Some(d) = recovery.deadline_s {
            worst = Seconds::new(worst.as_secs_f64().min(d));
        }
    }
    // Two-tier aggregation: each participating AP reduces its cohort
    // locally, then ships one full-model-sized fp32 partial aggregate
    // over its backhaul (free when the environment prices no backhaul).
    let mut aps = Vec::with_capacity(participants.len());
    for &c in &participants {
        aps.push(latency.ap_of(c, round)?);
    }
    let backhaul = backhaul_charge(latency, &aps, costs.full_model_bytes);
    breakdown.backhaul_s += backhaul.charged_s;
    // FedAvg aggregation on the server: one pass over the parameters per
    // client — negligible but charged for honesty.
    let agg = latency.server_compute(costs.full_model_bytes.as_u64() / 4 * n as u64);
    breakdown.server_s += agg.as_secs_f64();
    let faults = meter.stats(&fate);
    Ok((
        RoundLatency {
            duration: worst + backhaul.wall + agg,
            bytes,
            client_energy_j: energy,
            breakdown,
            faults,
        },
        fate,
    ))
}

/// Closed-form SL round: clients train strictly sequentially; after each
/// client the client-side model is relayed to the next client through the
/// AP. Under [`ChannelMode::Dedicated`] each client transmits on its own
/// `B/N` subchannel; under [`ChannelMode::SharedPool`] the single active
/// client enjoys the full band.
///
/// # Errors
///
/// Propagates wireless model errors.
pub fn sl_round(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    order: &[usize],
    mode: ChannelMode,
    round: u64,
) -> Result<RoundLatency> {
    sl_round_planned(latency, costs, steps, order, mode, round, None)
}

/// [`sl_round`] with an optional per-client bandwidth-share override
/// from an orchestrator's [`crate::orchestrator::RoundPlan`]:
/// `share_fracs[c]` is client `c`'s fraction of the round's total band
/// (entries ≤ 0 fall back to the channel-mode default). `None` is
/// exactly [`sl_round`].
///
/// # Errors
///
/// Propagates wireless model errors.
pub fn sl_round_planned(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    order: &[usize],
    mode: ChannelMode,
    round: u64,
    share_fracs: Option<&[f64]>,
) -> Result<RoundLatency> {
    sl_round_recovered(
        latency,
        costs,
        steps,
        order,
        mode,
        round,
        share_fracs,
        &RecoveryPlan::default(),
    )
    .map(|(latency, _)| latency)
}

/// Everything one SL chain segment accumulates into — split out so the
/// primary, its backup and every later client charge through the same
/// code path.
#[derive(Debug, Default)]
struct SlAccumulator {
    total: Seconds,
    bytes: RoundBytes,
    energy: f64,
    breakdown: LatencyBreakdown,
}

/// Prices one client's SL chain segment: model-down, `run_steps`
/// split-training steps, and (unless the client crashes) the model-up
/// handoff. Wire transfers go through the fault meter.
#[allow(clippy::too_many_arguments)]
fn sl_segment(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    c: usize,
    run_steps: usize,
    crashes: bool,
    share: Hertz,
    round: u64,
    meter: &mut FaultMeter,
    acc: &mut SlAccumulator,
) -> Result<()> {
    let power = *latency.power();
    // Model arrives at this client (from the AP relay). The AP
    // decoded the previous client's encoded upload and relays the
    // model onward in fp32, so the downlink is charged raw.
    let model_dl_air = latency.downlink_time(c, costs.client_model_bytes, round, share)?;
    let model_dl = meter.price(latency, c, round, model_dl_air, costs.client_model_bytes);
    acc.total += model_dl.time;
    acc.energy += power.rx_energy(model_dl.air).as_joules();
    acc.bytes.down += costs.client_model_bytes.as_u64();
    acc.bytes.raw_down += costs.client_model_bytes.as_u64();
    acc.breakdown.downlink_s += model_dl.time.as_secs_f64();
    // Split-training steps. SL is strictly sequential — one
    // transmitter at a time — so no co-channel interference applies.
    for _ in 0..run_steps {
        let fwd = latency.client_compute(c, costs.client_fwd_flops, round)?;
        let ul_air = latency.uplink_time(c, costs.smashed_wire_bytes, round, share)?;
        let ul = meter.price(latency, c, round, ul_air, costs.smashed_wire_bytes);
        let dl_air = latency.downlink_time(c, costs.grad_wire_bytes, round, share)?;
        let dl = meter.price(latency, c, round, dl_air, costs.grad_wire_bytes);
        let bwd = latency.client_compute(c, costs.client_bwd_flops, round)?;
        let ap = latency.ap_of(c, round)?;
        let srv = latency.server_compute_at(ap, costs.server_flops);
        acc.total += fwd + ul.time + srv + dl.time + bwd;
        acc.bytes.up += costs.smashed_wire_bytes.as_u64();
        acc.bytes.down += costs.grad_wire_bytes.as_u64();
        acc.bytes.raw_up += costs.smashed_bytes.as_u64();
        acc.bytes.raw_down += costs.grad_bytes.as_u64();
        acc.energy +=
            (power.compute_energy(fwd + bwd) + power.tx_energy(ul.air) + power.rx_energy(dl.air))
                .as_joules();
        acc.breakdown.client_compute_s += (fwd + bwd).as_secs_f64();
        acc.breakdown.uplink_s += ul.time.as_secs_f64();
        acc.breakdown.downlink_s += dl.time.as_secs_f64();
        acc.breakdown.server_s += srv.as_secs_f64();
    }
    if crashes {
        // The client died mid-segment: everything it was charged bought
        // nothing (the AP's last checkpoint — the previous client's
        // upload — carries the chain onward).
        meter.waste(
            costs.client_model_bytes.as_u64()
                + run_steps as u64
                    * (costs.smashed_wire_bytes.as_u64() + costs.grad_wire_bytes.as_u64()),
        );
        return Ok(());
    }
    // Hand the client-side model back to the AP for the next client.
    let model_ul_air = latency.uplink_time(c, costs.client_model_wire_bytes, round, share)?;
    let model_ul = meter.price(
        latency,
        c,
        round,
        model_ul_air,
        costs.client_model_wire_bytes,
    );
    acc.total += model_ul.time;
    acc.energy += power.tx_energy(model_ul.air).as_joules();
    acc.bytes.up += costs.client_model_wire_bytes.as_u64();
    acc.bytes.raw_up += costs.client_model_bytes.as_u64();
    acc.breakdown.uplink_s += model_ul.time.as_secs_f64();
    Ok(())
}

/// [`sl_round_planned`] under a [`RecoveryPlan`]: a crashed client is
/// charged its model download plus its completed split steps (crash
/// after ⌊progress · steps⌋ of them) and never hands the model back —
/// the AP's previous checkpoint carries the chain onward, so the
/// crashed client's contribution is simply lost. An assigned backup
/// then re-runs the slot's full segment on its own channel. A deadline
/// cuts the chain: clients whose segment has not completed by the
/// cutoff are dropped (the one mid-segment at the cutoff keeps its
/// charges; later clients never start). Returns the per-slot
/// [`RoundFate`]; the default plan on a fault-free environment is
/// exactly [`sl_round_planned`].
///
/// # Errors
///
/// Propagates wireless model errors.
#[allow(clippy::too_many_arguments)]
pub fn sl_round_recovered(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    order: &[usize],
    mode: ChannelMode,
    round: u64,
    share_fracs: Option<&[f64]>,
    recovery: &RecoveryPlan,
) -> Result<(RoundLatency, RoundFate)> {
    let cond = latency.conditions(round)?;
    let default_share = match mode {
        ChannelMode::Dedicated => cond.dedicated_share(),
        ChannelMode::SharedPool => cond.bandwidth,
    };
    let share_of = |c: usize| match share_fracs {
        Some(f) if f.get(c).copied().unwrap_or(0.0) > 0.0 => cond.bandwidth.fraction(f[c]),
        _ => default_share,
    };
    let mut meter = FaultMeter::default();
    let mut acc = SlAccumulator::default();
    let mut fate = RoundFate {
        planned: order.to_vec(),
        ..RoundFate::default()
    };
    for &c in order {
        if recovery
            .deadline_s
            .is_some_and(|d| acc.total.as_secs_f64() >= d)
        {
            // The deadline already passed: this client never starts.
            fate.deadline_dropped.push(c);
            continue;
        }
        let mut delivered;
        if let Some(f) = latency.crash_point(c, round) {
            fate.crashed.push(c);
            let done = ((f * steps[c] as f64) as usize).min(steps[c]);
            sl_segment(
                latency,
                costs,
                c,
                done,
                true,
                share_of(c),
                round,
                &mut meter,
                &mut acc,
            )?;
            delivered = false;
            if let Some(b) = recovery.backup_for(c) {
                // The standby re-runs the slot's segment on its own
                // channel, serialized after the crash.
                sl_segment(
                    latency,
                    costs,
                    b.client,
                    b.steps,
                    false,
                    share_of(b.client),
                    round,
                    &mut meter,
                    &mut acc,
                )?;
                fate.backups_activated += 1;
                delivered = true;
            }
        } else {
            sl_segment(
                latency,
                costs,
                c,
                steps[c],
                false,
                share_of(c),
                round,
                &mut meter,
                &mut acc,
            )?;
            delivered = true;
        }
        if delivered {
            if recovery
                .deadline_s
                .is_some_and(|d| acc.total.as_secs_f64() > d)
            {
                // Still mid-segment at the cutoff.
                fate.deadline_dropped.push(c);
            } else {
                fate.survivors.push(c);
            }
        }
    }
    let mut duration = acc.total;
    if let Some(d) = recovery.deadline_s {
        duration = Seconds::new(duration.as_secs_f64().min(d));
    }
    let faults = meter.stats(&fate);
    Ok((
        RoundLatency {
            duration,
            bytes: acc.bytes,
            client_energy_j: acc.energy,
            breakdown: acc.breakdown,
            faults,
        },
        fate,
    ))
}

/// DES-based GSFL round: groups run their sequential chains in parallel;
/// each group's transmissions use a bandwidth share from `policy`; every
/// server-side execution (and the final FedAvg) contends for the slots of
/// the edge server **at the transmitting client's AP** (one DES resource
/// per AP — single-AP environments behave exactly as before). Returns the
/// makespan.
///
/// Concurrency pays a physical price under interference-aware
/// environments: while `m` groups run in parallel, each transmission is
/// charged at the SINR seen against one representative concurrent
/// transmitter per other active group (the member at the same chain
/// position, wrapping), so SharedPool's dynamic reallocation no longer
/// gets its spectrum for free.
///
/// Setting `groups` to singletons yields the SFL (SplitFed) round.
///
/// # Errors
///
/// Propagates wireless/simulation errors.
pub fn gsfl_round(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    mode: ChannelMode,
    round: u64,
) -> Result<RoundLatency> {
    gsfl_round_with_schedule(latency, costs, steps, groups, policy, mode, round)
        .map(|(latency, _)| latency)
}

/// Like [`gsfl_round`], but also returns the full discrete-event
/// [`Schedule`] (per-task spans, resource utilization, Gantt rendering) —
/// useful for tracing where a round's time goes.
///
/// # Errors
///
/// Propagates wireless/simulation errors.
pub fn gsfl_round_with_schedule(
    latency: &dyn ChannelModel,
    costs: &SplitCosts,
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    mode: ChannelMode,
    round: u64,
) -> Result<(RoundLatency, Schedule)> {
    let group_costs = vec![*costs; groups.len()];
    gsfl_round_inner(
        latency,
        &group_costs,
        steps,
        groups,
        policy,
        mode,
        round,
        None,
        &RecoveryPlan::default(),
    )
    .map(|(latency, _, schedule)| (latency, schedule))
}

/// [`gsfl_round`] under an orchestrator's
/// [`crate::orchestrator::RoundPlan`]: per-group cost profiles (hetero
/// cuts give each group its own profile — SplitFed's singleton groups
/// make that per-client) and an optional per-client bandwidth-share
/// override (`share_fracs[c]` = client `c`'s fraction of the total band;
/// entries ≤ 0 fall back to the dedicated share). Uniform costs plus
/// `None` shares is exactly [`gsfl_round`].
///
/// # Errors
///
/// Propagates wireless/simulation errors; `group_costs` must have one
/// entry per group.
#[allow(clippy::too_many_arguments)]
pub fn gsfl_round_planned(
    latency: &dyn ChannelModel,
    group_costs: &[SplitCosts],
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    mode: ChannelMode,
    round: u64,
    share_fracs: Option<&[f64]>,
) -> Result<RoundLatency> {
    gsfl_round_inner(
        latency,
        group_costs,
        steps,
        groups,
        policy,
        mode,
        round,
        share_fracs,
        &RecoveryPlan::default(),
    )
    .map(|(latency, _, _)| latency)
}

/// [`gsfl_round_planned`] under a [`RecoveryPlan`]: a crashed chain
/// member is charged its model download plus its completed split steps,
/// never relays, and the chain re-routes — the AP's last relayed
/// checkpoint (the previous alive member's model) carries onward, so
/// the next member's download simply follows the crash-detection gate,
/// and when the *last* member crashes the group's contribution is the
/// state its last alive member already relayed up (re-priced on that
/// member's channel). An assigned backup instead re-runs the slot's
/// chain position on its own channel. A deadline drops every group
/// whose final upload has not landed by the cutoff. Returns the
/// per-slot [`RoundFate`]; the default plan on a fault-free
/// environment is exactly [`gsfl_round_planned`].
///
/// # Errors
///
/// Propagates wireless/simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn gsfl_round_recovered(
    latency: &dyn ChannelModel,
    group_costs: &[SplitCosts],
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    mode: ChannelMode,
    round: u64,
    share_fracs: Option<&[f64]>,
    recovery: &RecoveryPlan,
) -> Result<(RoundLatency, RoundFate)> {
    gsfl_round_inner(
        latency,
        group_costs,
        steps,
        groups,
        policy,
        mode,
        round,
        share_fracs,
        recovery,
    )
    .map(|(latency, fate, _)| (latency, fate))
}

/// One chain member's split-training steps as DES tasks (forward →
/// smashed-up → server → grad-down → backward per step), charged
/// through the fault meter. Returns the last task, the new chain gate.
#[allow(clippy::too_many_arguments)]
fn gsfl_member_steps(
    latency: &dyn ChannelModel,
    gc: &SplitCosts,
    gi: usize,
    c: usize,
    n_steps: usize,
    interferers: &[usize],
    share: Hertz,
    ap: usize,
    round: u64,
    g: &mut TaskGraph,
    server: gsfl_simnet::ResourceId,
    mut prev: Option<gsfl_simnet::TaskId>,
    meter: &mut FaultMeter,
    bytes: &mut RoundBytes,
    energy: &mut f64,
    breakdown: &mut LatencyBreakdown,
    server_tasks: &mut Vec<(gsfl_simnet::TaskId, gsfl_simnet::TaskId)>,
) -> Result<Option<gsfl_simnet::TaskId>> {
    let power = *latency.power();
    for s in 0..n_steps {
        let fwd_t = latency.client_compute(c, gc.client_fwd_flops, round)?;
        let cf = g.add_task(
            format!("g{gi}/c{c}/fwd{s}"),
            to_sim(fwd_t),
            None,
            prev.as_slice(),
        )?;
        let ul_air =
            latency.uplink_time_among(c, gc.smashed_wire_bytes, round, share, interferers)?;
        let ul_t = meter.price(latency, c, round, ul_air, gc.smashed_wire_bytes);
        let ul = g.add_task(format!("g{gi}/c{c}/up{s}"), to_sim(ul_t.time), None, &[cf])?;
        let srv_t = latency.server_compute_at(ap, gc.server_flops);
        let sv = g.add_task(
            format!("g{gi}/c{c}/srv{s}"),
            to_sim(srv_t),
            Some(server),
            &[ul],
        )?;
        server_tasks.push((sv, ul));
        let dl_air =
            latency.downlink_time_among(c, gc.grad_wire_bytes, round, share, interferers)?;
        let dl_t = meter.price(latency, c, round, dl_air, gc.grad_wire_bytes);
        let dl = g.add_task(
            format!("g{gi}/c{c}/down{s}"),
            to_sim(dl_t.time),
            None,
            &[sv],
        )?;
        let bwd_t = latency.client_compute(c, gc.client_bwd_flops, round)?;
        let cb = g.add_task(format!("g{gi}/c{c}/bwd{s}"), to_sim(bwd_t), None, &[dl])?;
        bytes.up += gc.smashed_wire_bytes.as_u64();
        bytes.down += gc.grad_wire_bytes.as_u64();
        bytes.raw_up += gc.smashed_bytes.as_u64();
        bytes.raw_down += gc.grad_bytes.as_u64();
        *energy += (power.compute_energy(fwd_t + bwd_t)
            + power.tx_energy(ul_t.air)
            + power.rx_energy(dl_t.air))
        .as_joules();
        breakdown.client_compute_s += (fwd_t + bwd_t).as_secs_f64();
        breakdown.uplink_s += ul_t.time.as_secs_f64();
        breakdown.downlink_s += dl_t.time.as_secs_f64();
        breakdown.server_s += srv_t.as_secs_f64();
        prev = Some(cb);
    }
    Ok(prev)
}

#[allow(clippy::too_many_arguments)]
fn gsfl_round_inner(
    latency: &dyn ChannelModel,
    group_costs: &[SplitCosts],
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    mode: ChannelMode,
    round: u64,
    share_fracs: Option<&[f64]>,
    recovery: &RecoveryPlan,
) -> Result<(RoundLatency, RoundFate, Schedule)> {
    let m = groups.len();
    if m == 0 {
        return Err(CoreError::Config("gsfl needs at least one group".into()));
    }
    if group_costs.len() != m {
        return Err(CoreError::Config(format!(
            "gsfl needs one cost profile per group: {} profiles for {m} groups",
            group_costs.len()
        )));
    }
    let cond = latency.conditions(round)?;
    let shares = match share_fracs {
        // Planned shares are per client; the per-group vector is unused.
        Some(_) => vec![Hertz::new(0.0); m],
        None => match mode {
            // Every client owns its B/N subchannel regardless of grouping.
            ChannelMode::Dedicated => vec![cond.dedicated_share(); m],
            // Active groups split the band per the policy.
            ChannelMode::SharedPool => {
                group_shares(latency, &cond, group_costs, steps, groups, policy, round)?
            }
        },
    };
    // The share a member of group `gi` transmits on: its planned
    // fraction of the band when the orchestrator set one, the group's
    // share otherwise.
    let member_share = |gi: usize, c: usize| match share_fracs {
        Some(f) if f.get(c).copied().unwrap_or(0.0) > 0.0 => cond.bandwidth.fraction(f[c]),
        Some(_) => cond.dedicated_share(),
        None => shares[gi],
    };

    let power = *latency.power();
    let mut g = TaskGraph::new();
    // One FIFO resource per AP's edge server; single-AP environments get
    // exactly the one "edge-server" resource they always had.
    let servers: Vec<_> = (0..latency.ap_count())
        .map(|ap| {
            let label = if latency.ap_count() == 1 {
                "edge-server".to_string()
            } else {
                format!("edge-server{ap}")
            };
            g.add_resource(label, latency.server_at(ap).slots())
        })
        .collect();
    // Per surviving group: its end task (the join gate), the slots whose
    // update it carries, and the AP its final state landed on.
    let mut group_records: Vec<(gsfl_simnet::TaskId, Vec<usize>, usize)> = Vec::with_capacity(m);
    let mut bytes = RoundBytes::default();
    let mut energy = 0.0f64;
    let mut breakdown = LatencyBreakdown::default();
    let mut meter = FaultMeter::default();
    let mut fate = RoundFate {
        planned: groups.iter().flatten().copied().collect(),
        ..RoundFate::default()
    };
    // Server-bound tasks with the task whose completion made them ready,
    // so queue wait (start − uplink finish) can be attributed to the
    // server phase after the simulation runs.
    let mut server_tasks = Vec::new();

    for (gi, members) in groups.iter().enumerate() {
        let gc = &group_costs[gi];
        let mut prev: Option<gsfl_simnet::TaskId> = None;
        // The alive member whose trained model has not yet been relayed
        // to the AP, with its chain position (for interferer lookup).
        // `None` after a crash: the AP's newest checkpoint already
        // arrived with the previous relay, so the chain re-routes
        // without a new hop.
        let mut pending: Option<(usize, usize)> = None;
        // Slots whose update the group's final state carries.
        let mut alive: Vec<usize> = Vec::new();
        for (j, &c) in members.iter().enumerate() {
            // While this member transmits, every other active group has a
            // member of its own on the air: charge SINR against the
            // same-position representative of each other group.
            let interferers = co_transmitters(groups, gi, j);
            // Client-model handoff: AP → client (first member receives the
            // freshly aggregated model; later members receive the relay).
            if let Some((from, fj)) = pending.take() {
                let relay_interferers = co_transmitters(groups, gi, fj);
                let relay_air = latency.uplink_time_among(
                    from,
                    gc.client_model_wire_bytes,
                    round,
                    member_share(gi, from),
                    &relay_interferers,
                )?;
                let relay_t =
                    meter.price(latency, from, round, relay_air, gc.client_model_wire_bytes);
                let ul = g.add_task(
                    format!("g{gi}/relay-up{from}"),
                    to_sim(relay_t.time),
                    None,
                    prev.as_slice(),
                )?;
                bytes.up += gc.client_model_wire_bytes.as_u64();
                bytes.raw_up += gc.client_model_bytes.as_u64();
                energy += power.tx_energy(relay_t.air).as_joules();
                breakdown.uplink_s += relay_t.time.as_secs_f64();
                prev = Some(ul);
            }
            // While this member receives, every other active group has a
            // concurrent AP downlink on the air: charge downlink SINR
            // against the same-position representatives. Model
            // downlinks are fp32 (the AP decodes encoded uploads and
            // relays raw — see `fl_round`).
            let model_dl_air = latency.downlink_time_among(
                c,
                gc.client_model_bytes,
                round,
                member_share(gi, c),
                &interferers,
            )?;
            let model_dl_t = meter.price(latency, c, round, model_dl_air, gc.client_model_bytes);
            let dl = g.add_task(
                format!("g{gi}/model-down{c}"),
                to_sim(model_dl_t.time),
                None,
                prev.as_slice(),
            )?;
            bytes.down += gc.client_model_bytes.as_u64();
            bytes.raw_down += gc.client_model_bytes.as_u64();
            energy += power.rx_energy(model_dl_t.air).as_joules();
            breakdown.downlink_s += model_dl_t.time.as_secs_f64();
            prev = Some(dl);

            let ap = latency.ap_of(c, round)?;
            if let Some(f) = latency.crash_point(c, round) {
                // Crash after ⌊f · steps⌋ split steps: the partial chain
                // is charged (and wasted) and the member never relays —
                // the next member resumes from the AP's last checkpoint.
                fate.crashed.push(c);
                let done = ((f * steps[c] as f64) as usize).min(steps[c]);
                prev = gsfl_member_steps(
                    latency,
                    gc,
                    gi,
                    c,
                    done,
                    &interferers,
                    member_share(gi, c),
                    ap,
                    round,
                    &mut g,
                    servers[ap],
                    prev,
                    &mut meter,
                    &mut bytes,
                    &mut energy,
                    &mut breakdown,
                    &mut server_tasks,
                )?;
                meter.waste(
                    gc.client_model_bytes.as_u64()
                        + done as u64
                            * (gc.smashed_wire_bytes.as_u64() + gc.grad_wire_bytes.as_u64()),
                );
                if let Some(b) = recovery.backup_for(c) {
                    // The standby inherits the chain position: fresh
                    // model-down on its own channel, then the full
                    // segment, serialized after the crash is detected.
                    let b_dl_air = latency.downlink_time_among(
                        b.client,
                        gc.client_model_bytes,
                        round,
                        member_share(gi, b.client),
                        &interferers,
                    )?;
                    let b_dl_t =
                        meter.price(latency, b.client, round, b_dl_air, gc.client_model_bytes);
                    let b_dl = g.add_task(
                        format!("g{gi}/backup-down{}", b.client),
                        to_sim(b_dl_t.time),
                        None,
                        prev.as_slice(),
                    )?;
                    bytes.down += gc.client_model_bytes.as_u64();
                    bytes.raw_down += gc.client_model_bytes.as_u64();
                    energy += power.rx_energy(b_dl_t.air).as_joules();
                    breakdown.downlink_s += b_dl_t.time.as_secs_f64();
                    let b_ap = latency.ap_of(b.client, round)?;
                    prev = gsfl_member_steps(
                        latency,
                        gc,
                        gi,
                        b.client,
                        b.steps,
                        &interferers,
                        member_share(gi, b.client),
                        b_ap,
                        round,
                        &mut g,
                        servers[b_ap],
                        Some(b_dl),
                        &mut meter,
                        &mut bytes,
                        &mut energy,
                        &mut breakdown,
                        &mut server_tasks,
                    )?;
                    pending = Some((b.client, j));
                    alive.push(c);
                    fate.backups_activated += 1;
                }
            } else {
                prev = gsfl_member_steps(
                    latency,
                    gc,
                    gi,
                    c,
                    steps[c],
                    &interferers,
                    member_share(gi, c),
                    ap,
                    round,
                    &mut g,
                    servers[ap],
                    prev,
                    &mut meter,
                    &mut bytes,
                    &mut energy,
                    &mut breakdown,
                    &mut server_tasks,
                )?;
                pending = Some((c, j));
                alive.push(c);
            }
        }
        if let Some((last, lj)) = pending {
            // The last alive chain holder ships the group's client-side
            // model to the AP.
            let last_interferers = co_transmitters(groups, gi, lj);
            let agg_ul_air = latency.uplink_time_among(
                last,
                gc.client_model_wire_bytes,
                round,
                member_share(gi, last),
                &last_interferers,
            )?;
            let agg_ul_t =
                meter.price(latency, last, round, agg_ul_air, gc.client_model_wire_bytes);
            let agg_ul = g.add_task(
                format!("g{gi}/agg-up{last}"),
                to_sim(agg_ul_t.time),
                None,
                prev.as_slice(),
            )?;
            bytes.up += gc.client_model_wire_bytes.as_u64();
            bytes.raw_up += gc.client_model_bytes.as_u64();
            energy += power.tx_energy(agg_ul_t.air).as_joules();
            breakdown.uplink_s += agg_ul_t.time.as_secs_f64();
            group_records.push((agg_ul, alive, latency.ap_of(last, round)?));
        } else if let (Some(&held), Some(end)) = (alive.last(), prev) {
            // The tail of the chain crashed after the last alive member
            // already relayed its model up: the AP holds the group's
            // contribution, and the group ends at the crash-detection
            // gate — no extra upload is needed.
            let held_ap = latency.ap_of(held, round)?;
            group_records.push((end, alive, held_ap));
        }
        // Whole group lost: its charged tasks stay in the graph but it
        // contributes nothing to the aggregate.
    }

    // Two-tier aggregation: every AP that hosted a group's final upload
    // reduces its groups locally and ships one partial aggregate (both
    // halves, fp32) over its backhaul before the top-level merge. With
    // no priced backhaul the task graph is exactly the historical
    // single-tier one.
    if !group_records.is_empty() {
        let group_ends: Vec<_> = group_records.iter().map(|(end, _, _)| *end).collect();
        let group_aps: Vec<_> = group_records.iter().map(|(_, _, ap)| *ap).collect();
        let join_inputs = if group_aps.iter().any(|&ap| latency.backhaul(ap).is_some()) {
            // Per-AP partial aggregates carry the widest group's halves
            // (uniform costs make this exactly the historical payload).
            let payload = Bytes::new(
                group_costs
                    .iter()
                    .map(|c| c.client_model_bytes.as_u64() + server_side_bytes(c))
                    .max()
                    .unwrap_or(0),
            );
            let mut per_ap: BTreeMap<usize, Vec<_>> = BTreeMap::new();
            for (&end, &ap) in group_ends.iter().zip(&group_aps) {
                per_ap.entry(ap).or_default().push(end);
            }
            let mut inputs = Vec::new();
            for (ap, ends) in per_ap {
                match latency.backhaul(ap) {
                    Some(link) => {
                        let t = link.transfer_time(payload);
                        let bh = g.add_task(format!("backhaul{ap}"), to_sim(t), None, &ends)?;
                        breakdown.backhaul_s += t.as_secs_f64();
                        inputs.push(bh);
                    }
                    None => inputs.extend(ends),
                }
            }
            inputs
        } else {
            group_ends
        };

        // FedAvg of both halves on the server: one parameter pass per
        // group. Aggregation runs at AP 0's server (the anchor AP that
        // owns the global model).
        let join = g.add_barrier("agg-join", &join_inputs)?;
        // One parameter pass per group (uniform costs reduce to the
        // historical `(client + server) / 4 × m`).
        let agg_flops: u64 = group_costs
            .iter()
            .map(|c| (c.client_model_bytes.as_u64() + server_side_bytes(c)) / 4)
            .sum();
        let agg_t = latency.server_compute_at(0, agg_flops);
        let agg = g.add_task("fedavg", to_sim(agg_t), Some(servers[0]), &[join])?;
        breakdown.server_s += agg_t.as_secs_f64();
        server_tasks.push((agg, join));
    }

    let schedule = Simulator::run(&g)?;
    // Attribute slot-queue waiting to the server phase: a server task
    // becomes ready the instant its uplink (or join) finishes; any gap
    // before it starts is contention at that AP's server.
    for (sv, ready_after) in server_tasks {
        let wait = schedule.start(sv).as_secs_f64() - schedule.finish(ready_after).as_secs_f64();
        if wait > 0.0 {
            breakdown.server_s += wait;
        }
    }
    // Deadline truncation: a group whose final state has not landed by
    // the cutoff is dropped whole (its members' updates never merged).
    for (end, alive, _) in group_records {
        if recovery
            .deadline_s
            .is_none_or(|d| schedule.finish(end).as_secs_f64() <= d)
        {
            fate.survivors.extend(alive);
        } else {
            fate.deadline_dropped.extend(alive);
        }
    }
    let mut duration = Seconds::new(schedule.makespan().as_secs_f64());
    if let Some(d) = recovery.deadline_s {
        duration = Seconds::new(duration.as_secs_f64().min(d));
    }
    let faults = meter.stats(&fate);
    Ok((
        RoundLatency {
            duration,
            bytes,
            client_energy_j: energy,
            breakdown,
            faults,
        },
        fate,
        schedule,
    ))
}

/// One representative concurrent transmitter per other active group, for
/// the member at chain position `j` of group `gi`: the other group's
/// member at the same position (wrapping around shorter chains).
/// Deterministic, and empty when only one group is active — SL-shaped
/// rounds stay interference-free.
fn co_transmitters(groups: &[Vec<usize>], gi: usize, j: usize) -> Vec<usize> {
    groups
        .iter()
        .enumerate()
        .filter(|(h, g)| *h != gi && !g.is_empty())
        .map(|(_, g)| g[j % g.len()])
        .collect()
}

/// Bandwidth share of each group under `policy`, out of the round's
/// available bandwidth. Payloads are the **encoded** wire sizes (that is
/// what occupies the air), and the spectral-efficiency probe is
/// SINR-aware: each member is rated against the same-position
/// representatives of the other groups that will transmit alongside it,
/// so [`BandwidthPolicy::ChannelAware`] co-optimizes shares and
/// interference instead of trusting interference-free rates.
/// Interference-free environments answer the `_among` query identically
/// to the plain one, keeping zero-interference behavior bit-identical.
fn group_shares(
    latency: &dyn ChannelModel,
    cond: &RoundConditions,
    group_costs: &[SplitCosts],
    steps: &[usize],
    groups: &[Vec<usize>],
    policy: BandwidthPolicy,
    round: u64,
) -> Result<Vec<Hertz>> {
    let total = cond.bandwidth;
    let demands: Vec<LinkDemand> = groups
        .iter()
        .enumerate()
        .map(|(gi, members)| {
            let costs = &group_costs[gi];
            // Per-group payload over the round.
            let payload: u64 = members
                .iter()
                .map(|&c| {
                    steps[c] as u64
                        * (costs.smashed_wire_bytes.as_u64() + costs.grad_wire_bytes.as_u64())
                        // Model up is encoded, model down is the fp32
                        // relay (see the round calculators).
                        + costs.client_model_wire_bytes.as_u64()
                        + costs.client_model_bytes.as_u64()
                })
                .sum();
            // Spectral efficiency proxy: mean over members at an equal
            // share, each heard against its concurrent transmitters.
            let probe = total.fraction(1.0 / groups.len() as f64);
            let se = members
                .iter()
                .enumerate()
                .map(|(j, &c)| {
                    let interferers = co_transmitters(groups, gi, j);
                    latency
                        .uplink_rate_bps_among(c, round, probe, &interferers)
                        .map(|r| r / probe.as_hz())
                })
                .collect::<gsfl_wireless::Result<Vec<f64>>>()
                .map(|v| v.iter().sum::<f64>() / v.len().max(1) as f64);
            se.map(|se| LinkDemand {
                payload_bytes: payload,
                spectral_efficiency: se,
            })
        })
        .collect::<gsfl_wireless::Result<Vec<LinkDemand>>>()?;
    Ok(allocate(policy, total, &demands)?)
}

/// The second-tier backhaul charge of one round: the wall-clock cost
/// (per-AP transfers run concurrently, so the slowest AP gates the
/// round) and the summed per-transfer time for breakdown attribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackhaulCharge {
    /// Wall-clock seconds the round waits on the backhaul tier.
    pub wall: Seconds,
    /// Summed transfer seconds across all shipping APs.
    pub charged_s: f64,
}

/// Prices the AP→aggregator tier of a two-tier aggregation: each
/// distinct AP in `aps` ships one `payload`-sized partial aggregate over
/// its [`ChannelModel::backhaul`] link. APs without a priced link ship
/// for free — the historical single-tier behavior, which keeps
/// backhaul-free environments byte-identical.
pub fn backhaul_charge(
    latency: &dyn ChannelModel,
    aps: &[usize],
    payload: Bytes,
) -> BackhaulCharge {
    let mut charge = BackhaulCharge::default();
    let mut seen: Vec<usize> = Vec::new();
    for &ap in aps {
        if seen.contains(&ap) {
            continue;
        }
        seen.push(ap);
        if let Some(link) = latency.backhaul(ap) {
            let t = link.transfer_time(payload);
            charge.wall = charge.wall.max(t);
            charge.charged_s += t.as_secs_f64();
        }
    }
    charge
}

/// The wire size of the server-side model implied by the cost profile:
/// full model minus the client half.
fn server_side_bytes(costs: &SplitCosts) -> u64 {
    costs
        .full_model_bytes
        .as_u64()
        .saturating_sub(costs.client_model_bytes.as_u64())
}

fn to_sim(s: Seconds) -> SimTime {
    SimTime::new(s.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_nn::model::Mlp;
    use gsfl_wireless::device::DeviceProfile;
    use gsfl_wireless::environment::StaticEnvironment;
    use gsfl_wireless::latency::LatencyModel;
    use gsfl_wireless::server::EdgeServer;
    use gsfl_wireless::units::{FlopsRate, Meters};

    fn fixture(slots: usize, clients: usize) -> (StaticEnvironment, SplitCosts) {
        let latency = LatencyModel::builder()
            .clients(clients)
            .fading(false)
            .fixed_distances(vec![Meters::new(50.0); clients])
            .fixed_devices(vec![
                DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap();
                clients
            ])
            .server(EdgeServer::new(FlopsRate::from_gflops(50.0), slots).unwrap())
            .build()
            .unwrap();
        let net = Mlp::new(48, &[32, 32], 5, 0).into_sequential();
        let costs = SplitCosts::compute(&net, 2, &[48], 8).unwrap();
        (StaticEnvironment::new(latency), costs)
    }

    #[test]
    fn split_costs_partition_the_model() {
        let (_, costs) = fixture(1, 1);
        // Client + server flops ≈ full flops (elementwise layers counted
        // once on each side of the cut).
        let split_total = costs.client_fwd_flops + costs.client_bwd_flops + costs.server_flops;
        assert_eq!(split_total, costs.full_flops);
        assert!(costs.client_model_bytes < costs.full_model_bytes);
        assert_eq!(
            costs.smashed_bytes.as_u64(),
            costs.grad_bytes.as_u64() + 4 * 8
        );
    }

    #[test]
    fn sl_round_is_sum_over_clients() {
        let (latency, costs) = fixture(4, 3);
        let steps = vec![2, 2, 2];
        let all = sl_round(
            &latency,
            &costs,
            &steps,
            &[0, 1, 2],
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let one = sl_round(&latency, &costs, &steps, &[0], ChannelMode::Dedicated, 0).unwrap();
        // Identical clients ⇒ three times one client's segment.
        assert!((all.duration.as_secs_f64() - 3.0 * one.duration.as_secs_f64()).abs() < 1e-9);
        assert_eq!(all.bytes.up, 3 * one.bytes.up);
    }

    #[test]
    fn gsfl_single_group_matches_sl_plus_aggregation() {
        let (latency, costs) = fixture(8, 3); // ample slots: no contention
        let steps = vec![2, 2, 2];
        let order = vec![0usize, 1, 2];
        let sl = sl_round(&latency, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
        let gsfl = gsfl_round(
            &latency,
            &costs,
            &steps,
            std::slice::from_ref(&order),
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        // GSFL(M=1) = SL + relay-up of intermediate member + FedAvg compute.
        // The structural difference: SL charges a final uplink per client
        // (already included in both); GSFL additionally runs the fedavg
        // task. So gsfl ≥ sl, within a small aggregation margin.
        let diff = gsfl.duration.as_secs_f64() - sl.duration.as_secs_f64();
        assert!(
            diff >= -1e-9,
            "gsfl {} should not be faster than sl {}",
            gsfl.duration.as_secs_f64(),
            sl.duration.as_secs_f64()
        );
        let agg_margin = 0.2 * sl.duration.as_secs_f64();
        assert!(diff < agg_margin, "aggregation overhead too large: {diff}");
    }

    #[test]
    fn gsfl_parallel_groups_faster_than_sl() {
        let (latency, costs) = fixture(4, 6);
        let steps = vec![2; 6];
        let sl = sl_round(
            &latency,
            &costs,
            &steps,
            &[0, 1, 2, 3, 4, 5],
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let groups = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let gsfl = gsfl_round(
            &latency,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        assert!(
            gsfl.duration.as_secs_f64() < sl.duration.as_secs_f64(),
            "gsfl {} vs sl {}",
            gsfl.duration.as_secs_f64(),
            sl.duration.as_secs_f64()
        );
    }

    #[test]
    fn server_contention_slows_gsfl() {
        let (lat_many, costs) = fixture(6, 6);
        let (lat_one, _) = fixture(1, 6);
        let steps = vec![2; 6];
        let groups: Vec<Vec<usize>> = (0..6).map(|c| vec![c]).collect();
        let wide = gsfl_round(
            &lat_many,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let narrow = gsfl_round(
            &lat_one,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        assert!(narrow.duration.as_secs_f64() > wide.duration.as_secs_f64());
    }

    #[test]
    fn fl_round_is_straggler_bound() {
        let (latency, costs) = fixture(4, 4);
        let fl_fast = fl_round(&latency, &costs, &[1, 1, 1, 1], 1, 0).unwrap();
        let fl_slow = fl_round(&latency, &costs, &[1, 1, 1, 9], 1, 0).unwrap();
        assert!(fl_slow.duration.as_secs_f64() > fl_fast.duration.as_secs_f64());
        // Byte volume is identical: model exchange only.
        assert_eq!(fl_fast.bytes, fl_slow.bytes);
    }

    #[test]
    fn cl_round_scales_with_steps() {
        let (latency, costs) = fixture(4, 1);
        let a = cl_round(&latency, &costs, 10);
        let b = cl_round(&latency, &costs, 20);
        assert!((b.duration.as_secs_f64() / a.duration.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(a.bytes.up, 0);
    }

    #[test]
    fn backhaul_is_free_by_default_and_charged_when_priced() {
        use gsfl_wireless::backhaul::BackhaulLink;
        use gsfl_wireless::multi_ap::MultiApEnvironment;
        let (flat, costs) = fixture(4, 4);
        let fl = fl_round(&flat, &costs, &[1, 1, 1, 1], 1, 0).unwrap();
        assert_eq!(fl.breakdown.backhaul_s, 0.0);
        let build = |link: Option<BackhaulLink>| {
            let latency = LatencyModel::builder()
                .clients(4)
                .fading(false)
                .fixed_distances(vec![Meters::new(50.0); 4])
                .fixed_devices(vec![
                    DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap();
                    4
                ])
                .server(EdgeServer::new(FlopsRate::from_gflops(50.0), 4).unwrap())
                .build()
                .unwrap();
            let mut b = MultiApEnvironment::builder(latency).line(2, 100.0).unwrap();
            if let Some(l) = link {
                b = b.backhaul(l);
            }
            b.build().unwrap()
        };
        let free = build(None);
        let slow_link = BackhaulLink::new(1e6, 0.05).unwrap();
        let tiered = build(Some(slow_link));
        // FL: backhaul extends the round by exactly the wall charge and
        // leaves every other phase untouched.
        let steps = [1usize, 1, 1, 1];
        let fl_free = fl_round(&free, &costs, &steps, 1, 0).unwrap();
        let fl_tiered = fl_round(&tiered, &costs, &steps, 1, 0).unwrap();
        assert_eq!(fl_free.breakdown.backhaul_s, 0.0);
        assert!(fl_tiered.breakdown.backhaul_s > 0.0);
        assert!(fl_tiered.duration.as_secs_f64() > fl_free.duration.as_secs_f64());
        assert_eq!(fl_free.breakdown.uplink_s, fl_tiered.breakdown.uplink_s);
        assert_eq!(fl_free.breakdown.server_s, fl_tiered.breakdown.server_s);
        assert_eq!(fl_free.bytes, fl_tiered.bytes, "backhaul is not airtime");
        // GSFL: the DES gets per-AP backhaul tasks before the merge.
        let groups = vec![vec![0usize, 1], vec![2, 3]];
        let g_free = gsfl_round(
            &free,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let g_tiered = gsfl_round(
            &tiered,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        assert_eq!(g_free.breakdown.backhaul_s, 0.0);
        assert!(g_tiered.breakdown.backhaul_s > 0.0);
        assert!(g_tiered.duration.as_secs_f64() > g_free.duration.as_secs_f64());
    }

    #[test]
    fn backhaul_charge_dedupes_aps_and_takes_the_max() {
        use gsfl_wireless::backhaul::BackhaulLink;
        use gsfl_wireless::multi_ap::MultiApEnvironment;
        let latency = LatencyModel::builder().clients(2).seed(1).build().unwrap();
        let link = BackhaulLink::new(1e6, 0.01).unwrap();
        let env = MultiApEnvironment::builder(latency)
            .line(3, 100.0)
            .unwrap()
            .backhaul(link)
            .build()
            .unwrap();
        let payload = Bytes::new(125_000); // 1 s of serialization at 1 Mb/s
        let per_ap = link.transfer_time(payload).as_secs_f64();
        let one = backhaul_charge(&env, &[1, 1, 1], payload);
        assert!((one.wall.as_secs_f64() - per_ap).abs() < 1e-12);
        assert!(
            (one.charged_s - per_ap).abs() < 1e-12,
            "duplicates ship once"
        );
        let two = backhaul_charge(&env, &[0, 2], payload);
        assert!((two.wall.as_secs_f64() - per_ap).abs() < 1e-12, "parallel");
        assert!((two.charged_s - 2.0 * per_ap).abs() < 1e-12);
        assert_eq!(
            backhaul_charge(&env, &[], payload),
            BackhaulCharge::default()
        );
    }

    #[test]
    fn policies_change_shares_but_not_totals() {
        let (latency, costs) = fixture(4, 4);
        let steps = vec![1, 2, 3, 4];
        let groups = vec![vec![0, 1], vec![2, 3]];
        for policy in [
            BandwidthPolicy::Equal,
            BandwidthPolicy::PayloadWeighted,
            BandwidthPolicy::ChannelAware,
        ] {
            let r = gsfl_round(
                &latency,
                &costs,
                &steps,
                &groups,
                policy,
                ChannelMode::SharedPool,
                0,
            )
            .unwrap();
            assert!(r.duration.as_secs_f64() > 0.0, "{policy:?}");
        }
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use gsfl_nn::model::Mlp;
    use gsfl_wireless::device::DeviceProfile;
    use gsfl_wireless::environment::StaticEnvironment;
    use gsfl_wireless::latency::LatencyModel;
    use gsfl_wireless::server::EdgeServer;
    use gsfl_wireless::units::{FlopsRate, Meters};

    fn fixture(clients: usize) -> (StaticEnvironment, SplitCosts) {
        let latency = LatencyModel::builder()
            .clients(clients)
            .fading(false)
            .fixed_distances(vec![Meters::new(50.0); clients])
            .fixed_devices(vec![
                DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap();
                clients
            ])
            .server(EdgeServer::new(FlopsRate::from_gflops(50.0), 8).unwrap())
            .build()
            .unwrap();
        let net = Mlp::new(48, &[32, 32], 5, 0).into_sequential();
        let costs = SplitCosts::compute(&net, 2, &[48], 8).unwrap();
        (StaticEnvironment::new(latency), costs)
    }

    #[test]
    fn cl_round_costs_no_client_energy() {
        let (latency, costs) = fixture(2);
        assert_eq!(cl_round(&latency, &costs, 5).client_energy_j, 0.0);
    }

    #[test]
    fn sl_and_gsfl_client_energy_match() {
        // Same client work, reordered: group parallelism must not change
        // the total client-side energy (modulo the extra relay structure,
        // which is identical under round-robin chains).
        let (latency, costs) = fixture(6);
        let steps = vec![2usize; 6];
        let order: Vec<usize> = (0..6).collect();
        let sl = sl_round(&latency, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
        let gsfl = gsfl_round(
            &latency,
            &costs,
            &steps,
            &[vec![0, 1, 2], vec![3, 4, 5]],
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let rel = (sl.client_energy_j - gsfl.client_energy_j).abs() / sl.client_energy_j;
        assert!(
            rel < 0.02,
            "sl {} vs gsfl {}",
            sl.client_energy_j,
            gsfl.client_energy_j
        );
        assert!(sl.client_energy_j > 0.0);
    }

    #[test]
    fn fl_energy_scales_with_local_epochs() {
        let (latency, costs) = fixture(4);
        let steps = vec![3usize; 4];
        let one = fl_round(&latency, &costs, &steps, 1, 0).unwrap();
        let three = fl_round(&latency, &costs, &steps, 3, 0).unwrap();
        assert!(three.client_energy_j > one.client_energy_j);
        // Comms are identical, so the delta is pure compute energy.
        assert!(three.client_energy_j < 3.0 * one.client_energy_j);
    }

    #[test]
    fn energy_is_affine_in_steps() {
        // energy(s) = fixed_relay_overhead + s * per_step, so equal step
        // increments add equal energy increments.
        let (latency, costs) = fixture(3);
        let order: Vec<usize> = (0..3).collect();
        let at = |steps: usize| {
            sl_round(
                &latency,
                &costs,
                &[steps; 3],
                &order,
                ChannelMode::Dedicated,
                0,
            )
            .unwrap()
            .client_energy_j
        };
        let (e1, e2, e4) = (at(1), at(2), at(4));
        assert!(e2 > e1 && e4 > e2);
        let per_step = e2 - e1;
        assert!(
            (e4 - e2 - 2.0 * per_step).abs() < 1e-6 * e4,
            "not affine: e1={e1} e2={e2} e4={e4}"
        );
    }
}
