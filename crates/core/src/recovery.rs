//! Fault-tolerant round execution: deadlines, quorum aggregation and
//! backup cohorts.
//!
//! The wireless layer injects faults (lost transfers, mid-compute
//! crashes, AP outages — see [`gsfl_wireless::fault`]); this module is
//! where the *training protocol* reacts to them:
//!
//! * [`DeadlinePolicy`] truncates a round at a wall-clock deadline and
//!   requires a minimum fraction of the scheduled cohort to deliver an
//!   update before the server aggregates (`min_quorum_frac`). A quorum
//!   miss skips the round: it is recorded, charged its wall-clock time,
//!   and the global model is left unchanged.
//! * [`RecoverySpec::backups`] over-provisions the cohort: up to that
//!   many standby clients are assigned to primaries, and a backup
//!   activates only when its primary crashes before completing its
//!   upload — the backup re-runs the slot's work on its own channel and
//!   the slot's update still arrives.
//! * [`RoundFate`] is the per-round verdict the latency calculators
//!   return alongside the priced [`crate::latency::RoundLatency`]: who
//!   was scheduled, who delivered, who crashed, who missed the deadline.
//!   Schemes train exactly the survivors and aggregate over them with
//!   re-normalized weights ([`quorum_weights`]).
//!
//! Everything here is deterministic: crashes come from the environment's
//! seeded [`ChannelModel::crash_point`] stream, and backup sampling uses
//! the population's `"backups"` seed stream — results are invariant to
//! host thread count.

use crate::config::ExperimentConfig;
use crate::{CoreError, Result};
use gsfl_wireless::environment::ChannelModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A wall-clock round deadline with a quorum requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    /// The round is truncated at this many simulated seconds: clients
    /// whose update has not fully arrived by then are dropped from the
    /// aggregate.
    pub deadline_s: f64,
    /// Minimum fraction of the scheduled cohort that must deliver an
    /// update for the round to aggregate, in `(0, 1]`. Below it the
    /// round is skipped and the global model is left unchanged.
    pub min_quorum_frac: f64,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy {
            deadline_s: 60.0,
            min_quorum_frac: 0.5,
        }
    }
}

impl DeadlinePolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for a non-positive or non-finite
    /// deadline, or a quorum fraction outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.deadline_s.is_finite() || self.deadline_s <= 0.0 {
            return Err(CoreError::Config(format!(
                "deadline_s must be a positive finite number of seconds, got {}",
                self.deadline_s
            )));
        }
        if !self.min_quorum_frac.is_finite()
            || self.min_quorum_frac <= 0.0
            || self.min_quorum_frac > 1.0
        {
            return Err(CoreError::Config(format!(
                "min_quorum_frac must be in (0, 1], got {}",
                self.min_quorum_frac
            )));
        }
        Ok(())
    }
}

/// How an experiment recovers from mid-round faults. The default — no
/// deadline, no backups — prices faults into latency but never drops a
/// delivered update, which keeps fault-free runs byte-identical to the
/// pre-recovery code.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Optional round deadline + quorum requirement.
    #[serde(default)]
    pub deadline: Option<DeadlinePolicy>,
    /// How many standby clients are provisioned per round. A backup
    /// activates only when a primary crashes before completing its
    /// upload; in population mode backups are extra members sampled from
    /// the population, in dense mode they are available clients the
    /// cohort cap left out.
    #[serde(default)]
    pub backups: usize,
}

impl RecoverySpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`DeadlinePolicy::validate`].
    pub fn validate(&self) -> Result<()> {
        if let Some(d) = &self.deadline {
            d.validate()?;
        }
        Ok(())
    }

    /// Whether the spec changes nothing (the identity default).
    pub fn is_noop(&self) -> bool {
        self.deadline.is_none() && self.backups == 0
    }
}

/// One activated standby: `client` re-runs crashed `slot`'s work on its
/// own channel, serialized after the crash, so the slot's update still
/// arrives (late). In population mode the backup is a fresh member that
/// physically replaces the primary, so `client == slot` and only the
/// training data differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupAssignment {
    /// The crashed primary's cohort slot.
    pub slot: usize,
    /// The client whose channel and device price the re-run.
    pub client: usize,
    /// Mini-batch steps the backup runs (its own shard's step count).
    pub steps: usize,
}

/// What the latency calculators need to know to price recovery: the
/// optional deadline and which crashed slots have an assigned backup.
/// [`RecoveryPlan::default`] (no deadline, no backups) is the identity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryPlan {
    /// Wall-clock deadline in seconds, when a [`DeadlinePolicy`] is set.
    pub deadline_s: Option<f64>,
    /// Activated backups, at most one per crashed slot.
    pub backups: Vec<BackupAssignment>,
}

impl RecoveryPlan {
    /// The backup assigned to crashed `slot`, if any.
    pub fn backup_for(&self, slot: usize) -> Option<&BackupAssignment> {
        self.backups.iter().find(|b| b.slot == slot)
    }
}

/// The per-round verdict of a fault-aware latency calculation: which
/// scheduled slots delivered an update and which were lost, and why.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundFate {
    /// The slots scheduled into the round, in participation order.
    pub planned: Vec<usize>,
    /// Slots whose update arrived in time (backup-covered slots
    /// included), in participation order — the aggregation set.
    pub survivors: Vec<usize>,
    /// Slots whose primary crashed mid-round (with or without a backup).
    pub crashed: Vec<usize>,
    /// Slots whose update was still in flight at the deadline.
    pub deadline_dropped: Vec<usize>,
    /// How many standby clients actually activated.
    pub backups_activated: u32,
}

impl RoundFate {
    /// A fate where every planned slot survives (the fault-free case).
    pub fn all_survive(planned: Vec<usize>) -> Self {
        RoundFate {
            survivors: planned.clone(),
            planned,
            ..RoundFate::default()
        }
    }

    /// Slots that were scheduled but delivered nothing.
    pub fn lost(&self) -> u32 {
        (self.planned.len() - self.survivors.len()) as u32
    }

    /// Whether the survivor fraction meets `min_quorum_frac`. Vacuously
    /// true for an empty schedule.
    pub fn quorum_met(&self, min_quorum_frac: f64) -> bool {
        if self.planned.is_empty() {
            return true;
        }
        let frac = self.survivors.len() as f64 / self.planned.len() as f64;
        frac >= min_quorum_frac - 1e-12
    }

    /// Whether `slot` delivered an update.
    pub fn survived(&self, slot: usize) -> bool {
        self.survivors.contains(&slot)
    }
}

/// Re-normalized aggregation weights over a survivor set: `weights[i]`
/// is survivor `i`'s share of the aggregate, always summing to 1 (the
/// FedAvg weights the server would have used, conditioned on who
/// actually delivered). Empty input gives empty output.
pub fn quorum_weights(survivor_samples: &[usize]) -> Vec<f64> {
    if survivor_samples.is_empty() {
        return Vec::new();
    }
    let total: usize = survivor_samples.iter().sum();
    if total == 0 {
        // Degenerate survivor set: fall back to a uniform split.
        let w = 1.0 / survivor_samples.len() as f64;
        return vec![w; survivor_samples.len()];
    }
    survivor_samples
        .iter()
        .map(|&s| s as f64 / total as f64)
        .collect()
}

/// Per-round recovery state a scheme threads through its round loop:
/// the priced [`RecoveryPlan`], plus the training-side substitutions
/// (which client trains a backup-covered slot, and on what data).
#[derive(Debug, Clone, Default)]
pub struct RoundRecovery {
    /// What the latency calculators price.
    pub plan: RecoveryPlan,
    /// Population-mode backup members occupying a slot this round
    /// (slot → replacement member id). Dense-mode backups train their
    /// own shard and need no override.
    pub member_overrides: BTreeMap<usize, u64>,
    min_quorum_frac: Option<f64>,
}

impl RoundRecovery {
    /// Prepares the round's recovery plan: detects crashed primaries
    /// from the environment's seeded crash stream and assigns up to
    /// `spec.backups` standbys to them. `admitted` is the round's
    /// scheduled cohort (participation order); `spare_clients` are dense
    /// clients available this round but left out of the cohort (backup
    /// candidates); `population_backups` are extra member ids sampled
    /// from the population (used instead of spares in population mode).
    pub fn prepare(
        config: &ExperimentConfig,
        env: &dyn ChannelModel,
        admitted: &[usize],
        spare_clients: &[usize],
        population_backups: &[u64],
        steps_of: impl Fn(usize) -> usize,
        round: u64,
    ) -> Self {
        let spec = &config.recovery;
        let mut plan = RecoveryPlan {
            deadline_s: spec.deadline.map(|d| d.deadline_s),
            backups: Vec::new(),
        };
        let mut member_overrides = BTreeMap::new();
        if spec.backups > 0 {
            let crashed: Vec<usize> = admitted
                .iter()
                .copied()
                .filter(|&c| env.crash_point(c, round).is_some())
                .collect();
            if !crashed.is_empty() {
                if population_backups.is_empty() {
                    // Dense mode: standbys are available clients the
                    // cohort cap excluded; skip ones that would
                    // themselves crash.
                    let mut spares = spare_clients
                        .iter()
                        .copied()
                        .filter(|&b| env.crash_point(b, round).is_none());
                    for &slot in crashed.iter().take(spec.backups) {
                        if let Some(b) = spares.next() {
                            plan.backups.push(BackupAssignment {
                                slot,
                                client: b,
                                steps: steps_of(b),
                            });
                        }
                    }
                } else {
                    // Population mode: a fresh member physically replaces
                    // the primary in its slot (same channel position,
                    // different data).
                    for (&slot, &member) in
                        crashed.iter().zip(population_backups).take(spec.backups)
                    {
                        plan.backups.push(BackupAssignment {
                            slot,
                            client: slot,
                            steps: steps_of(slot),
                        });
                        member_overrides.insert(slot, member);
                    }
                }
            }
        }
        RoundRecovery {
            plan,
            member_overrides,
            min_quorum_frac: spec.deadline.map(|d| d.min_quorum_frac),
        }
    }

    /// Whether the round's survivor set clears the configured quorum.
    /// Always true without a [`DeadlinePolicy`] — unless *nobody*
    /// delivered, which no scheme can aggregate.
    pub fn quorum_met(&self, fate: &RoundFate) -> bool {
        match self.min_quorum_frac {
            Some(q) => fate.quorum_met(q),
            None => fate.planned.is_empty() || !fate.survivors.is_empty(),
        }
    }

    /// The client that trains `slot`'s update this round: the assigned
    /// backup when the primary crashed, the slot itself otherwise.
    pub fn trainee_for(&self, slot: usize) -> usize {
        self.plan.backup_for(slot).map_or(slot, |b| b.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop_and_valid() {
        let spec = RecoverySpec::default();
        assert!(spec.is_noop());
        spec.validate().unwrap();
        let round = RecoveryPlan::default();
        assert_eq!(round.deadline_s, None);
        assert!(round.backups.is_empty());
    }

    #[test]
    fn deadline_validation_rejects_bad_values() {
        for (d, q) in [
            (0.0, 0.5),
            (-1.0, 0.5),
            (f64::NAN, 0.5),
            (10.0, 0.0),
            (10.0, 1.5),
            (10.0, f64::NAN),
        ] {
            let p = DeadlinePolicy {
                deadline_s: d,
                min_quorum_frac: q,
            };
            assert!(p.validate().is_err(), "({d}, {q}) must be rejected");
        }
        DeadlinePolicy::default().validate().unwrap();
    }

    #[test]
    fn quorum_weights_sum_to_one() {
        let w = quorum_weights(&[10, 30, 60]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.6).abs() < 1e-12);
        assert!(quorum_weights(&[]).is_empty());
        let degenerate = quorum_weights(&[0, 0]);
        assert!((degenerate.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fate_quorum_and_loss_accounting() {
        let fate = RoundFate {
            planned: vec![0, 1, 2, 3],
            survivors: vec![0, 2],
            crashed: vec![1],
            deadline_dropped: vec![3],
            backups_activated: 0,
        };
        assert_eq!(fate.lost(), 2);
        assert!(fate.quorum_met(0.5));
        assert!(!fate.quorum_met(0.75));
        assert!(fate.survived(2) && !fate.survived(3));
        assert!(RoundFate::default().quorum_met(1.0), "vacuous quorum");
        let clean = RoundFate::all_survive(vec![4, 7]);
        assert_eq!(clean.lost(), 0);
        assert!(clean.quorum_met(1.0));
    }
}
