//! Sparse client populations: 1k→1M configured clients in O(cohort) memory.
//!
//! The paper evaluates N ≤ 60 clients, where it is fine to materialize
//! every client eagerly (a data shard, an environment slot, a steps
//! entry each). At population scale that breaks: 1M clients × a shard
//! each is gigabytes before the first round starts, even though a round
//! only ever touches the sampled cohort.
//!
//! This module flips the representation: a [`Population`] stores clients
//! as **(seed, metadata) only** — a configured count plus a derivation
//! root — and per-round participation sampling materializes a *cohort*
//! of exactly `config.clients` slots. Everything downstream (wireless
//! environment, grouping, latency accounting, step vectors) is sized to
//! the cohort, never to the configured population:
//!
//! * [`Population::sample_cohort`] draws the round's cohort — a uniform
//!   sample without replacement of global client ids — with Floyd's
//!   algorithm: O(cohort) time and memory regardless of the configured
//!   population size, deterministic in (seed, round), and independent of
//!   host thread count because it is a single sequential pass.
//! * [`Population::materialize_member`] realizes one sampled client's
//!   data shard on demand from the shared training pool, seeded by the
//!   client's global id — the same client always sees the same data, and
//!   unsampled clients never allocate anything.
//! * [`CowParams`] shares round-start model state copy-on-write: cloning
//!   is one `Arc` reference bump, and the underlying parameters are
//!   copied only when (and if) a holder first writes. A cohort fanning
//!   out over worker threads starts from one parameter buffer instead of
//!   N full clones.
//!
//! Because every materialized shard has the same length
//! ([`Population::shard_len`]), per-slot step counts are constant across
//! rounds — init-time step vectors stay valid and only the shard
//! *contents* change per round.

use crate::{CoreError, Result};
use gsfl_data::dataset::ImageDataset;
use gsfl_nn::params::ParamVec;
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a sparse client population (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Configured population size: how many clients *exist*. Must be at
    /// least the cohort capacity (`ExperimentConfig::clients`); only the
    /// sampled cohort is ever materialized, so this can be millions.
    pub clients: u64,
    /// Training samples drawn (with replacement, bootstrap-style) from
    /// the shared pool for each materialized cohort member. `0` (the
    /// default) splits the pool evenly: `pool_len / cohort`, min 1.
    #[serde(default)]
    pub samples_per_client: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            clients: 100_000,
            samples_per_client: 0,
        }
    }
}

/// A sparse client population: clients exist only as (seed, metadata)
/// until [`Population::sample_cohort`] materializes a round's cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Population {
    seed: u64,
    clients: u64,
    cohort: usize,
    samples_per_client: usize,
}

impl Population {
    /// Builds a population of `spec.clients` sparse clients whose rounds
    /// materialize cohorts of exactly `cohort` slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when the configured population is
    /// empty or smaller than the cohort.
    pub fn new(spec: &PopulationConfig, cohort: usize, seed: u64) -> Result<Self> {
        if cohort == 0 {
            return Err(CoreError::Config("population cohort must be ≥ 1".into()));
        }
        if spec.clients < cohort as u64 {
            return Err(CoreError::Config(format!(
                "population of {} clients cannot fill a cohort of {cohort}",
                spec.clients
            )));
        }
        Ok(Population {
            seed,
            clients: spec.clients,
            cohort,
            samples_per_client: spec.samples_per_client,
        })
    }

    /// How many clients are configured to exist.
    pub fn configured_clients(&self) -> u64 {
        self.clients
    }

    /// How many clients a round materializes.
    pub fn cohort_size(&self) -> usize {
        self.cohort
    }

    /// The derived seed that is client `member`'s entire persistent
    /// state — its data shard (and any future per-client randomness) is
    /// regenerated from this on demand.
    pub fn member_seed(&self, member: u64) -> u64 {
        SeedDerive::new(self.seed)
            .child("member")
            .index(member)
            .seed()
    }

    /// Samples the round's cohort: `cohort_size` distinct global client
    /// ids from `0..configured_clients`, ascending. Floyd's algorithm —
    /// O(cohort) draws and memory however large the population is — run
    /// as one sequential pass, so the result depends only on
    /// (population seed, round), never on host thread count.
    pub fn sample_cohort(&self, round: u64) -> Vec<u64> {
        let n = self.clients;
        let k = self.cohort as u64;
        let mut rng = SeedDerive::new(self.seed)
            .child("cohort")
            .index(round)
            .rng();
        // Kept sorted: every candidate j exceeds all prior insertions, and
        // replacement draws binary-search their slot.
        let mut chosen: Vec<u64> = Vec::with_capacity(self.cohort);
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            match chosen.binary_search(&t) {
                Ok(_) => chosen.push(j),
                Err(pos) => chosen.insert(pos, t),
            }
        }
        chosen
    }

    /// Samples up to `k` standby members for `round`: distinct global
    /// client ids outside the round's cohort, drawn from a dedicated
    /// `"backups"` stream by rejection against the (sorted) cohort.
    /// Deterministic in (population seed, round) and independent of
    /// whether any backup ever activates. Returns fewer than `k` only
    /// when the population has fewer than `cohort + k` clients.
    pub fn sample_backups(&self, round: u64, k: usize) -> Vec<u64> {
        let spare = (self.clients - self.cohort as u64) as usize;
        let k = k.min(spare);
        if k == 0 {
            return Vec::new();
        }
        let cohort = self.sample_cohort(round);
        let mut rng = SeedDerive::new(self.seed)
            .child("backups")
            .index(round)
            .rng();
        let mut chosen: Vec<u64> = Vec::with_capacity(k);
        while chosen.len() < k {
            let m = rng.gen_range(0..self.clients);
            if cohort.binary_search(&m).is_ok() || chosen.contains(&m) {
                continue;
            }
            chosen.push(m);
        }
        chosen
    }

    /// Shard length every materialized member trains on, given the shared
    /// pool's size (see [`PopulationConfig::samples_per_client`]).
    pub fn shard_len(&self, pool_len: usize) -> usize {
        if self.samples_per_client > 0 {
            self.samples_per_client
        } else {
            (pool_len / self.cohort).max(1)
        }
    }

    /// Materializes client `member`'s data shard from the shared pool: a
    /// bootstrap draw seeded by the member's global id, so the same
    /// client always regenerates the same shard and unsampled clients
    /// cost nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an empty pool; propagates
    /// dataset gather errors.
    pub fn materialize_member(&self, member: u64, pool: &ImageDataset) -> Result<ImageDataset> {
        if pool.is_empty() {
            return Err(CoreError::Config(
                "population materialization needs a non-empty training pool".into(),
            ));
        }
        let len = self.shard_len(pool.len());
        let mut rng = SeedDerive::new(self.member_seed(member))
            .child("data")
            .rng();
        let mut indices = Vec::with_capacity(len);
        for _ in 0..len {
            indices.push(rng.gen_range(0..pool.len()));
        }
        Ok(pool.subset(&indices)?)
    }

    /// Materializes every member of a sampled cohort, in slot order.
    ///
    /// # Errors
    ///
    /// Propagates [`Population::materialize_member`] errors.
    pub fn materialize_cohort(
        &self,
        members: &[u64],
        pool: &ImageDataset,
    ) -> Result<Vec<ImageDataset>> {
        members
            .iter()
            .map(|&m| self.materialize_member(m, pool))
            .collect()
    }
}

/// Copy-on-write model parameters: every clone is one `Arc` bump that
/// shares the underlying buffer until a holder first writes
/// ([`CowParams::make_mut`]), which is when — and only when — the
/// parameters are actually copied. Dereferences to [`ParamVec`] for all
/// read access.
///
/// # Example
///
/// ```
/// use gsfl_core::population::CowParams;
/// use gsfl_nn::params::ParamVec;
///
/// let round_start = CowParams::new(ParamVec::from_values(vec![1.0, 2.0]));
/// let mut worker = round_start.clone(); // Arc bump, no copy
/// assert!(worker.shares_storage_with(&round_start));
/// worker.make_mut().values_mut()[0] = 9.0; // first write copies
/// assert!(!worker.shares_storage_with(&round_start));
/// assert_eq!(round_start.values(), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CowParams {
    inner: Arc<ParamVec>,
}

impl CowParams {
    /// Wraps parameters as shared round-start state.
    pub fn new(params: ParamVec) -> Self {
        CowParams {
            inner: Arc::new(params),
        }
    }

    /// Read access without copying (also available through `Deref`).
    pub fn get(&self) -> &ParamVec {
        &self.inner
    }

    /// Write access: copies the underlying parameters first if any other
    /// holder still shares them (`Arc::make_mut`).
    pub fn make_mut(&mut self) -> &mut ParamVec {
        Arc::make_mut(&mut self.inner)
    }

    /// Replaces the shared state with freshly aggregated parameters;
    /// other holders keep the old buffer alive until they drop.
    pub fn replace(&mut self, params: ParamVec) {
        self.inner = Arc::new(params);
    }

    /// Whether two handles still share one underlying buffer.
    pub fn shares_storage_with(&self, other: &CowParams) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Consumes the handle; returns the parameters without copying when
    /// this was the last holder (e.g. to recycle the dead buffer into a
    /// [`gsfl_tensor::workspace::Workspace`]), `None` when still shared.
    pub fn into_inner(self) -> Option<ParamVec> {
        Arc::try_unwrap(self.inner).ok()
    }
}

impl std::ops::Deref for CowParams {
    type Target = ParamVec;

    fn deref(&self) -> &ParamVec {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_data::synth::SynthGtsrb;

    fn pop(clients: u64, cohort: usize) -> Population {
        Population::new(
            &PopulationConfig {
                clients,
                samples_per_client: 0,
            },
            cohort,
            42,
        )
        .unwrap()
    }

    fn pool() -> ImageDataset {
        SynthGtsrb::builder()
            .classes(3)
            .samples_per_class(8)
            .image_size(8)
            .seed(7)
            .generate()
            .unwrap()
    }

    #[test]
    fn cohort_is_distinct_sorted_and_deterministic() {
        let p = pop(1_000_000, 64);
        let a = p.sample_cohort(3);
        let b = p.sample_cohort(3);
        assert_eq!(a, b, "same (seed, round) must give the same cohort");
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending and distinct");
        assert!(a.iter().all(|&m| m < 1_000_000));
        assert_ne!(a, p.sample_cohort(4), "rounds draw different cohorts");
        let other = Population::new(
            &PopulationConfig {
                clients: 1_000_000,
                samples_per_client: 0,
            },
            64,
            43,
        )
        .unwrap();
        assert_ne!(a, other.sample_cohort(3), "seeds draw different cohorts");
    }

    #[test]
    fn backups_are_distinct_and_outside_cohort() {
        let p = pop(1_000, 64);
        let cohort = p.sample_cohort(5);
        let a = p.sample_backups(5, 8);
        assert_eq!(a, p.sample_backups(5, 8), "deterministic in (seed, round)");
        assert_eq!(a.len(), 8);
        for &b in &a {
            assert!(b < 1_000);
            assert!(!cohort.contains(&b), "backup {b} collides with cohort");
        }
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "backups must be distinct");
        assert_ne!(a, p.sample_backups(6, 8), "rounds draw different backups");
        // A population with no spare clients yields no backups.
        assert!(pop(16, 16).sample_backups(0, 4).is_empty());
    }

    #[test]
    fn full_population_cohort_is_everyone() {
        let p = pop(16, 16);
        assert_eq!(p.sample_cohort(0), (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn member_shards_are_deterministic_and_bounded() {
        let p = pop(1_000_000, 4);
        let pool = pool();
        let a = p.materialize_member(987_654, &pool).unwrap();
        let b = p.materialize_member(987_654, &pool).unwrap();
        assert_eq!(a, b, "same member must regenerate the same shard");
        assert_eq!(a.len(), p.shard_len(pool.len()));
        assert_eq!(p.shard_len(pool.len()), 24 / 4);
        let c = p.materialize_member(123, &pool).unwrap();
        assert_ne!(a.labels(), c.labels(), "members draw their own data");
    }

    #[test]
    fn explicit_samples_per_client_wins() {
        let p = Population::new(
            &PopulationConfig {
                clients: 100,
                samples_per_client: 5,
            },
            10,
            1,
        )
        .unwrap();
        let pool = pool();
        assert_eq!(p.materialize_member(0, &pool).unwrap().len(), 5);
    }

    #[test]
    fn invalid_populations_are_rejected() {
        let spec = PopulationConfig {
            clients: 3,
            samples_per_client: 0,
        };
        assert!(Population::new(&spec, 4, 0).is_err(), "cohort > population");
        assert!(Population::new(&spec, 0, 0).is_err(), "empty cohort");
        assert!(Population::new(&spec, 3, 0).is_ok());
    }

    #[test]
    fn cow_shares_until_first_write() {
        let base = CowParams::new(ParamVec::from_values(vec![1.0, 2.0, 3.0]));
        let mut fork = base.clone();
        assert!(fork.shares_storage_with(&base));
        assert_eq!(fork.values(), base.values());
        fork.make_mut().values_mut()[1] = -2.0;
        assert!(!fork.shares_storage_with(&base));
        assert_eq!(base.values(), &[1.0, 2.0, 3.0], "original untouched");
        assert_eq!(fork.values(), &[1.0, -2.0, 3.0]);
        // Unique holders unwrap without copying; shared ones do not.
        assert!(fork.into_inner().is_some());
        let still_shared = base.clone();
        assert!(base.into_inner().is_none());
        assert_eq!(still_shared.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn replace_detaches_other_holders() {
        let mut global = CowParams::new(ParamVec::from_values(vec![0.0]));
        let worker = global.clone();
        global.replace(ParamVec::from_values(vec![5.0]));
        assert_eq!(worker.values(), &[0.0], "old round state stays alive");
        assert_eq!(global.values(), &[5.0]);
        assert!(!global.shares_storage_with(&worker));
    }
}
