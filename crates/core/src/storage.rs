//! Server-side storage accounting.
//!
//! The paper's core motivation for grouping (§I): a naive hybrid of FL and
//! SL equips *every client* with its own server-side model, so the edge
//! server stores N replicas; GSFL stores only M (one per group). This
//! module quantifies that.

use crate::scheme::SchemeKind;

/// Bytes of model state resident on the edge server for a scheme.
///
/// * CL — the full model (and the pooled dataset, not counted here),
/// * FL — the global full model,
/// * SL — one server-side model,
/// * SFL — one server-side model **per client**,
/// * GSFL — one server-side model **per group** plus the aggregated one.
pub fn server_storage_bytes(
    kind: SchemeKind,
    clients: usize,
    groups: usize,
    server_side_bytes: u64,
    full_model_bytes: u64,
) -> u64 {
    match kind {
        SchemeKind::Centralized | SchemeKind::Federated => full_model_bytes,
        SchemeKind::VanillaSplit => server_side_bytes,
        SchemeKind::SplitFed => server_side_bytes * clients as u64,
        SchemeKind::Gsfl => server_side_bytes * groups as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsfl_stores_m_replicas_sfl_stores_n() {
        let sfl = server_storage_bytes(SchemeKind::SplitFed, 30, 6, 1000, 5000);
        let gsfl = server_storage_bytes(SchemeKind::Gsfl, 30, 6, 1000, 5000);
        let sl = server_storage_bytes(SchemeKind::VanillaSplit, 30, 6, 1000, 5000);
        assert_eq!(sfl, 30_000);
        assert_eq!(gsfl, 6_000);
        assert_eq!(sl, 1_000);
        assert!(gsfl < sfl);
    }

    #[test]
    fn fl_and_cl_store_full_model() {
        assert_eq!(
            server_storage_bytes(SchemeKind::Federated, 30, 6, 1000, 5000),
            5000
        );
        assert_eq!(
            server_storage_bytes(SchemeKind::Centralized, 30, 6, 1000, 5000),
            5000
        );
    }
}
