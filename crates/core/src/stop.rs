//! Pluggable stopping policies for training sessions.
//!
//! A [`StopPolicy`] observes every finished [`RoundRecord`] of a session
//! and may halt the run with a [`StopReason`]. Policies replace the old
//! hardcoded `target_accuracy` check: the equivalent behavior is
//! [`TargetAccuracy`], and richer experiment protocols — wall-clock
//! budgets in *simulated* seconds, round budgets, loss-plateau detection —
//! compose through [`CompositePolicy`].

use crate::results::RoundRecord;

/// Why a session stopped before exhausting its configured rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopReason {
    /// Test accuracy reached the target fraction.
    TargetAccuracy {
        /// The round at which the target was hit.
        round: usize,
        /// The accuracy that met the target.
        accuracy: f64,
    },
    /// The per-session round budget was exhausted.
    RoundBudget {
        /// The budget that was exhausted.
        rounds: usize,
    },
    /// Cumulative *simulated* latency crossed the budget.
    LatencyBudget {
        /// The configured budget in simulated seconds.
        limit_s: f64,
        /// Cumulative simulated seconds when the budget tripped.
        cumulative_s: f64,
    },
    /// Training loss stopped improving.
    LossPlateau {
        /// The round at which the plateau was declared.
        round: usize,
        /// Rounds without sufficient improvement.
        stalled_rounds: usize,
    },
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::TargetAccuracy { round, accuracy } => write!(
                f,
                "target accuracy reached at round {round} ({:.1}%)",
                accuracy * 100.0
            ),
            StopReason::RoundBudget { rounds } => {
                write!(f, "round budget of {rounds} exhausted")
            }
            StopReason::LatencyBudget {
                limit_s,
                cumulative_s,
            } => write!(
                f,
                "simulated-latency budget of {limit_s:.1}s exhausted ({cumulative_s:.1}s elapsed)"
            ),
            StopReason::LossPlateau {
                round,
                stalled_rounds,
            } => write!(
                f,
                "loss plateau at round {round} ({stalled_rounds} rounds without improvement)"
            ),
        }
    }
}

/// Decides, after every finished round, whether a session should stop.
///
/// Policies are stateful (e.g. plateau detection tracks the best loss
/// seen) and are consumed by one session each.
pub trait StopPolicy: Send {
    /// Observes a finished round; `Some(reason)` halts the session after
    /// this round's record is kept.
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason>;
}

/// Never stops early; the session runs its configured rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverStop;

impl StopPolicy for NeverStop {
    fn observe(&mut self, _record: &RoundRecord) -> Option<StopReason> {
        None
    }
}

/// Stops once an evaluation round reaches the target accuracy (fraction
/// in `[0,1]`) — the policy equivalent of the old config-level
/// `target_accuracy` early stop.
#[derive(Debug, Clone, Copy)]
pub struct TargetAccuracy {
    /// The target fraction.
    pub target: f64,
}

impl TargetAccuracy {
    /// A policy stopping at `target` (fraction in `[0,1]`).
    pub fn new(target: f64) -> Self {
        TargetAccuracy { target }
    }
}

impl StopPolicy for TargetAccuracy {
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason> {
        match record.test_accuracy {
            Some(acc) if acc >= self.target => Some(StopReason::TargetAccuracy {
                round: record.round,
                accuracy: acc,
            }),
            _ => None,
        }
    }
}

/// Stops after `rounds` finished rounds, regardless of the session's
/// configured round count.
#[derive(Debug, Clone, Copy)]
pub struct RoundBudget {
    /// Maximum rounds to run.
    pub rounds: usize,
}

impl RoundBudget {
    /// A policy stopping after `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        RoundBudget { rounds }
    }
}

impl StopPolicy for RoundBudget {
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason> {
        (record.round >= self.rounds).then_some(StopReason::RoundBudget {
            rounds: self.rounds,
        })
    }
}

/// Stops once the cumulative *simulated* latency reaches `limit_s`
/// seconds — e.g. "train for at most one simulated hour of edge time".
#[derive(Debug, Clone, Copy)]
pub struct LatencyBudget {
    /// Budget in simulated seconds.
    pub limit_s: f64,
}

impl LatencyBudget {
    /// A policy with a budget of `limit_s` simulated seconds.
    pub fn new(limit_s: f64) -> Self {
        LatencyBudget { limit_s }
    }
}

impl StopPolicy for LatencyBudget {
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason> {
        (record.cumulative_latency_s >= self.limit_s).then_some(StopReason::LatencyBudget {
            limit_s: self.limit_s,
            cumulative_s: record.cumulative_latency_s,
        })
    }
}

/// Stops when the training loss has not improved by at least `min_delta`
/// for `patience` consecutive rounds.
#[derive(Debug, Clone, Copy)]
pub struct LossPlateau {
    /// Rounds without improvement before stopping.
    pub patience: usize,
    /// Minimum loss decrease that counts as improvement.
    pub min_delta: f64,
    best: f64,
    stalled: usize,
}

impl LossPlateau {
    /// A plateau detector with the given patience and minimum delta.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        LossPlateau {
            patience,
            min_delta,
            best: f64::INFINITY,
            stalled: 0,
        }
    }
}

impl StopPolicy for LossPlateau {
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason> {
        if record.train_loss < self.best - self.min_delta {
            self.best = record.train_loss;
            self.stalled = 0;
            return None;
        }
        self.stalled += 1;
        (self.stalled >= self.patience).then_some(StopReason::LossPlateau {
            round: record.round,
            stalled_rounds: self.stalled,
        })
    }
}

/// Combines policies: the first member to trip stops the session.
#[derive(Default)]
pub struct CompositePolicy {
    members: Vec<Box<dyn StopPolicy>>,
}

impl CompositePolicy {
    /// An empty composite (never stops).
    pub fn new() -> Self {
        CompositePolicy::default()
    }

    /// A composite over the given members.
    pub fn any(members: Vec<Box<dyn StopPolicy>>) -> Self {
        CompositePolicy { members }
    }

    /// Adds a member policy.
    pub fn push(&mut self, policy: Box<dyn StopPolicy>) {
        self.members.push(policy);
    }

    /// Builder-style [`CompositePolicy::push`].
    #[must_use]
    pub fn with(mut self, policy: Box<dyn StopPolicy>) -> Self {
        self.push(policy);
        self
    }
}

impl StopPolicy for CompositePolicy {
    fn observe(&mut self, record: &RoundRecord) -> Option<StopReason> {
        self.members.iter_mut().find_map(|p| p.observe(record))
    }
}

impl std::fmt::Debug for CompositePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompositePolicy({} members)", self.members.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, cumulative_s: f64, loss: f64, acc: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            round_latency_s: 1.0,
            cumulative_latency_s: cumulative_s,
            train_loss: loss,
            test_accuracy: acc,
            bytes_up: 0,
            bytes_down: 0,
            bytes_up_raw: 0,
            bytes_down_raw: 0,
            client_energy_j: 0.0,
            retries: 0,
            wasted_airtime_bytes: 0,
            lost_clients: 0,
            backups_activated: 0,
            quorum_met: true,
        }
    }

    #[test]
    fn target_accuracy_waits_for_eval_rounds() {
        let mut p = TargetAccuracy::new(0.8);
        assert_eq!(p.observe(&record(1, 1.0, 2.0, None)), None);
        assert_eq!(p.observe(&record(2, 2.0, 1.0, Some(0.7))), None);
        assert!(matches!(
            p.observe(&record(3, 3.0, 0.5, Some(0.85))),
            Some(StopReason::TargetAccuracy { round: 3, .. })
        ));
    }

    #[test]
    fn round_budget_counts_rounds() {
        let mut p = RoundBudget::new(2);
        assert_eq!(p.observe(&record(1, 1.0, 1.0, None)), None);
        assert!(p.observe(&record(2, 2.0, 1.0, None)).is_some());
    }

    #[test]
    fn latency_budget_uses_simulated_time() {
        let mut p = LatencyBudget::new(10.0);
        assert_eq!(p.observe(&record(1, 4.0, 1.0, None)), None);
        assert_eq!(p.observe(&record(2, 9.99, 1.0, None)), None);
        assert!(matches!(
            p.observe(&record(3, 12.5, 1.0, None)),
            Some(StopReason::LatencyBudget { cumulative_s, .. }) if cumulative_s == 12.5
        ));
    }

    #[test]
    fn plateau_requires_consecutive_stalls() {
        let mut p = LossPlateau::new(2, 0.01);
        assert_eq!(p.observe(&record(1, 1.0, 1.0, None)), None); // best = 1.0
        assert_eq!(p.observe(&record(2, 2.0, 0.999, None)), None); // stall 1
        assert_eq!(p.observe(&record(3, 3.0, 0.5, None)), None); // improves
        assert_eq!(p.observe(&record(4, 4.0, 0.5, None)), None); // stall 1
        assert!(matches!(
            p.observe(&record(5, 5.0, 0.5, None)),
            Some(StopReason::LossPlateau {
                round: 5,
                stalled_rounds: 2
            })
        ));
    }

    #[test]
    fn composite_takes_first_trip() {
        let mut p = CompositePolicy::new()
            .with(Box::new(LatencyBudget::new(100.0)))
            .with(Box::new(RoundBudget::new(3)));
        assert_eq!(p.observe(&record(1, 1.0, 1.0, None)), None);
        assert!(matches!(
            p.observe(&record(3, 3.0, 1.0, None)),
            Some(StopReason::RoundBudget { rounds: 3 })
        ));
    }

    #[test]
    fn never_stop_never_stops() {
        let mut p = NeverStop;
        for r in 1..100 {
            assert_eq!(p.observe(&record(r, r as f64, 0.0, Some(1.0))), None);
        }
    }
}
