//! Property-based tests for the core scheme machinery: grouping
//! invariants, latency monotonicity, DES-vs-closed-form agreement, and
//! population-scale tree aggregation / cohort sampling.

use gsfl_core::aggregate::{aggregate_snapshots, aggregate_tree};
use gsfl_core::compression::CompressionSpec;
use gsfl_core::config::GroupingKind;
use gsfl_core::grouping::{assign_groups, ClientCost};
use gsfl_core::latency::{gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl_core::orchestrator::{
    codec_menu, validate_plan, BanditPlan, GreedyJoint, Orchestrator, PlanQuery, StaticPlan,
};
use gsfl_core::population::{Population, PopulationConfig};
use gsfl_nn::model::Mlp;
use gsfl_nn::params::ParamVec;
use gsfl_tensor::rng::SeedDerive;
use gsfl_tensor::workspace::Workspace;
use gsfl_wireless::allocation::BandwidthPolicy;
use gsfl_wireless::device::DeviceProfile;
use gsfl_wireless::environment::{ChannelModel, StaticEnvironment};
use gsfl_wireless::latency::LatencyModel;
use gsfl_wireless::server::EdgeServer;
use gsfl_wireless::units::{FlopsRate, Meters};
use proptest::prelude::*;

fn model(clients: usize, slots: usize, seed: u64) -> StaticEnvironment {
    StaticEnvironment::new(
        LatencyModel::builder()
            .clients(clients)
            .seed(seed)
            .server(EdgeServer::new(FlopsRate::from_gflops(10.0), slots).unwrap())
            .build()
            .unwrap(),
    )
}

fn costs() -> SplitCosts {
    let net = Mlp::new(64, &[32], 5, 0).into_sequential();
    SplitCosts::compute(&net, 2, &[64], 4).unwrap()
}

/// A cheap upper estimate of the optimal makespan for the Graham-bound
/// check: OPT ≤ any feasible schedule; greedy-by-load (LPT itself) is
/// feasible, so use the analytic bound lower·(1 + max/total) which always
/// dominates OPT for these instances.
fn makespan_opt_upper(costs: &[ClientCost], groups: usize, lower: f64) -> f64 {
    let max_cost = costs.iter().map(|c| c.round_time_s).fold(0.0, f64::max);
    let _ = groups;
    lower + max_cost
}

/// Every orchestrator implementation, queried over random fleet sizes,
/// seeds and rounds, must emit a plan that passes `validate_plan`: cut ∈
/// candidates, per-client cuts ∈ candidates, shares finite/non-negative
/// summing to ≤ 1 with positive entries for active participants, cohort
/// within the participant count.
fn orchestrator_plan_is_feasible(
    clients: usize,
    seed: u64,
    round: u64,
    epsilon: f64,
) -> std::result::Result<(), TestCaseError> {
    let env = model(clients, 4, seed);
    let net = Mlp::new(48, &[24, 16], 5, 0).into_sequential();
    let candidates: Vec<usize> = (1..net.depth()).collect();
    let costs: std::collections::BTreeMap<usize, SplitCosts> = candidates
        .iter()
        .map(|&cut| (cut, SplitCosts::compute(&net, cut, &[48], 4).unwrap()))
        .collect();
    let menu = codec_menu(&CompressionSpec::default());
    let steps = vec![2usize; clients];
    let participants: Vec<usize> = (0..clients).collect();
    let bandit = BanditPlan::new(epsilon, seed);
    let greedy = GreedyJoint::new();
    let planners: [(&str, &dyn Orchestrator); 3] = [
        ("static", &StaticPlan),
        ("greedy", &greedy),
        ("bandit", &bandit),
    ];
    for (name, planner) in planners {
        // Ask across a few consecutive rounds so stateful planners
        // (greedy hysteresis, bandit untried-first sweep) are exercised
        // past their first decision.
        for r in round..round + 4 {
            let cond = env.conditions(r).unwrap();
            let q = PlanQuery {
                round: r,
                default_cut: candidates[0],
                candidates: &candidates,
                costs: &costs,
                codec_menu: &menu,
                conditions: &cond,
                env: &env,
                steps: &steps,
                participants: &participants,
            };
            let plan = planner.plan(&q);
            prop_assert!(
                validate_plan(&plan, &q).is_ok(),
                "{name} round {r}: infeasible plan {plan:?}"
            );
            planner.observe(r, &plan, 1.0 + (r as f64));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn orchestrators_emit_feasible_plans(
        clients in 2usize..10,
        seed in 0u64..100,
        round in 0u64..20,
        epsilon in 0.0f64..=1.0,
    ) {
        orchestrator_plan_is_feasible(clients, seed, round, epsilon)?;
    }

    #[test]
    fn grouping_is_exact_cover(
        clients in 1usize..40,
        groups in 1usize..10,
        seed in 0u64..100,
        kind_idx in 0usize..4,
    ) {
        prop_assume!(groups <= clients);
        let kind = [
            GroupingKind::RoundRobin,
            GroupingKind::Random,
            GroupingKind::ComputeBalanced,
            GroupingKind::ChannelAware,
        ][kind_idx];
        let costs: Vec<ClientCost> = (0..clients)
            .map(|i| ClientCost {
                round_time_s: 1.0 + (i as f64 * 0.7) % 5.0,
                distance_m: 10.0 + (i as f64 * 13.0) % 150.0,
            })
            .collect();
        let assignment = assign_groups(kind, clients, groups, Some(&costs), seed).unwrap();
        let mut seen = vec![false; clients];
        for g in &assignment {
            prop_assert!(!g.is_empty());
            for &c in g {
                prop_assert!(!seen[c]);
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lpt_satisfies_grahams_bound(
        clients in 4usize..24,
        groups in 2usize..6,
        seed in 0u64..200,
    ) {
        prop_assume!(groups <= clients);
        let costs: Vec<ClientCost> = (0..clients)
            .map(|i| {
                let x = ((i as u64 + seed) * 2654435761 % 1000) as f64;
                ClientCost { round_time_s: 0.5 + x / 200.0, distance_m: 50.0 }
            })
            .collect();
        let makespan = |assignment: &[Vec<usize>]| -> f64 {
            assignment
                .iter()
                .map(|g| g.iter().map(|&c| costs[c].round_time_s).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let lpt = assign_groups(GroupingKind::ComputeBalanced, clients, groups, Some(&costs), seed).unwrap();
        // Classic lower bounds on the optimal makespan.
        let total: f64 = costs.iter().map(|c| c.round_time_s).sum();
        let max_cost = costs.iter().map(|c| c.round_time_s).fold(0.0, f64::max);
        let lower = (total / groups as f64).max(max_cost);
        let got = makespan(&lpt);
        prop_assert!(got >= lower - 1e-9, "below the optimum lower bound");
        // Graham: LPT ≤ (4/3 − 1/(3m)) · OPT; with OPT ≥ lower this gives a
        // checkable upper bound.
        let graham = (4.0 / 3.0 - 1.0 / (3.0 * groups as f64)) * makespan_opt_upper(&costs, groups, lower);
        prop_assert!(got <= graham + 1e-9, "LPT {got:.3} violates Graham bound {graham:.3}");
    }

    #[test]
    fn sl_round_monotone_in_steps(
        seed in 0u64..100,
        base_steps in 1usize..5,
    ) {
        let latency = model(4, 4, seed);
        let costs = costs();
        let order: Vec<usize> = (0..4).collect();
        let less = sl_round(&latency, &costs, &[base_steps; 4], &order, ChannelMode::Dedicated, 0).unwrap();
        let more = sl_round(&latency, &costs, &[base_steps + 1; 4], &order, ChannelMode::Dedicated, 0).unwrap();
        prop_assert!(more.duration.as_secs_f64() > less.duration.as_secs_f64());
        prop_assert!(more.bytes.up > less.bytes.up);
    }

    #[test]
    fn gsfl_round_never_beats_ideal_parallelism(
        seed in 0u64..100,
        m in 1usize..6,
    ) {
        // GSFL with M groups can never be more than M× faster than the
        // single-group chain over the same clients (no superlinear wins).
        let clients = 12;
        let latency = model(clients, 16, seed);
        let costs = costs();
        let steps = vec![2usize; clients];
        let single: Vec<Vec<usize>> = vec![(0..clients).collect()];
        let grouped: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..clients).filter(|c| c % m == g).collect())
            .collect();
        let one = gsfl_round(&latency, &costs, &steps, &single, BandwidthPolicy::Equal, ChannelMode::Dedicated, 0).unwrap();
        let many = gsfl_round(&latency, &costs, &steps, &grouped, BandwidthPolicy::Equal, ChannelMode::Dedicated, 0).unwrap();
        let speedup = one.duration.as_secs_f64() / many.duration.as_secs_f64();
        prop_assert!(speedup <= m as f64 + 1e-6, "superlinear speedup {speedup} at M={m}");
        prop_assert!(speedup >= 0.95, "grouping made things much slower: {speedup}");
    }

    #[test]
    fn round_latency_deterministic_per_round_index(
        seed in 0u64..100,
        round in 0u64..50,
    ) {
        let latency = model(6, 4, seed);
        let costs = costs();
        let steps = vec![2usize; 6];
        let groups: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let a = gsfl_round(&latency, &costs, &steps, &groups, BandwidthPolicy::Equal, ChannelMode::Dedicated, round).unwrap();
        let b = gsfl_round(&latency, &costs, &steps, &groups, BandwidthPolicy::Equal, ChannelMode::Dedicated, round).unwrap();
        prop_assert_eq!(a.duration, b.duration);
        prop_assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn faster_devices_never_slow_a_round(
        seed in 0u64..50,
    ) {
        let costs = costs();
        let steps = vec![3usize; 6];
        let order: Vec<usize> = (0..6).collect();
        let slow = StaticEnvironment::new(LatencyModel::builder()
            .clients(6)
            .seed(seed)
            .fixed_devices(vec![DeviceProfile::new(FlopsRate::from_gflops(0.2)).unwrap(); 6])
            .fixed_distances(vec![Meters::new(80.0); 6])
            .fading(false)
            .build()
            .unwrap());
        let fast = StaticEnvironment::new(LatencyModel::builder()
            .clients(6)
            .seed(seed)
            .fixed_devices(vec![DeviceProfile::new(FlopsRate::from_gflops(2.0)).unwrap(); 6])
            .fixed_distances(vec![Meters::new(80.0); 6])
            .fading(false)
            .build()
            .unwrap());
        let t_slow = sl_round(&slow, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
        let t_fast = sl_round(&fast, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
        prop_assert!(t_fast.duration.as_secs_f64() < t_slow.duration.as_secs_f64());
    }

    #[test]
    fn tree_reduction_is_bitwise_flat_for_any_partition(
        n in 1usize..7,
        dim in 1usize..32,
        seed in 0u64..1000,
        ap_mod in 1usize..5,
    ) {
        // The two-tier AP reduction must be bit-identical to the flat
        // FedAvg whatever the AP assignment and whatever order the
        // cohort's snapshots arrive in.
        use rand::seq::SliceRandom;
        use rand::Rng;
        let mut rng = SeedDerive::new(seed).child("tree-prop").rng();
        let mut contributors: Vec<(ParamVec, f64, usize)> = (0..n)
            .map(|_| {
                let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                (
                    ParamVec::from_values(values),
                    rng.gen_range(0.1f64..4.0),
                    rng.gen_range(0..ap_mod),
                )
            })
            .collect();
        // An arbitrary cohort order — both reductions see the same one.
        contributors.shuffle(&mut rng);
        let snaps: Vec<ParamVec> = contributors.iter().map(|c| c.0.clone()).collect();
        let weights: Vec<f64> = contributors.iter().map(|c| c.1).collect();
        let aps: Vec<usize> = contributors.iter().map(|c| c.2).collect();
        let flat = aggregate_snapshots(&snaps, &weights).unwrap();
        let mut ws = Workspace::new();
        let tree = aggregate_tree(&snaps, &weights, &aps, &mut ws).unwrap();
        let flat_bits: Vec<u32> = flat.values().iter().map(|v| v.to_bits()).collect();
        let tree_bits: Vec<u32> = tree.params.values().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(flat_bits, tree_bits);
        // Every contributor is counted under exactly one AP.
        prop_assert_eq!(tree.shares.iter().map(|s| s.members).sum::<usize>(), n);
        prop_assert!(tree.shares.windows(2).all(|w| w[0].ap < w[1].ap));
    }

    #[test]
    fn cohort_sampling_is_deterministic_and_thread_invariant(
        seed in 0u64..500,
        round in 0u64..50,
        cohort in 1usize..24,
        extra in 0u64..1_000_000,
    ) {
        let spec = PopulationConfig {
            clients: cohort as u64 + extra,
            samples_per_client: 0,
        };
        let pop = Population::new(&spec, cohort, seed).unwrap();
        let base = pop.sample_cohort(round);
        prop_assert_eq!(base.len(), cohort);
        prop_assert!(base.windows(2).all(|w| w[0] < w[1]), "distinct ascending ids");
        prop_assert!(base.iter().all(|&m| m < spec.clients));
        // Sampling is a pure function of (seed, round): whichever thread
        // calls it — and however many call concurrently — the cohort is
        // identical.
        for threads in [1usize, 2, 4] {
            let results: Vec<Vec<u64>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| s.spawn(|| pop.sample_cohort(round)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in &results {
                prop_assert_eq!(r, &base);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Re-normalized survivor weights are a probability distribution:
    // non-negative and summing to 1 for any non-empty survivor set —
    // including the degenerate all-zero-samples case, which falls back
    // to a uniform split.
    #[test]
    fn quorum_weights_sum_to_one(
        samples in proptest::collection::vec(0usize..10_000, 1..64),
    ) {
        let w = gsfl_core::recovery::quorum_weights(&samples);
        prop_assert_eq!(w.len(), samples.len());
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }
}
