//! Criterion benchmarks of FedAvg aggregation — the per-round server-side
//! cost that grows with the number of groups/clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsfl_nn::params::{fed_avg, ParamVec};
use std::hint::black_box;

fn bench_fed_avg(c: &mut Criterion) {
    let mut group = c.benchmark_group("fed_avg");
    let dim = 50_000usize; // ≈ the harness CNN's parameter count
    for replicas in [2usize, 6, 30] {
        let models: Vec<ParamVec> = (0..replicas)
            .map(|r| {
                ParamVec::from_values((0..dim).map(|i| ((i + r) as f32).sin()).collect())
            })
            .collect();
        let weights = vec![1.0f64; replicas];
        group.bench_with_input(
            BenchmarkId::new("replicas", replicas),
            &replicas,
            |b, _| {
                b.iter(|| fed_avg(black_box(&models), black_box(&weights)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_snapshot_load(c: &mut Criterion) {
    use gsfl_nn::model::Mlp;
    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    c.bench_function("paramvec_snapshot", |b| {
        b.iter(|| ParamVec::from_network(black_box(&net)));
    });
    let snap = ParamVec::from_network(&net);
    let mut target = Mlp::new(768, &[128, 64], 43, 1).into_sequential();
    c.bench_function("paramvec_load", |b| {
        b.iter(|| snap.load_into(black_box(&mut target)).unwrap());
    });
}

criterion_group!(benches, bench_fed_avg, bench_snapshot_load);
criterion_main!(benches);
