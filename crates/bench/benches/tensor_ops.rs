//! Criterion micro-benchmarks of the tensor substrate: the kernels whose
//! throughput bounds the whole training harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsfl_tensor::conv::conv2d_forward;
use gsfl_tensor::matmul::{matmul, matmul_at_b};
use gsfl_tensor::pool::maxpool2d_forward;
use gsfl_tensor::Tensor;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for size in [32usize, 64, 128] {
        let a = Tensor::from_fn(&[size, size], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[size, size], |i| (i as f32).cos());
        group.bench_with_input(BenchmarkId::new("square", size), &size, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    // The dense-layer backward shape: dW = dYᵀ · X.
    let x = Tensor::from_fn(&[16, 256], |i| (i as f32).sin());
    let dy = Tensor::from_fn(&[16, 64], |i| (i as f32).cos());
    group.bench_function("at_b_dense_backward", |bench| {
        bench.iter(|| matmul_at_b(black_box(&dy), black_box(&x)).unwrap());
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    for (label, ch_in, ch_out, hw) in [("3to8@16", 3usize, 8usize, 16usize), ("8to16@8", 8, 16, 8)] {
        let input = Tensor::from_fn(&[16, ch_in, hw, hw], |i| (i as f32 % 7.0) * 0.1);
        let weight = Tensor::from_fn(&[ch_out, ch_in, 3, 3], |i| (i as f32 % 5.0) * 0.01);
        let bias = Tensor::zeros(&[ch_out]);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                conv2d_forward(black_box(&input), black_box(&weight), &bias, 1, 1).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let input = Tensor::from_fn(&[16, 8, 16, 16], |i| (i as f32).sin());
    c.bench_function("maxpool2d_16x8x16x16", |bench| {
        bench.iter(|| maxpool2d_forward(black_box(&input), 2, 2).unwrap());
    });
}

criterion_group!(benches, bench_matmul, bench_conv, bench_pool);
criterion_main!(benches);
