//! Criterion benchmarks of the latency calculators themselves — the
//! closed forms and the discrete-event simulation that price every round
//! of Fig. 2(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsfl_core::latency::{fl_round, gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl_nn::model::Mlp;
use gsfl_wireless::allocation::BandwidthPolicy;
use gsfl_wireless::latency::LatencyModel;
use std::hint::black_box;

fn fixture(clients: usize) -> (LatencyModel, SplitCosts, Vec<usize>) {
    let latency = LatencyModel::builder()
        .clients(clients)
        .seed(7)
        .build()
        .unwrap();
    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    let costs = SplitCosts::compute(&net, 2, &[768], 16).unwrap();
    let steps = vec![5usize; clients];
    (latency, costs, steps)
}

fn bench_sl_closed_form(c: &mut Criterion) {
    let (latency, costs, steps) = fixture(30);
    let order: Vec<usize> = (0..30).collect();
    c.bench_function("sl_round_closed_form_30c", |b| {
        b.iter(|| sl_round(black_box(&latency), &costs, &steps, &order, ChannelMode::Dedicated, 3).unwrap());
    });
}

fn bench_fl_closed_form(c: &mut Criterion) {
    let (latency, costs, steps) = fixture(30);
    c.bench_function("fl_round_closed_form_30c", |b| {
        b.iter(|| fl_round(black_box(&latency), &costs, &steps, 1, 3).unwrap());
    });
}

fn bench_gsfl_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("gsfl_round_des");
    for m in [1usize, 6, 30] {
        let (latency, costs, steps) = fixture(30);
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..30).filter(|c| c % m == g).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("groups", m), &m, |b, _| {
            b.iter(|| {
                gsfl_round(
                    black_box(&latency),
                    &costs,
                    &steps,
                    &groups,
                    BandwidthPolicy::Equal,
                    ChannelMode::Dedicated,
                    3,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sl_closed_form,
    bench_fl_closed_form,
    bench_gsfl_des
);
criterion_main!(benches);
