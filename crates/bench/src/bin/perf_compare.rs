//! The CI perf-regression gate (see [`gsfl_bench::compare`]).
//!
//! ```text
//! perf_compare <committed.json> <current.json> [--max-slowdown 2.5]
//! ```
//!
//! Prints a markdown summary table to stdout and exits non-zero when any
//! tracked speedup ratio regressed past the threshold. Comparing the
//! committed baseline against itself always passes — the invariant the
//! gate's own CI wiring relies on.

use gsfl_bench::compare::compare;
use gsfl_bench::suite::SuiteReport;
use std::path::Path;
use std::process::ExitCode;

fn load(path: &str) -> Result<SuiteReport, String> {
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| format!("could not read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("could not parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<String> = Vec::new();
    let mut max_slowdown = 2.5f64;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--max-slowdown" {
            max_slowdown = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or("--max-slowdown needs a numeric value")?;
            i += 2;
        } else if args[i].starts_with("--") {
            return Err(format!("unknown flag {:?}", args[i]));
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "usage: {} <committed.json> <current.json> [--max-slowdown 2.5]",
            args.first().map(String::as_str).unwrap_or("perf_compare")
        ));
    }
    let committed = load(&positional[0])?;
    let current = load(&positional[1])?;
    let verdict = compare(&committed, &current, max_slowdown);
    println!(
        "perf gate: {} (committed) vs {} (current)\n",
        positional[0], positional[1]
    );
    println!("{}", verdict.markdown());
    Ok(verdict.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf gate failed: a tracked speedup ratio regressed");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
