//! **A7 — client energy** (extension; "resource-limited" includes
//! batteries).
//!
//! Per-scheme client-side energy per round and per unit of accuracy:
//! split schemes trade model-upload energy for smashed-data energy, and
//! GSFL's totals match SL's (same work, reordered) while finishing sooner.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin energy_table [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(20);
    eprintln!("energy_table: {rounds} rounds per scheme");
    let config = paper_config(false)
        .rounds(rounds)
        .eval_every(rounds.max(1))
        .build()?;
    let runner = Runner::new(config)?;

    let mut rows = Vec::new();
    for kind in SchemeKind::all() {
        let r = runner.run(kind)?;
        let per_round = r.total_client_energy_j() / r.records.len().max(1) as f64;
        rows.push(vec![
            kind.to_string(),
            format!("{:.1}", per_round),
            format!("{:.1}", r.total_client_energy_j()),
            format!("{:.1}", r.final_accuracy_pct()),
            format!(
                "{:.2}",
                r.total_client_energy_j() / r.final_accuracy_pct().max(1.0)
            ),
        ]);
        eprintln!("  {kind}: done");
    }
    println!("\nA7 — client-side energy (30 clients total, {rounds} rounds):");
    print_table(
        &["scheme", "J/round", "total_J", "acc_%", "J_per_acc_pt"],
        &rows,
    );
    println!("\nCL spends no client energy (data already at the server); FL");
    println!("pays full-model uploads; the split schemes pay smashed-data");
    println!("streams instead. GSFL and SL do identical client work per");
    println!("round — grouping buys time, not energy.");
    Ok(())
}
