//! **A6 — scalability in the client count** (extension).
//!
//! Holds the per-client data volume constant and sweeps N (with M = N/5),
//! reporting per-round latency of SL vs GSFL: SL grows linearly with N,
//! GSFL with N/M-ish until server slots saturate.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin scalability [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(3);
    eprintln!("scalability: {rounds} rounds per setting");
    let mut rows = Vec::new();
    for n in [10usize, 20, 30, 60] {
        let m = n / 5;
        let config = paper_config(false)
            .clients(n)
            .groups(m)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .build()?;
        let runner = Runner::new(config)?;
        let mut pair = runner
            .run_many(&[SchemeKind::VanillaSplit, SchemeKind::Gsfl])?
            .into_iter();
        let (sl, gsfl) = (pair.next().unwrap(), pair.next().unwrap());
        let rl = |r: &gsfl_core::results::RunResult| {
            r.records.first().map(|x| x.round_latency_s).unwrap_or(0.0)
        };
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            format!("{:.1}", rl(&sl)),
            format!("{:.1}", rl(&gsfl)),
            format!("{:.2}×", rl(&sl) / rl(&gsfl)),
        ]);
        eprintln!("  N={n}: done");
    }
    println!("\nA6 — per-round latency vs fleet size (M = N/5):");
    print_table(
        &["clients", "groups", "SL_round_s", "GSFL_round_s", "speedup"],
        &rows,
    );
    Ok(())
}
