//! **A5 — server-side storage** (paper §I motivation).
//!
//! Quantifies the storage argument for grouping: SFL keeps one server-side
//! model per client; GSFL keeps one per group. Storage is read from each
//! scheme through the `Scheme` trait (`storage_bytes`), dispatched by
//! name via the scheme registry.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin storage_table`

use gsfl_bench::{paper_config, print_table};
use gsfl_core::context::TrainContext;
use gsfl_core::scheme::SchemeRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = SchemeRegistry::builtin();
    let storage = |name: &str, ctx: &TrainContext| -> u64 {
        registry
            .create(name)
            .expect("builtin scheme")
            .storage_bytes(ctx)
    };
    let mut rows = Vec::new();
    for n in [10usize, 30, 60, 120] {
        let m = (n / 5).max(1);
        let config = paper_config(false).clients(n).groups(m).rounds(1).build()?;
        let ctx = TrainContext::from_config(config)?;
        let sl = storage("sl", &ctx);
        let sfl = storage("sfl", &ctx);
        let gsfl = storage("gsfl", &ctx);
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            format!("{:.1}", sl as f64 / 1024.0),
            format!("{:.1}", sfl as f64 / 1024.0),
            format!("{:.1}", gsfl as f64 / 1024.0),
            format!("{:.1}×", sfl as f64 / gsfl as f64),
        ]);
    }
    println!("A5 — edge-server model storage (KiB) vs fleet size:");
    print_table(
        &["clients", "groups", "SL", "SFL", "GSFL", "SFL/GSFL"],
        &rows,
    );
    println!("\nGSFL needs M server-side replicas instead of SFL's N — the");
    println!("storage saving that motivates grouping (paper §I).");
    Ok(())
}
