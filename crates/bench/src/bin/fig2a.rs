//! **E1 — Fig. 2(a)**: accuracy vs training rounds for CL, SL, GSFL, FL.
//!
//! Reproduces the paper's Fig. 2(a) series (GTSRB → synthetic GTSRB, 30
//! clients, 6 groups) and prints the E3 summary: the paper claims GSFL
//! converges ≈5× faster than FL in rounds and tracks SL/CL closely.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin fig2a [--rounds N] [--full]`

use gsfl_bench::{accuracy_series, paper_config, print_table, rounds_override, save_result};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = gsfl_bench::full_scale();
    let rounds = rounds_override().unwrap_or(if full { 300 } else { 120 });
    let config = paper_config(full).rounds(rounds).eval_every(2).build()?;
    eprintln!(
        "fig2a: {} rounds, 30 clients, 6 groups (full={full})",
        rounds
    );

    let runner = Runner::new(config)?;
    let schemes = [
        SchemeKind::Centralized,
        SchemeKind::VanillaSplit,
        SchemeKind::Gsfl,
        SchemeKind::Federated,
    ];
    eprintln!("running {} schemes on parallel threads…", schemes.len());
    let mut results = Vec::new();
    for (kind, r) in schemes.into_iter().zip(runner.run_many(&schemes)?) {
        eprintln!(
            "  {kind}: final {:.1}% (best {:.1}%), host time {:.1}s",
            r.final_accuracy_pct(),
            r.best_accuracy_pct(),
            r.wall_clock_s
        );
        save_result(&format!("fig2a_{kind}"), &r);
        results.push((kind, r));
    }

    // The figure series: accuracy (%) per evaluation round.
    println!("\nFig. 2(a) — accuracy (%) vs training rounds");
    type Series = Vec<(usize, f64, f64)>;
    let series: Vec<(SchemeKind, Series)> = results
        .iter()
        .map(|(k, r)| (*k, accuracy_series(r)))
        .collect();
    let eval_rounds: Vec<usize> = series[0].1.iter().map(|(r, _, _)| *r).collect();
    let rows: Vec<Vec<String>> = eval_rounds
        .iter()
        .enumerate()
        .map(|(i, round)| {
            let mut row = vec![round.to_string()];
            for (_, s) in &series {
                row.push(
                    s.get(i)
                        .map(|(_, _, a)| format!("{a:.1}"))
                        .unwrap_or_default(),
                );
            }
            row
        })
        .collect();
    print_table(&["round", "CL", "SL", "GSFL", "FL"], &rows);

    // E3 summary: rounds-to-target ratios.
    let target = 0.80;
    println!("\nE3 — rounds to {:.0}% accuracy:", target * 100.0);
    let mut summary = Vec::new();
    for (kind, r) in &results {
        summary.push(vec![
            kind.to_string(),
            r.rounds_to_accuracy(target)
                .map(|x| x.to_string())
                .unwrap_or_else(|| "not reached".into()),
            format!("{:.1}", r.best_accuracy_pct()),
        ]);
    }
    print_table(&["scheme", "rounds_to_80%", "best_acc_%"], &summary);
    let gsfl_rounds = results
        .iter()
        .find(|(k, _)| *k == SchemeKind::Gsfl)
        .and_then(|(_, r)| r.rounds_to_accuracy(target));
    let fl_rounds = results
        .iter()
        .find(|(k, _)| *k == SchemeKind::Federated)
        .and_then(|(_, r)| r.rounds_to_accuracy(target));
    match (gsfl_rounds, fl_rounds) {
        (Some(g), Some(f)) => println!(
            "\nFL/GSFL convergence-round ratio: {:.1}× (paper: ≈5×)",
            f as f64 / g as f64
        ),
        (Some(g), None) => println!(
            "\nFL never reached {:.0}% within {rounds} rounds; GSFL did at round {g} (paper: GSFL ≈5× faster)",
            target * 100.0
        ),
        _ => println!("\nGSFL did not reach the target within {rounds} rounds — increase --rounds"),
    }
    Ok(())
}
