//! Trace of one GSFL round: the discrete-event schedule rendered as an
//! ASCII Gantt chart, plus edge-server utilization — shows exactly where
//! a round's time goes (client compute, transmissions, server slots,
//! relays, FedAvg).
//!
//! Usage: `cargo run -p gsfl-bench --release --bin round_trace [-- clients groups]`

use gsfl_core::config::{DatasetConfig, ExperimentConfig};
use gsfl_core::context::TrainContext;
use gsfl_core::latency::gsfl_round_with_schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let groups: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2);
    let config = ExperimentConfig::builder()
        .clients(clients)
        .groups(groups)
        .rounds(1)
        .batch_size(16)
        .dataset(DatasetConfig {
            classes: 8,
            samples_per_class: 8,
            test_per_class: 2,
            image_size: 16,
        })
        .seed(7)
        .build()?;
    let ctx = TrainContext::from_config(config)?;
    let steps = ctx.steps_per_client();

    let (latency, schedule) = gsfl_round_with_schedule(
        ctx.env.as_ref(),
        &ctx.costs,
        &steps,
        &ctx.groups,
        ctx.config.bandwidth_policy,
        ctx.config.channel,
        0,
    )?;

    println!(
        "one GSFL round: {clients} clients in {groups} groups, makespan {:.3}s, \
         {} tasks, client energy {:.1} J\n",
        latency.duration.as_secs_f64(),
        schedule.spans().len(),
        latency.client_energy_j,
    );
    print!("{}", schedule.gantt(72));
    // The round builder declares one FIFO resource per AP's edge server;
    // the schedule's own resource table recovers the handles, so this
    // reports correctly for single- and multi-AP environments alike.
    println!();
    for ap in 0..ctx.env.ap_count() {
        let label = if ctx.env.ap_count() == 1 {
            "edge-server".to_string()
        } else {
            format!("edge-server{ap}")
        };
        let Some(handle) = schedule.resource(&label) else {
            continue;
        };
        let slots = ctx.env.server_at(ap).slots();
        println!(
            "{label} utilization: {:.1}% of {slots} slots over the makespan",
            schedule.utilization(handle, slots) * 100.0,
        );
    }
    Ok(())
}
