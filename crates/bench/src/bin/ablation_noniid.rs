//! **A4 — non-IID severity** (implicit in the paper's FL gap).
//!
//! Sweeps the Dirichlet α of the client data partition and reports how
//! FL degrades while GSFL (whose sequential intra-group pass visits every
//! member's data each round) stays robust — the mechanism behind the
//! paper's ≈5× FL convergence gap.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_noniid [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::config::PartitionStrategy;
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(30);
    eprintln!("ablation_noniid: {rounds} rounds per setting");
    let mut rows = Vec::new();
    for (strategy, label) in [
        (PartitionStrategy::Iid, "iid".to_string()),
        (PartitionStrategy::Dirichlet(100.0), "dir(100)".to_string()),
        (PartitionStrategy::Dirichlet(1.0), "dir(1.0)".to_string()),
        (PartitionStrategy::Dirichlet(0.5), "dir(0.5)".to_string()),
        (PartitionStrategy::Dirichlet(0.1), "dir(0.1)".to_string()),
    ] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .partition(strategy)
            .build()?;
        let runner = Runner::new(config)?;
        let gsfl = runner.run(SchemeKind::Gsfl)?;
        let fl = runner.run(SchemeKind::Federated)?;
        save_result(&format!("ablation_noniid_{label}_gsfl"), &gsfl);
        save_result(&format!("ablation_noniid_{label}_fl"), &fl);
        rows.push(vec![
            label.clone(),
            format!("{:.1}", gsfl.final_accuracy_pct()),
            format!("{:.1}", fl.final_accuracy_pct()),
        ]);
        eprintln!("  {label}: done");
    }
    println!("\nA4 — accuracy after {rounds} rounds vs data skew:");
    print_table(&["partition", "GSFL_acc_%", "FL_acc_%"], &rows);
    println!("\nGSFL's sequential intra-group pass visits every member's shard");
    println!("each round, keeping it near its IID accuracy at every skew level.");
    println!("FL trails far behind at *every* skew: with 30-way averaging its");
    println!("per-round progress is depth-limited (the Fig. 2(a) gap), and");
    println!("skew compounds the effect at longer horizons.");
    Ok(())
}
