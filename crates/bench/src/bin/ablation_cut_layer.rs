//! **A1 — cut-layer selection** (paper §IV future work).
//!
//! Sweeps the DeepThin cut point and reports, per cut: smashed-data bytes
//! per batch, client/server FLOPs share, simulated round latency, and
//! accuracy after a short training budget.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_cut_layer [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;
use gsfl_nn::model::CutPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(20);
    eprintln!("ablation_cut_layer: {rounds} rounds per cut");
    let mut rows = Vec::new();
    for cut in CutPoint::all() {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .cut_point(cut)
            .build()?;
        let runner = Runner::new(config)?;
        let costs = runner.context().costs;
        let result = runner.run(SchemeKind::Gsfl)?;
        save_result(&format!("ablation_cut_{cut}"), &result);
        let round_latency = result
            .records
            .first()
            .map(|r| r.round_latency_s)
            .unwrap_or(0.0);
        let client_share = (costs.client_fwd_flops + costs.client_bwd_flops) as f64
            / costs.full_flops as f64
            * 100.0;
        rows.push(vec![
            cut.to_string(),
            costs.smashed_bytes.as_u64().to_string(),
            format!("{client_share:.1}%"),
            costs.client_model_bytes.as_u64().to_string(),
            format!("{round_latency:.1}"),
            format!("{:.1}", result.final_accuracy_pct()),
        ]);
        eprintln!("  cut {cut}: done");
    }
    println!("\nA1 — GSFL cut-layer ablation (30 clients, 6 groups)");
    print_table(
        &[
            "cut",
            "smashed_B/batch",
            "client_flops",
            "client_model_B",
            "round_s",
            "acc_%",
        ],
        &rows,
    );
    println!("\nShallow cuts ship big activations but keep clients light;");
    println!("deep cuts shrink traffic at the price of client compute.");
    Ok(())
}
