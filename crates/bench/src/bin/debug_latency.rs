//! Developer diagnostic: decompose SL and GSFL round latency into
//! computation vs communication under the current paper-scale defaults.
//!
//! All environment state is read through the `ChannelModel` trait —
//! the round's `RoundConditions` snapshot plus the per-AP server
//! accessors — so the breakdown is faithful under multi-AP, interference
//! and trace-driven environments, not just the static single-cell model.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin debug_latency [-- scenario]`
//! where `scenario` is any preset name (default: the static paper cell).

use gsfl_bench::paper_config;
use gsfl_core::context::TrainContext;
use gsfl_core::latency::{gsfl_round, sl_round};
use gsfl_wireless::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = paper_config(false).rounds(1);
    if let Some(name) = std::env::args().nth(1) {
        let scenario =
            Scenario::preset(&name).ok_or_else(|| format!("unknown scenario preset: {name}"))?;
        builder = builder.scenario(scenario);
    }
    let config = builder.build()?;
    let ctx = TrainContext::from_config(config)?;
    let costs = ctx.costs;
    println!("cost profile (per batch):");
    println!(
        "  client fwd+bwd flops : {}",
        costs.client_fwd_flops + costs.client_bwd_flops
    );
    println!("  server flops         : {}", costs.server_flops);
    println!("  full flops           : {}", costs.full_flops);
    println!("  smashed bytes        : {}", costs.smashed_bytes.as_u64());
    println!(
        "  client model bytes   : {}",
        costs.client_model_bytes.as_u64()
    );
    println!(
        "  full model bytes     : {}",
        costs.full_model_bytes.as_u64()
    );

    // The round-0 snapshot every planner sees: total band, per-client
    // distance / compute / availability / AP association.
    let env = ctx.env.as_ref();
    let cond = env.conditions(0)?;
    let full = cond.bandwidth;
    println!(
        "\nround-0 conditions: {:.1} MHz total, {} APs, {}/{} clients reachable",
        full.as_hz() / 1e6,
        env.ap_count(),
        cond.available_clients().len(),
        cond.clients.len(),
    );

    // Per-step timings for a probe client at full bandwidth and at the
    // dedicated OFDMA share, against its *own* AP's edge server.
    let c = 0usize;
    let probe = &cond.clients[c];
    let ap = probe.ap;
    let cf = env.client_compute(c, costs.client_fwd_flops, 0)?;
    let cb = env.client_compute(c, costs.client_bwd_flops, 0)?;
    let sv = env.server_compute_at(ap, costs.server_flops);
    let ul_full = env.uplink_time(c, costs.smashed_bytes, 0, full)?;
    let dl_full = env.downlink_time(c, costs.grad_bytes, 0, full)?;
    let share = cond.dedicated_share();
    let ul_share = env.uplink_time(c, costs.smashed_bytes, 0, share)?;
    let dl_share = env.downlink_time(c, costs.grad_bytes, 0, share)?;
    println!(
        "\nper-step timings, client 0 (distance {:.0} m, device {:.2} GFLOP/s, AP {ap}):",
        probe.distance.as_meters(),
        probe.compute_rate.as_flops_per_sec() / 1e9
    );
    println!(
        "  client fwd / bwd     : {:.4}s / {:.4}s",
        cf.as_secs_f64(),
        cb.as_secs_f64()
    );
    println!("  server fwd+bwd       : {:.6}s", sv.as_secs_f64());
    println!(
        "  uplink  (B, B/N)     : {:.4}s, {:.4}s",
        ul_full.as_secs_f64(),
        ul_share.as_secs_f64()
    );
    println!(
        "  downlink(B, B/N)     : {:.4}s, {:.4}s",
        dl_full.as_secs_f64(),
        dl_share.as_secs_f64()
    );
    println!(
        "  relay (model, B)     : {:.4}s",
        env.uplink_time(c, costs.client_model_bytes, 0, full)?
            .as_secs_f64()
    );
    println!(
        "  fl model ul (B/30)   : {:.4}s",
        env.uplink_time(c, costs.full_model_bytes, 0, full.fraction(1.0 / 30.0))?
            .as_secs_f64()
    );

    let steps = ctx.steps_per_client();
    println!("\nsteps/client: {:?}", &steps[..6.min(steps.len())]);
    let order: Vec<usize> = (0..ctx.config.clients).collect();
    let sl = sl_round(env, &costs, &steps, &order, ctx.config.channel, 0)?;
    let gsfl = gsfl_round(
        env,
        &costs,
        &steps,
        &ctx.groups,
        ctx.config.bandwidth_policy,
        ctx.config.channel,
        0,
    )?;
    println!("\nSL round   : {:.2}s", sl.duration.as_secs_f64());
    println!(
        "GSFL round : {:.2}s  (speedup {:.2}×)",
        gsfl.duration.as_secs_f64(),
        sl.duration.as_secs_f64() / gsfl.duration.as_secs_f64()
    );
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!(
        "SL bytes   : {:.2} MiB up, {:.2} MiB down",
        mib(sl.bytes.up),
        mib(sl.bytes.down)
    );
    Ok(())
}
