//! **A3 — bandwidth & server-resource allocation** (paper §IV).
//!
//! Three sweeps:
//! * A3a — bandwidth-split policies across GSFL groups under the
//!   dynamic **shared-pool** channel (policies are a no-op under dedicated
//!   OFDMA subchannels, where every client owns B/N);
//! * A3b — edge-server slot count with a *constrained* server, where
//!   slot contention genuinely throttles inter-group parallelism;
//! * A3c — dedicated-subchannel vs shared-pool channel models for both SL
//!   and GSFL, showing how the spectrum model moves the GSFL gain.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_bandwidth [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::config::WirelessConfig;
use gsfl_core::latency::ChannelMode;
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;
use gsfl_wireless::allocation::BandwidthPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(10);
    eprintln!("ablation_bandwidth: {rounds} rounds per setting");

    println!("\nA3a — bandwidth policy across GSFL groups (shared pool, M=6):");
    let mut rows = Vec::new();
    for (policy, label) in [
        (BandwidthPolicy::Equal, "equal"),
        (BandwidthPolicy::PayloadWeighted, "payload-weighted"),
        (BandwidthPolicy::ChannelAware, "channel-aware"),
    ] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .channel(ChannelMode::SharedPool)
            .bandwidth_policy(policy)
            .build()?;
        let runner = Runner::new(config)?;
        let result = runner.run(SchemeKind::Gsfl)?;
        save_result(&format!("ablation_bw_{label}"), &result);
        rows.push(vec![
            label.to_string(),
            format!(
                "{:.2}",
                result
                    .records
                    .first()
                    .map(|r| r.round_latency_s)
                    .unwrap_or(0.0)
            ),
            format!("{:.1}", result.total_latency_s()),
        ]);
        eprintln!("  {label}: done");
    }
    print_table(&["policy", "round_s", "total_s"], &rows);

    println!("\nA3b — edge-server slots with a constrained server (0.2 GFLOP/s per slot, M=6):");
    let mut rows = Vec::new();
    for slots in [1usize, 2, 4, 6, 8] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .wireless(WirelessConfig {
                server_slots: slots,
                server_gflops: 0.2,
                ..WirelessConfig::default()
            })
            .build()?;
        let runner = Runner::new(config)?;
        let result = runner.run(SchemeKind::Gsfl)?;
        rows.push(vec![
            slots.to_string(),
            format!(
                "{:.2}",
                result
                    .records
                    .first()
                    .map(|r| r.round_latency_s)
                    .unwrap_or(0.0)
            ),
            format!("{:.1}", result.total_latency_s()),
        ]);
        eprintln!("  slots={slots}: done");
    }
    print_table(&["server_slots", "round_s", "total_s"], &rows);

    println!("\nA3c — spectrum model: GSFL round vs SL round under each channel mode:");
    let mut rows = Vec::new();
    for (mode, label) in [
        (ChannelMode::Dedicated, "dedicated B/N"),
        (ChannelMode::SharedPool, "shared pool"),
    ] {
        let config = paper_config(false)
            .rounds(1)
            .eval_every(1)
            .channel(mode)
            .build()?;
        let runner = Runner::new(config)?;
        let gsfl = runner.run(SchemeKind::Gsfl)?;
        let sl = runner.run(SchemeKind::VanillaSplit)?;
        let rg = gsfl.records[0].round_latency_s;
        let rs = sl.records[0].round_latency_s;
        rows.push(vec![
            label.to_string(),
            format!("{rs:.2}"),
            format!("{rg:.2}"),
            format!("{:.2}×", rs / rg),
        ]);
        eprintln!("  {label}: done");
    }
    print_table(
        &["channel", "SL_round_s", "GSFL_round_s", "GSFL_speedup"],
        &rows,
    );
    println!("\nUnder dedicated OFDMA subchannels GSFL's group parallelism is");
    println!("real communication parallelism; a dynamic shared pool lets the");
    println!("lone SL transmitter grab the whole band and shrinks the gain —");
    println!("exactly the resource-allocation sensitivity §IV flags.");
    Ok(())
}
