//! **A8 — fault-tolerant rounds** (extension; robustness under
//! failures).
//!
//! Sweeps the fault axes the recovery layer is built for — per-transfer
//! loss rate × mid-compute crash rate — with and without a round
//! deadline, and reports what the fault accounting records: retry count
//! (priced into wire latency), clients lost, and rounds skipped on a
//! quorum miss. A second table turns on backup over-provisioning in
//! population mode and shows standbys absorbing crashes.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_availability [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::population::PopulationConfig;
use gsfl_core::recovery::{DeadlinePolicy, RecoverySpec};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;
use gsfl_wireless::scenario::{ChaosSpec, Scenario, StragglerSpec};
use gsfl_wireless::FaultSpec;

/// The chaos scenario with only the swept axes enabled: no dropouts, no
/// AP outages, no stragglers — so the tables isolate loss/crash effects.
fn faults_only(loss: f64, crash: f64) -> Scenario {
    Scenario::Chaos(ChaosSpec {
        faults: FaultSpec {
            loss_prob: loss,
            crash_prob: crash,
            ..FaultSpec::default()
        },
        stragglers: StragglerSpec {
            probability: 0.0,
            slowdown: 1.0,
        },
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(30);
    eprintln!("ablation_availability: {rounds} rounds per setting");

    // Table 1: loss x crash, open-ended vs deadlined rounds.
    let mut rows = Vec::new();
    for (loss, crash) in [
        (0.0f64, 0.0f64),
        (0.1, 0.0),
        (0.3, 0.0),
        (0.1, 0.05),
        (0.3, 0.1),
    ] {
        for deadline in [
            None,
            Some(DeadlinePolicy {
                deadline_s: 8.0,
                min_quorum_frac: 0.5,
            }),
        ] {
            let config = paper_config(false)
                .rounds(rounds)
                .eval_every(rounds.max(1))
                .scenario(faults_only(loss, crash))
                .recovery(RecoverySpec {
                    deadline,
                    backups: 0,
                })
                .build()?;
            let runner = Runner::new(config)?;
            let gsfl = runner.run(SchemeKind::Gsfl)?;
            let tag = match deadline {
                None => "open".to_string(),
                Some(d) => format!("{}s", d.deadline_s),
            };
            // Percent-integer stems: a `.` in the stem would read as an
            // extension downstream and collide the artifact files.
            save_result(
                &format!(
                    "ablation_fault_l{:02}_c{:02}_{tag}_gsfl",
                    (loss * 100.0).round() as u32,
                    (crash * 100.0).round() as u32
                ),
                &gsfl,
            );
            rows.push(vec![
                format!("{loss:.2}"),
                format!("{crash:.2}"),
                tag,
                format!("{:.1}", gsfl.best_accuracy_pct()),
                format!("{:.1}", gsfl.total_latency_s()),
                format!("{}", gsfl.total_retries()),
                format!("{}", gsfl.total_lost_clients()),
                format!("{}", gsfl.rounds_skipped()),
            ]);
            eprintln!(
                "  loss={loss} crash={crash} deadline={tag2}: done",
                tag2 = rows.last().unwrap()[2]
            );
        }
    }
    println!("\nA8 — GSFL under transfer loss x mid-compute crashes, open vs 8 s deadline ({rounds} rounds):");
    print_table(
        &[
            "loss", "crash", "deadline", "acc_%", "time_s", "retries", "lost", "skipped",
        ],
        &rows,
    );

    // Table 2: backup over-provisioning. A sparse population gives the
    // round spare members to promote, so crashed primaries are re-run by
    // standbys instead of shrinking the aggregate.
    let mut rows = Vec::new();
    for backups in [0usize, 2, 4] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .scenario(faults_only(0.0, 0.1))
            .population(PopulationConfig {
                clients: 120,
                samples_per_client: 0,
            })
            .recovery(RecoverySpec {
                deadline: None,
                backups,
            })
            .build()?;
        let runner = Runner::new(config)?;
        let gsfl = runner.run(SchemeKind::Gsfl)?;
        save_result(&format!("ablation_fault_backups{backups}_gsfl"), &gsfl);
        rows.push(vec![
            format!("{backups}"),
            format!("{:.1}", gsfl.best_accuracy_pct()),
            format!("{:.1}", gsfl.total_latency_s()),
            format!("{}", gsfl.total_lost_clients()),
            format!("{}", gsfl.total_backups_activated()),
        ]);
        eprintln!("  backups={backups}: done");
    }
    println!("\nA8 — backup over-provisioning under crash rate 0.10 (population 120, cohort 30):");
    print_table(&["backups", "acc_%", "time_s", "lost", "activated"], &rows);

    println!("\nLoss prices retries into every hop (time grows, accuracy holds);");
    println!("crashes shrink the aggregate unless a standby re-runs the slot;");
    println!("a deadline caps round time at the cost of skipped rounds when");
    println!("the quorum misses.");
    Ok(())
}
