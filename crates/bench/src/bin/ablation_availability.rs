//! **A8 — client churn** (extension; robustness under realistic
//! availability).
//!
//! Sweeps per-round client availability and reports how GSFL and SL
//! degrade: SL's sequential relay shortens (fewer participants ⇒ faster
//! rounds but less data per round); GSFL additionally loses whole groups
//! on bad rounds.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_availability [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(40);
    eprintln!("ablation_availability: {rounds} rounds per setting");
    let mut rows = Vec::new();
    for availability in [1.0f64, 0.9, 0.7, 0.5] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .availability(availability)
            .build()?;
        let runner = Runner::new(config)?;
        let mut pair = runner
            .run_many(&[SchemeKind::Gsfl, SchemeKind::VanillaSplit])?
            .into_iter();
        let (gsfl, sl) = (pair.next().unwrap(), pair.next().unwrap());
        save_result(&format!("ablation_avail_{availability}_gsfl"), &gsfl);
        rows.push(vec![
            format!("{availability:.1}"),
            format!("{:.1}", gsfl.best_accuracy_pct()),
            format!("{:.1}", gsfl.total_latency_s()),
            format!("{:.1}", sl.best_accuracy_pct()),
            format!("{:.1}", sl.total_latency_s()),
        ]);
        eprintln!("  availability={availability}: done");
    }
    println!("\nA8 — accuracy and total simulated time vs client availability ({rounds} rounds):");
    print_table(
        &["avail", "GSFL_acc_%", "GSFL_s", "SL_acc_%", "SL_s"],
        &rows,
    );
    println!("\nChurn shrinks each round (cheaper, less data); both schemes");
    println!("degrade gracefully because every reachable shard is still");
    println!("visited in sequence.");
    Ok(())
}
