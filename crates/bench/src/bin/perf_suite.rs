//! Offline performance suite (no criterion, works in the air-gapped
//! build image).
//!
//! Times the tensor kernels, FedAvg aggregation, the latency
//! calculators, a split training step and full multi-client rounds —
//! the latter two on the preserved pre-optimization engine versus the
//! fast engine — then writes `BENCH_results.json` at the repository
//! root so the perf trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p gsfl-bench --bin perf_suite            # full
//! cargo run --release -p gsfl-bench --bin perf_suite -- --quick # CI
//! cargo run --release -p gsfl-bench --bin perf_suite -- --out x.json
//! ```

use gsfl_bench::print_table;
use gsfl_bench::suite::{run_all, SuiteReport};
use std::path::PathBuf;

fn default_output() -> PathBuf {
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_results.json")
}

fn output_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(default_output)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn print_report(report: &SuiteReport) {
    println!(
        "perf_suite ({} mode, {} hardware thread{}, simd: {})\n",
        if report.quick { "quick" } else { "full" },
        report.hardware_threads,
        if report.hardware_threads == 1 {
            ""
        } else {
            "s"
        },
        if report.simd_isa.is_empty() {
            "unknown"
        } else {
            &report.simd_isa
        },
    );
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                e.iters.to_string(),
                fmt_ms(e.mean_ns),
                fmt_ms(e.min_ns),
            ]
        })
        .collect();
    print_table(&["bench", "iters", "mean ms", "min ms"], &rows);

    if !report.comparisons.is_empty() {
        println!();
        let rows: Vec<Vec<String>> = report
            .comparisons
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{:.3}", c.baseline_ms),
                    format!("{:.3}", c.fast_ms),
                    format!("{:.2}x", c.speedup),
                ]
            })
            .collect();
        print_table(&["comparison", "baseline ms", "fast ms", "speedup"], &rows);
    }

    if let Some(kb) = report.peak_rss_kb {
        println!("\npeak RSS: {kb} kB (includes the 10⁶-configured-client round)");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = run_all(quick);
    print_report(&report);

    let path = output_path();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(&path, json + "\n") {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
