//! **A2 — group-count and grouping-strategy ablation** (paper §IV).
//!
//! Sweeps M ∈ {1, 2, 3, 5, 6, 10, 15, 30} with 30 clients. M=1 degenerates
//! to SL-with-aggregation, M=N to SplitFed. Also compares grouping
//! strategies at M=6.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin ablation_groups [--rounds N]`

use gsfl_bench::{paper_config, print_table, rounds_override, save_result};
use gsfl_core::config::GroupingKind;
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = rounds_override().unwrap_or(20);
    eprintln!("ablation_groups: {rounds} rounds per setting");

    println!("\nA2a — group-count sweep (30 clients, round-robin):");
    let mut rows = Vec::new();
    for m in [1usize, 2, 3, 5, 6, 10, 15, 30] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .groups(m)
            .build()?;
        let runner = Runner::new(config)?;
        let result = runner.run(SchemeKind::Gsfl)?;
        save_result(&format!("ablation_groups_m{m}"), &result);
        let round_latency = result
            .records
            .first()
            .map(|r| r.round_latency_s)
            .unwrap_or(0.0);
        rows.push(vec![
            m.to_string(),
            format!("{round_latency:.1}"),
            format!("{:.1}", result.total_latency_s()),
            format!("{:.1}", result.final_accuracy_pct()),
            result.server_storage_bytes.to_string(),
        ]);
        eprintln!("  M={m}: done");
    }
    print_table(
        &["M", "round_s", "total_s", "acc_%", "server_storage_B"],
        &rows,
    );

    println!("\nA2b — grouping strategies at M=6:");
    let mut rows = Vec::new();
    for (kind, label) in [
        (GroupingKind::RoundRobin, "round-robin"),
        (GroupingKind::Random, "random"),
        (GroupingKind::ComputeBalanced, "compute-balanced"),
        (GroupingKind::ChannelAware, "channel-aware"),
    ] {
        let config = paper_config(false)
            .rounds(rounds)
            .eval_every(rounds.max(1))
            .grouping(kind)
            .build()?;
        let runner = Runner::new(config)?;
        let result = runner.run(SchemeKind::Gsfl)?;
        let round_latency = result
            .records
            .first()
            .map(|r| r.round_latency_s)
            .unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            format!("{round_latency:.1}"),
            format!("{:.1}", result.final_accuracy_pct()),
        ]);
        eprintln!("  {label}: done");
    }
    print_table(&["strategy", "round_s", "acc_%"], &rows);
    println!("\nMore groups ⇒ more parallelism (until server slots saturate)");
    println!("but more replicas to store and average.");
    Ok(())
}
