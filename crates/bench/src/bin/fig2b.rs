//! **E2 — Fig. 2(b)**: accuracy vs wall-clock training latency, GSFL vs
//! SL.
//!
//! Reproduces the paper's Fig. 2(b): both schemes run to the same round
//! budget; the series is accuracy against *cumulative simulated latency*.
//! The paper reports GSFL reaching target accuracy with ≈31.45 % less
//! delay than SL.
//!
//! Usage: `cargo run -p gsfl-bench --release --bin fig2b [--rounds N] [--full]`

use gsfl_bench::{accuracy_series, paper_config, print_table, rounds_override, save_result};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = gsfl_bench::full_scale();
    let rounds = rounds_override().unwrap_or(if full { 300 } else { 120 });
    let config = paper_config(full).rounds(rounds).eval_every(2).build()?;
    eprintln!(
        "fig2b: {} rounds, 30 clients, 6 groups (full={full})",
        rounds
    );

    let runner = Runner::new(config)?;
    let mut results = runner
        .run_many(&[SchemeKind::Gsfl, SchemeKind::VanillaSplit])?
        .into_iter();
    let gsfl = results.next().expect("gsfl result");
    eprintln!(
        "  gsfl: final {:.1}%, simulated {:.0}s",
        gsfl.final_accuracy_pct(),
        gsfl.total_latency_s()
    );
    save_result("fig2b_gsfl", &gsfl);
    let sl = results.next().expect("sl result");
    eprintln!(
        "  sl:   final {:.1}%, simulated {:.0}s",
        sl.final_accuracy_pct(),
        sl.total_latency_s()
    );
    save_result("fig2b_sl", &sl);

    println!("\nFig. 2(b) — accuracy (%) vs latency (simulated seconds)");
    println!("\nGSFL series (latency_s, accuracy_%):");
    let rows: Vec<Vec<String>> = accuracy_series(&gsfl)
        .iter()
        .map(|(r, t, a)| vec![r.to_string(), format!("{t:.1}"), format!("{a:.1}")])
        .collect();
    print_table(&["round", "latency_s", "acc_%"], &rows);
    println!("\nSL series (latency_s, accuracy_%):");
    let rows: Vec<Vec<String>> = accuracy_series(&sl)
        .iter()
        .map(|(r, t, a)| vec![r.to_string(), format!("{t:.1}"), format!("{a:.1}")])
        .collect();
    print_table(&["round", "latency_s", "acc_%"], &rows);

    // Headline claim: delay reduction at matched accuracy.
    println!("\nDelay to reach target accuracy (simulated seconds):");
    let mut summary = Vec::new();
    for target in [0.6, 0.7, 0.8, 0.9, 0.95] {
        let tg = gsfl.time_to_accuracy(target);
        let ts = sl.time_to_accuracy(target);
        let reduction = match (tg, ts) {
            (Some(g), Some(s)) if s > 0.0 => format!("{:.1}%", (1.0 - g / s) * 100.0),
            _ => "—".into(),
        };
        summary.push(vec![
            format!("{:.0}%", target * 100.0),
            tg.map(|v| format!("{v:.0}")).unwrap_or_else(|| "—".into()),
            ts.map(|v| format!("{v:.0}")).unwrap_or_else(|| "—".into()),
            reduction,
        ]);
    }
    print_table(&["target", "GSFL_s", "SL_s", "delay_reduction"], &summary);
    println!("\npaper claim: ≈31.45% delay reduction (GSFL vs SL)");
    Ok(())
}
