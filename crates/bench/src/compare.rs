//! The perf-regression gate: diff a CI-produced suite report against the
//! committed baseline.
//!
//! Raw nanosecond timings are not comparable across machines — the
//! committed `BENCH_results.json` comes from whatever box last
//! regenerated it, while CI runs on a shared runner. What *is*
//! machine-portable is each [`crate::suite::Comparison`]'s **speedup ratio**
//! (pre-optimization engine vs fast engine, measured in the same
//! process on the same host). The gate therefore tracks, per workload,
//!
//! ```text
//! slowdown = committed_speedup / ci_speedup
//! ```
//!
//! and fails only when some workload's slowdown exceeds the configured
//! threshold (2.5× in CI — loose enough for noisy runners, tight enough
//! to catch a fast path quietly falling back to the reference engine).

use crate::suite::SuiteReport;

/// One tracked ratio: a workload's speedup in both reports.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Workload id, e.g. `e2e_round_federated_8c`.
    pub name: String,
    /// Speedup recorded in the committed baseline.
    pub committed_speedup: f64,
    /// Speedup measured by the current (CI) run.
    pub current_speedup: f64,
    /// `committed_speedup / current_speedup` (> 1 means the current run
    /// regressed).
    pub slowdown: f64,
    /// Whether the slowdown stays under the threshold.
    pub ok: bool,
}

/// The gate's verdict over every tracked ratio.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-workload rows, in committed-baseline order.
    pub rows: Vec<RatioRow>,
    /// Workloads present in only one of the two reports (informational;
    /// never fails the gate).
    pub missing: Vec<String>,
    /// The failure threshold the rows were judged against.
    pub max_slowdown: f64,
}

impl CompareReport {
    /// Whether every tracked ratio stays under the threshold.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// The rows that breached the threshold.
    pub fn regressions(&self) -> Vec<&RatioRow> {
        self.rows.iter().filter(|r| !r.ok).collect()
    }

    /// Renders the verdict as a markdown table for the CI job log.
    pub fn markdown(&self) -> String {
        let mut out = String::from(
            "| benchmark | committed speedup | current speedup | slowdown | status |\n\
             |---|---:|---:|---:|---|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {:.2}× | {:.2}× | {:.2}× | {} |\n",
                r.name,
                r.committed_speedup,
                r.current_speedup,
                r.slowdown,
                if r.ok { "ok" } else { "**REGRESSED**" },
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("| {name} | — | — | — | skipped (unmatched) |\n"));
        }
        out.push_str(&format!(
            "\ngate: max allowed slowdown {:.2}× — **{}**\n",
            self.max_slowdown,
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }
}

/// Diffs `current` against `committed`, failing any tracked ratio whose
/// slowdown exceeds `max_slowdown`.
pub fn compare(committed: &SuiteReport, current: &SuiteReport, max_slowdown: f64) -> CompareReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for base in &committed.comparisons {
        match current.comparisons.iter().find(|c| c.name == base.name) {
            Some(cur) if cur.speedup > 0.0 && base.speedup > 0.0 => {
                let slowdown = base.speedup / cur.speedup;
                rows.push(RatioRow {
                    name: base.name.clone(),
                    committed_speedup: base.speedup,
                    current_speedup: cur.speedup,
                    slowdown,
                    ok: slowdown <= max_slowdown,
                });
            }
            _ => missing.push(base.name.clone()),
        }
    }
    for cur in &current.comparisons {
        if !committed.comparisons.iter().any(|b| b.name == cur.name) {
            missing.push(cur.name.clone());
        }
    }
    CompareReport {
        rows,
        missing,
        max_slowdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Comparison;

    fn report(pairs: &[(&str, f64)]) -> SuiteReport {
        SuiteReport {
            quick: false,
            hardware_threads: 1,
            generated_unix_s: 0,
            peak_rss_kb: None,
            simd_isa: String::new(),
            entries: Vec::new(),
            comparisons: pairs
                .iter()
                .map(|(name, speedup)| Comparison {
                    name: name.to_string(),
                    baseline_ms: 1.0 * speedup,
                    fast_ms: 1.0,
                    speedup: *speedup,
                })
                .collect(),
        }
    }

    #[test]
    fn self_comparison_passes_with_unit_slowdowns() {
        let r = report(&[("a", 2.0), ("b", 3.5)]);
        let verdict = compare(&r, &r, 2.5);
        assert!(verdict.passed());
        assert_eq!(verdict.rows.len(), 2);
        for row in &verdict.rows {
            assert!((row.slowdown - 1.0).abs() < 1e-12);
        }
        assert!(verdict.missing.is_empty());
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let committed = report(&[("a", 3.0), ("b", 3.0)]);
        // a: 3.0 → 1.0 speedup is a 3.0× slowdown; b only 1.5×.
        let current = report(&[("a", 1.0), ("b", 2.0)]);
        let verdict = compare(&committed, &current, 2.5);
        assert!(!verdict.passed());
        let regressed: Vec<&str> = verdict
            .regressions()
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(regressed, vec!["a"]);
        assert!(verdict.markdown().contains("**REGRESSED**"));
        assert!(verdict.markdown().contains("FAIL"));
    }

    #[test]
    fn noise_under_threshold_passes() {
        let committed = report(&[("a", 2.5)]);
        let current = report(&[("a", 1.1)]); // 2.27× slowdown < 2.5×
        assert!(compare(&committed, &current, 2.5).passed());
    }

    #[test]
    fn unmatched_workloads_are_reported_not_failed() {
        let committed = report(&[("a", 2.0), ("gone", 4.0)]);
        let current = report(&[("a", 2.0), ("new", 1.5)]);
        let verdict = compare(&committed, &current, 2.5);
        assert!(verdict.passed());
        assert_eq!(verdict.rows.len(), 1);
        assert_eq!(verdict.missing, vec!["gone".to_string(), "new".to_string()]);
        assert!(verdict.markdown().contains("skipped (unmatched)"));
    }

    #[test]
    fn faster_than_baseline_is_fine() {
        let committed = report(&[("a", 2.0)]);
        let current = report(&[("a", 5.0)]);
        let verdict = compare(&committed, &current, 2.5);
        assert!(verdict.passed());
        assert!(verdict.rows[0].slowdown < 1.0);
    }
}
