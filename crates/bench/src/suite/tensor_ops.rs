//! Micro-benchmarks of the tensor substrate: the kernels whose
//! throughput bounds the whole training harness. Ported from the dead
//! criterion sources in `benches/tensor_ops.rs`, now timing the fast
//! kernels against the preserved reference implementations.

use super::Suite;
use gsfl_tensor::conv::{conv2d_backward, conv2d_forward};
use gsfl_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
use gsfl_tensor::pool::maxpool2d_forward;
use gsfl_tensor::{reference, Tensor};
use std::hint::black_box;

/// Registers the tensor-kernel benches on `suite`.
pub fn register(suite: &mut Suite) {
    for size in [32usize, 64, 128] {
        let a = Tensor::from_fn(&[size, size], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[size, size], |i| (i as f32).cos());
        suite.compare(
            format!("matmul_square_{size}"),
            200,
            || {
                black_box(reference::matmul(black_box(&a), black_box(&b)).unwrap());
            },
            || {
                black_box(matmul(black_box(&a), black_box(&b)).unwrap());
            },
        );
    }

    // The dense-layer backward shape: dW = dYᵀ · X.
    let x = Tensor::from_fn(&[16, 256], |i| (i as f32).sin());
    let dy = Tensor::from_fn(&[16, 64], |i| (i as f32).cos());
    suite.compare(
        "matmul_at_b_dense_backward",
        400,
        || {
            black_box(reference::matmul_at_b(black_box(&dy), black_box(&x)).unwrap());
        },
        || {
            black_box(matmul_at_b(black_box(&dy), black_box(&x)).unwrap());
        },
    );

    // The dense-layer forward shape: Y = X · Wᵀ.
    let w = Tensor::from_fn(&[64, 256], |i| (i as f32 * 0.7).sin());
    suite.compare(
        "matmul_a_bt_dense_forward",
        400,
        || {
            black_box(reference::matmul_a_bt(black_box(&x), black_box(&w)).unwrap());
        },
        || {
            black_box(matmul_a_bt(black_box(&x), black_box(&w)).unwrap());
        },
    );

    for (label, ch_in, ch_out, hw) in [("3to8@16", 3usize, 8usize, 16usize), ("8to16@8", 8, 16, 8)]
    {
        let input = Tensor::from_fn(&[16, ch_in, hw, hw], |i| (i as f32 % 7.0) * 0.1);
        let weight = Tensor::from_fn(&[ch_out, ch_in, 3, 3], |i| (i as f32 % 5.0) * 0.01);
        let bias = Tensor::zeros(&[ch_out]);
        suite.compare(
            format!("conv2d_forward_{label}"),
            100,
            || {
                black_box(
                    reference::conv2d_forward(black_box(&input), black_box(&weight), &bias, 1, 1)
                        .unwrap(),
                );
            },
            || {
                black_box(
                    conv2d_forward(black_box(&input), black_box(&weight), &bias, 1, 1).unwrap(),
                );
            },
        );
    }

    let input = Tensor::from_fn(&[16, 3, 16, 16], |i| (i as f32 % 7.0) * 0.1);
    let weight = Tensor::from_fn(&[8, 3, 3, 3], |i| (i as f32 % 5.0) * 0.01);
    let bias = Tensor::zeros(&[8]);
    let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
    let grad_out = Tensor::from_fn(out.dims(), |i| (i as f32 % 3.0) * 0.05);
    suite.compare(
        "conv2d_backward_3to8@16",
        60,
        || {
            black_box(
                reference::conv2d_backward(
                    black_box(&input),
                    black_box(&weight),
                    black_box(&grad_out),
                    1,
                    1,
                )
                .unwrap(),
            );
        },
        || {
            black_box(
                conv2d_backward(
                    black_box(&input),
                    black_box(&weight),
                    black_box(&grad_out),
                    1,
                    1,
                )
                .unwrap(),
            );
        },
    );

    let pool_input = Tensor::from_fn(&[16, 8, 16, 16], |i| (i as f32).sin());
    suite.run("maxpool2d_16x8x16x16", 200, || {
        black_box(maxpool2d_forward(black_box(&pool_input), 2, 2).unwrap());
    });
}
