//! Offline performance suite: a small no-dependency timing harness plus
//! the benchmark groups that used to live as dead criterion sources
//! under `benches/` (the build image has no crates-io access, so
//! criterion never ran). `perf_suite` runs everything, prints a table,
//! and writes `BENCH_results.json` at the repository root so the perf
//! trajectory is tracked in-repo from PR to PR.
//!
//! The headline output is the [`Comparison`] list: the same workload
//! timed on the preserved pre-optimization engine
//! ([`gsfl_tensor::KernelMode::Reference`] + one thread) and on the fast
//! engine, with the speedup factor computed from mean wall-clock.

pub mod aggregation;
pub mod codec;
pub mod orchestrator;
pub mod population;
pub mod round_latency;
pub mod simd;
pub mod tensor_ops;
pub mod train;

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload id, e.g. `matmul_square_64/fast`.
    pub name: String,
    /// Measured iterations (after warmup).
    pub iters: u32,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
}

/// A baseline-vs-fast pairing with its speedup factor. Times are the
/// **fastest** iteration of each side — the noise-robust statistic on
/// shared/virtualized hosts, where scheduling jitter only ever adds
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload id, e.g. `e2e_round_federated_8c`.
    pub name: String,
    /// Best per-iteration time of the pre-optimization engine, ms.
    pub baseline_ms: f64,
    /// Best per-iteration time of the fast engine, ms.
    pub fast_ms: f64,
    /// `baseline_ms / fast_ms`.
    pub speedup: f64,
}

/// The serialized suite output (`BENCH_results.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Whether the suite ran in `--quick` (CI) mode.
    pub quick: bool,
    /// Thread budget of the measuring host.
    pub hardware_threads: usize,
    /// Seconds since the Unix epoch when the suite finished.
    pub generated_unix_s: u64,
    /// Peak resident set size (`VmHWM`) of the suite process when it
    /// finished, in kB; `None` off Linux. The population benches run a
    /// full round at 10⁶ configured clients, so this pins the sparse
    /// subsystem's memory claim alongside its timings.
    #[serde(default)]
    pub peak_rss_kb: Option<u64>,
    /// The SIMD instruction set the dispatch layer selected on the
    /// measuring host (`gsfl_tensor::simd::active_isa().name()`), so a
    /// perf trajectory across machines is interpretable.
    #[serde(default)]
    pub simd_isa: String,
    /// All timed workloads.
    pub entries: Vec<BenchEntry>,
    /// Baseline-vs-fast speedups.
    pub comparisons: Vec<Comparison>,
}

/// Collects entries and comparisons while the groups run.
#[derive(Debug)]
pub struct Suite {
    quick: bool,
    entries: Vec<BenchEntry>,
    comparisons: Vec<Comparison>,
}

impl Suite {
    /// An empty suite; `quick` divides iteration counts for CI.
    pub fn new(quick: bool) -> Self {
        Suite {
            quick,
            entries: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// Whether the suite is in quick mode.
    pub fn quick(&self) -> bool {
        self.quick
    }

    fn scaled(&self, iters: u32) -> u32 {
        if self.quick {
            (iters / 8).max(1)
        } else {
            iters.max(1)
        }
    }

    /// Times `f` for `iters` iterations (after `iters/4 + 1` warmup runs)
    /// and records the entry. Returns the fastest iteration in
    /// nanoseconds (the noise-robust statistic — see [`Comparison`]).
    pub fn run(&mut self, name: impl Into<String>, iters: u32, mut f: impl FnMut()) -> u64 {
        let iters = self.scaled(iters);
        for _ in 0..(iters / 4 + 1) {
            f();
        }
        let mut total_ns = 0u64;
        let mut min_ns = u64::MAX;
        for _ in 0..iters {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos() as u64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
        }
        self.entries.push(BenchEntry {
            name: name.into(),
            iters,
            mean_ns: total_ns / u64::from(iters),
            min_ns,
        });
        min_ns
    }

    /// Times `baseline` and `fast` under `<name>/baseline` and
    /// `<name>/fast`, recording the speedup comparison (fastest
    /// iterations on both sides).
    pub fn compare(
        &mut self,
        name: impl Into<String>,
        iters: u32,
        baseline: impl FnMut(),
        fast: impl FnMut(),
    ) {
        let name = name.into();
        let base_ns = self.run(format!("{name}/baseline"), iters, baseline);
        let fast_ns = self.run(format!("{name}/fast"), iters, fast);
        self.comparisons.push(Comparison {
            name,
            baseline_ms: base_ns as f64 / 1e6,
            fast_ms: fast_ns as f64 / 1e6,
            speedup: base_ns as f64 / fast_ns.max(1) as f64,
        });
    }

    /// Finalizes the report.
    pub fn finish(self) -> SuiteReport {
        SuiteReport {
            quick: self.quick,
            hardware_threads: gsfl_tensor::threading::hardware_threads(),
            generated_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            peak_rss_kb: peak_rss_kb(),
            simd_isa: gsfl_tensor::simd::active_isa().name().to_string(),
            entries: self.entries,
            comparisons: self.comparisons,
        }
    }
}

/// Peak resident set size in kilobytes, from `/proc/self/status`
/// (`None` off Linux).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| {
        line.strip_prefix("VmHWM:")
            .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
    })
}

/// Runs every benchmark group into one report.
pub fn run_all(quick: bool) -> SuiteReport {
    let mut suite = Suite::new(quick);
    tensor_ops::register(&mut suite);
    codec::register(&mut suite);
    aggregation::register(&mut suite);
    simd::register(&mut suite);
    round_latency::register(&mut suite);
    orchestrator::register(&mut suite);
    train::register(&mut suite);
    population::register(&mut suite);
    suite.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_records_entries_and_comparisons() {
        let mut s = Suite::new(true);
        s.run("noop", 8, || {});
        s.compare("pair", 8, || {}, || {});
        let report = s.finish();
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.comparisons.len(), 1);
        assert!(report.quick);
        assert!(report.hardware_threads >= 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), 3);
    }
}
