//! Payload-codec kernel benches: the encode/decode round trips every
//! lossy artifact (smashed data, gradients, model deltas) pays per wire
//! crossing. The comparison entry pits the workspace-recycled
//! select-based top-k kernel against a naive fresh-allocating full-sort
//! baseline — the machine-portable ratio `perf_compare` gates on.

use super::Suite;
use gsfl_tensor::quant::{fp16_roundtrip, intq_roundtrip, topk_mask};
use gsfl_tensor::rng::seeded_rng;
use gsfl_tensor::wire::{self, WireBuf};
use gsfl_tensor::Workspace;
use rand::Rng;
use std::hint::black_box;

/// The smashed-data-sized buffer the codec benches transcode
/// (64k scalars ≈ a 16-sample conv activation batch).
const N: usize = 64 * 1024;
const K: usize = N / 16;

/// Fixed codec stream for the wire-container benches: both sides of a
/// comparison must draw identical stochastic-rounding sequences.
const STREAM: u64 = 42;

fn payload() -> Vec<f32> {
    (0..N)
        .map(|i| ((i * 31 % 4093) as f32 - 2046.0) * 0.01)
        .collect()
}

/// Naive IntQ wire encode for the baseline: the same container, built
/// the way a first implementation builds it — a fresh output vector
/// every call and the quantization codes packed one bit at a time —
/// before the word-level bit packer and the recycled `WireBuf` pool.
/// Byte-identical to [`wire::encode_intq`] (the unit test pins it), so
/// the comparison times pure mechanism.
fn encode_intq_naive(values: &[f32], bits: u32) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&wire::MAGIC);
    out.push(wire::VERSION);
    out.push(2); // WireDtype::IntQ
    let mut numel = values.len() as u64;
    while numel >= 0x80 {
        out.push((numel as u8 & 0x7F) | 0x80);
        numel >>= 7;
    }
    out.push(numel as u8);
    out.push(bits as u8);
    let scale = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    out.extend_from_slice(&scale.to_le_bytes());
    let levels = (1u32 << (bits - 1)) - 1;
    let inv = levels as f32 / scale;
    let lv = levels as f32;
    let mut rng = seeded_rng(STREAM);
    let mut acc = 0u8;
    let mut nbits = 0u32;
    for v in values {
        let x = *v * inv;
        let lo = x.floor();
        let frac = x - lo;
        let q = if rng.gen::<f32>() < frac {
            lo + 1.0
        } else {
            lo
        };
        let code = (q.clamp(-lv, lv) as i64 + i64::from(levels)) as u64;
        for b in 0..bits {
            acc |= (((code >> b) & 1) as u8) << nbits;
            nbits += 1;
            if nbits == 8 {
                out.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
    }
    if nbits > 0 {
        out.push(acc);
    }
    out
}

/// Naive TopK wire decode for the baseline: a fresh zeroed output
/// vector every call and the packed survivor indices read one bit at a
/// time. Produces the same tensor as [`wire::decode_topk`] (pinned by
/// the unit test).
fn decode_topk_naive(bytes: &[u8], n: usize) -> Vec<f32> {
    let mut pos = 4; // magic + version + dtype
    let mut k = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[pos];
        pos += 1;
        // First varint is numel (== n, trusted here; the real decoder
        // validates), second is k.
        k |= u64::from(b & 0x7F) << shift;
        shift += 7;
        if b & 0x80 == 0 {
            break;
        }
    }
    assert_eq!(k as usize, n, "bench payload numel");
    let mut k = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[pos];
        pos += 1;
        k |= u64::from(b & 0x7F) << shift;
        shift += 7;
        if b & 0x80 == 0 {
            break;
        }
    }
    let k = k as usize;
    let width = u32::from(bytes[pos]);
    pos += 1;
    let mut indices = Vec::with_capacity(k);
    let mut bit = 0usize;
    for _ in 0..k {
        let mut idx = 0u64;
        for b in 0..width {
            let byte = bytes[pos + bit / 8];
            idx |= u64::from((byte >> (bit % 8)) & 1) << b;
            bit += 1;
        }
        indices.push(idx as usize);
    }
    pos += bit.div_ceil(8);
    let mut out = vec![0.0f32; n];
    for &i in &indices {
        out[i] = f32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        pos += 4;
    }
    out
}

/// Naive top-k for the baseline: allocate an index vector, fully sort it
/// by magnitude, zero the losers — what a first implementation does
/// before select_nth + a recycled scratch pool.
fn topk_sort_fresh(values: &mut [f32], k: usize) {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .abs()
            .partial_cmp(&values[a].abs())
            .expect("finite")
            .then(a.cmp(&b))
    });
    for &i in &order[k..] {
        values[i] = 0.0;
    }
}

/// Registers the codec benches on `suite`.
pub fn register(suite: &mut Suite) {
    let src = payload();

    let mut buf = src.clone();
    suite.run("codec_fp16_roundtrip_64k", 200, || {
        buf.copy_from_slice(&src);
        fp16_roundtrip(black_box(&mut buf));
    });

    let mut buf = src.clone();
    suite.run("codec_intq8_roundtrip_64k", 100, || {
        buf.copy_from_slice(&src);
        intq_roundtrip(black_box(&mut buf), 8, 42);
    });

    let mut base_buf = src.clone();
    let mut fast_buf = src.clone();
    let mut ws = Workspace::new();
    suite.compare(
        "codec_topk_64k",
        60,
        || {
            base_buf.copy_from_slice(&src);
            topk_sort_fresh(black_box(&mut base_buf), K);
        },
        || {
            fast_buf.copy_from_slice(&src);
            topk_mask(black_box(&mut fast_buf), K, &mut ws);
        },
    );

    // The wire-container hot paths the latency model now charges from:
    // encode (4-bit quantized uplink artifact) and decode (sparse model
    // delta). Baselines are the naive bit-at-a-time, fresh-allocation
    // first implementations; the fast sides are the shipped word-level
    // packers over recycled buffers.
    let mut wire_buf = WireBuf::new();
    suite.compare(
        "encode_intq4_64k",
        60,
        || {
            black_box(encode_intq_naive(black_box(&src), 4));
        },
        || {
            wire::encode_intq(black_box(&src), 4, STREAM, &mut wire_buf);
            black_box(wire_buf.len());
        },
    );

    let mut topk_wire = WireBuf::new();
    wire::encode_topk(&src, K, &mut ws, &mut topk_wire);
    let mut out = vec![0.0f32; N];
    suite.compare(
        "decode_topk_64k",
        60,
        || {
            black_box(decode_topk_naive(black_box(topk_wire.as_bytes()), N));
        },
        || {
            wire::decode_topk(black_box(&topk_wire), &mut out).expect("well-formed container");
            black_box(out.len());
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_kernel_keep_the_same_survivor_set() {
        let mut ws = Workspace::new();
        let src = payload();
        let mut naive = src.clone();
        topk_sort_fresh(&mut naive, K);
        let mut fast = src.clone();
        topk_mask(&mut fast, K, &mut ws);
        assert_eq!(naive, fast, "the bench compares equivalent work");
    }

    #[test]
    fn naive_intq_encode_is_byte_identical_to_the_wire_kernel() {
        let src = payload();
        let naive = encode_intq_naive(&src, 4);
        let mut buf = WireBuf::new();
        wire::encode_intq(&src, 4, STREAM, &mut buf);
        assert_eq!(naive, buf.as_bytes(), "the bench compares equivalent work");
    }

    #[test]
    fn naive_topk_decode_matches_the_wire_kernel() {
        let mut ws = Workspace::new();
        let src = payload();
        let mut buf = WireBuf::new();
        wire::encode_topk(&src, K, &mut ws, &mut buf);
        let naive = decode_topk_naive(buf.as_bytes(), N);
        let mut fast = vec![0.0f32; N];
        wire::decode_topk(&buf, &mut fast).unwrap();
        assert_eq!(naive, fast, "the bench compares equivalent work");
    }
}
