//! Payload-codec kernel benches: the encode/decode round trips every
//! lossy artifact (smashed data, gradients, model deltas) pays per wire
//! crossing. The comparison entry pits the workspace-recycled
//! select-based top-k kernel against a naive fresh-allocating full-sort
//! baseline — the machine-portable ratio `perf_compare` gates on.

use super::Suite;
use gsfl_tensor::quant::{fp16_roundtrip, intq_roundtrip, topk_mask};
use gsfl_tensor::Workspace;
use std::hint::black_box;

/// The smashed-data-sized buffer the codec benches transcode
/// (64k scalars ≈ a 16-sample conv activation batch).
const N: usize = 64 * 1024;
const K: usize = N / 16;

fn payload() -> Vec<f32> {
    (0..N)
        .map(|i| ((i * 31 % 4093) as f32 - 2046.0) * 0.01)
        .collect()
}

/// Naive top-k for the baseline: allocate an index vector, fully sort it
/// by magnitude, zero the losers — what a first implementation does
/// before select_nth + a recycled scratch pool.
fn topk_sort_fresh(values: &mut [f32], k: usize) {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .abs()
            .partial_cmp(&values[a].abs())
            .expect("finite")
            .then(a.cmp(&b))
    });
    for &i in &order[k..] {
        values[i] = 0.0;
    }
}

/// Registers the codec benches on `suite`.
pub fn register(suite: &mut Suite) {
    let src = payload();

    let mut buf = src.clone();
    suite.run("codec_fp16_roundtrip_64k", 200, || {
        buf.copy_from_slice(&src);
        fp16_roundtrip(black_box(&mut buf));
    });

    let mut buf = src.clone();
    suite.run("codec_intq8_roundtrip_64k", 100, || {
        buf.copy_from_slice(&src);
        intq_roundtrip(black_box(&mut buf), 8, 42);
    });

    let mut base_buf = src.clone();
    let mut fast_buf = src.clone();
    let mut ws = Workspace::new();
    suite.compare(
        "codec_topk_64k",
        60,
        || {
            base_buf.copy_from_slice(&src);
            topk_sort_fresh(black_box(&mut base_buf), K);
        },
        || {
            fast_buf.copy_from_slice(&src);
            topk_mask(black_box(&mut fast_buf), K, &mut ws);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_kernel_keep_the_same_survivor_set() {
        let mut ws = Workspace::new();
        let src = payload();
        let mut naive = src.clone();
        topk_sort_fresh(&mut naive, K);
        let mut fast = src.clone();
        topk_mask(&mut fast, K, &mut ws);
        assert_eq!(naive, fast, "the bench compares equivalent work");
    }
}
