//! Benchmarks of the latency calculators themselves — the closed forms
//! and the discrete-event simulation that price every round of
//! Fig. 2(b). Ported from the dead criterion sources in
//! `benches/round_latency.rs` and updated to the `ChannelModel` trait
//! the calculators consume since the environment redesign.

use super::Suite;
use gsfl_core::latency::{
    fl_round, fl_round_recovered, gsfl_round, sl_round, ChannelMode, SplitCosts,
};
use gsfl_core::recovery::RecoveryPlan;
use gsfl_nn::model::Mlp;
use gsfl_wireless::allocation::BandwidthPolicy;
use gsfl_wireless::environment::{ChannelModel, DynamicEnvironment, StaticEnvironment};
use gsfl_wireless::latency::LatencyModel;
use gsfl_wireless::FaultSpec;
use std::hint::black_box;

fn fixture(clients: usize) -> (StaticEnvironment, SplitCosts, Vec<usize>) {
    let latency = LatencyModel::builder()
        .clients(clients)
        .seed(7)
        .build()
        .unwrap();
    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    let costs = SplitCosts::compute(&net, 2, &[768], 16).unwrap();
    let steps = vec![5usize; clients];
    (StaticEnvironment::new(latency), costs, steps)
}

/// Registers the round-latency benches on `suite`.
pub fn register(suite: &mut Suite) {
    let (env, costs, steps) = fixture(30);
    let env: &dyn ChannelModel = &env;
    let order: Vec<usize> = (0..30).collect();

    suite.run("sl_round_closed_form_30c", 400, || {
        black_box(
            sl_round(
                black_box(env),
                &costs,
                &steps,
                &order,
                ChannelMode::Dedicated,
                3,
            )
            .unwrap(),
        );
    });

    suite.run("fl_round_closed_form_30c", 400, || {
        black_box(fl_round(black_box(env), &costs, &steps, 1, 3).unwrap());
    });

    // Fault-aware pricing overhead at 64 clients: the same FL round
    // priced clean versus through a fault-injecting environment (10%
    // transfer loss, 5% crashes, a deadline armed). The tracked ratio is
    // the fault layer's pricing overhead; `perf_compare` gates it so the
    // per-transfer fault queries never silently blow up round pricing.
    let (_, costs64, steps64) = fixture(64);
    let clean64 =
        StaticEnvironment::new(LatencyModel::builder().clients(64).seed(7).build().unwrap());
    let clean64: &dyn ChannelModel = &clean64;
    let faulty64 =
        DynamicEnvironment::builder(LatencyModel::builder().clients(64).seed(7).build().unwrap())
            .faults(FaultSpec {
                loss_prob: 0.1,
                crash_prob: 0.05,
                ..FaultSpec::default()
            })
            .seed(7)
            .build()
            .unwrap();
    let faulty64: &dyn ChannelModel = &faulty64;
    let recovery = RecoveryPlan {
        deadline_s: Some(30.0),
        backups: Vec::new(),
    };
    suite.compare(
        "fault_round_64c",
        200,
        || {
            black_box(
                fl_round_recovered(
                    black_box(faulty64),
                    &costs64,
                    &steps64,
                    1,
                    3,
                    None,
                    &recovery,
                )
                .unwrap(),
            );
        },
        || {
            black_box(fl_round(black_box(clean64), &costs64, &steps64, 1, 3).unwrap());
        },
    );

    for m in [1usize, 6, 30] {
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..30).filter(|c| c % m == g).collect())
            .collect();
        suite.run(format!("gsfl_round_des_groups_{m}"), 200, || {
            black_box(
                gsfl_round(
                    black_box(env),
                    &costs,
                    &steps,
                    &groups,
                    BandwidthPolicy::Equal,
                    ChannelMode::Dedicated,
                    3,
                )
                .unwrap(),
            );
        });
    }
}
