//! Benchmarks of the latency calculators themselves — the closed forms
//! and the discrete-event simulation that price every round of
//! Fig. 2(b). Ported from the dead criterion sources in
//! `benches/round_latency.rs` and updated to the `ChannelModel` trait
//! the calculators consume since the environment redesign.

use super::Suite;
use gsfl_core::latency::{fl_round, gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl_nn::model::Mlp;
use gsfl_wireless::allocation::BandwidthPolicy;
use gsfl_wireless::environment::{ChannelModel, StaticEnvironment};
use gsfl_wireless::latency::LatencyModel;
use std::hint::black_box;

fn fixture(clients: usize) -> (StaticEnvironment, SplitCosts, Vec<usize>) {
    let latency = LatencyModel::builder()
        .clients(clients)
        .seed(7)
        .build()
        .unwrap();
    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    let costs = SplitCosts::compute(&net, 2, &[768], 16).unwrap();
    let steps = vec![5usize; clients];
    (StaticEnvironment::new(latency), costs, steps)
}

/// Registers the round-latency benches on `suite`.
pub fn register(suite: &mut Suite) {
    let (env, costs, steps) = fixture(30);
    let env: &dyn ChannelModel = &env;
    let order: Vec<usize> = (0..30).collect();

    suite.run("sl_round_closed_form_30c", 400, || {
        black_box(
            sl_round(
                black_box(env),
                &costs,
                &steps,
                &order,
                ChannelMode::Dedicated,
                3,
            )
            .unwrap(),
        );
    });

    suite.run("fl_round_closed_form_30c", 400, || {
        black_box(fl_round(black_box(env), &costs, &steps, 1, 3).unwrap());
    });

    for m in [1usize, 6, 30] {
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..30).filter(|c| c % m == g).collect())
            .collect();
        suite.run(format!("gsfl_round_des_groups_{m}"), 200, || {
            black_box(
                gsfl_round(
                    black_box(env),
                    &costs,
                    &steps,
                    &groups,
                    BandwidthPolicy::Equal,
                    ChannelMode::Dedicated,
                    3,
                )
                .unwrap(),
            );
        });
    }
}
