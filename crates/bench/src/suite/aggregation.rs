//! Benchmarks of FedAvg aggregation — the per-round server-side cost
//! that grows with the number of groups/clients. Ported from the dead
//! criterion sources in `benches/aggregation.rs`.

use super::Suite;
use gsfl_nn::model::Mlp;
use gsfl_nn::params::{fed_avg, ParamVec};
use std::hint::black_box;

/// Registers the aggregation benches on `suite`.
pub fn register(suite: &mut Suite) {
    let dim = 50_000usize; // ≈ the harness CNN's parameter count
    for replicas in [2usize, 6, 30] {
        let models: Vec<ParamVec> = (0..replicas)
            .map(|r| ParamVec::from_values((0..dim).map(|i| ((i + r) as f32).sin()).collect()))
            .collect();
        let weights = vec![1.0f64; replicas];
        suite.run(format!("fed_avg_replicas_{replicas}"), 50, || {
            black_box(fed_avg(black_box(&models), black_box(&weights)).unwrap());
        });
    }

    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    suite.run("paramvec_snapshot", 200, || {
        black_box(ParamVec::from_network(black_box(&net)));
    });
    let snap = ParamVec::from_network(&net);
    let mut target = Mlp::new(768, &[128, 64], 43, 1).into_sequential();
    suite.run("paramvec_load", 200, || {
        snap.load_into(black_box(&mut target)).unwrap();
    });
}
