//! Benchmarks of the per-round orchestrator planners. The greedy joint
//! planner enumerates the cut × codec × share-mode product and estimates
//! a straggler-bound round latency for every arm from the live
//! conditions, then refines per-client cuts — all inside the round loop,
//! so planning cost is paid every round and must stay far below round
//! execution.

use super::Suite;
use gsfl_core::compression::CompressionSpec;
use gsfl_core::latency::SplitCosts;
use gsfl_core::orchestrator::{codec_menu, GreedyJoint, Orchestrator, PlanQuery};
use gsfl_nn::model::Mlp;
use gsfl_wireless::environment::{ChannelModel, StaticEnvironment};
use gsfl_wireless::latency::LatencyModel;
use std::collections::BTreeMap;
use std::hint::black_box;

/// Registers the orchestrator benches on `suite`.
pub fn register(suite: &mut Suite) {
    let clients = 64usize;
    let env = StaticEnvironment::new(
        LatencyModel::builder()
            .clients(clients)
            .seed(7)
            .build()
            .unwrap(),
    );
    let net = Mlp::new(768, &[128, 64], 43, 0).into_sequential();
    let candidates: Vec<usize> = (1..net.depth()).collect();
    let costs: BTreeMap<usize, SplitCosts> = candidates
        .iter()
        .map(|&cut| (cut, SplitCosts::compute(&net, cut, &[768], 16).unwrap()))
        .collect();
    let menu = codec_menu(&CompressionSpec::default());
    let steps = vec![5usize; clients];
    let participants: Vec<usize> = (0..clients).collect();
    let cond = env.conditions(3).unwrap();
    let env_ref: &dyn ChannelModel = &env;

    // A fresh planner per iteration: no incumbent, so every iteration
    // pays the full arm search plus the 64-client cut refinement.
    suite.run("orchestrator_plan_64c", 200, || {
        let greedy = GreedyJoint::new();
        let q = PlanQuery {
            round: 3,
            default_cut: candidates[0],
            candidates: &candidates,
            costs: &costs,
            codec_menu: &menu,
            conditions: &cond,
            env: black_box(env_ref),
            steps: &steps,
            participants: &participants,
        };
        black_box(greedy.plan(&q));
    });
}
