//! The headline benchmarks: a single split training step and full
//! multi-client rounds, each timed on the pre-optimization engine
//! (reference kernels, one thread) versus the fast engine (blocked
//! batched kernels, workspace reuse, budgeted client parallelism). The
//! `e2e_round_*` comparisons are the numbers the ISSUE acceptance
//! criteria track.

use super::Suite;
use gsfl_core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;
use gsfl_nn::loss::SoftmaxCrossEntropy;
use gsfl_nn::optim::Sgd;
use gsfl_nn::split::SplitNetwork;
use gsfl_tensor::{set_kernel_mode, KernelMode, Tensor};
use std::hint::black_box;

/// Mutable state for one split-training-step closure.
struct StepState {
    split: SplitNetwork,
    client_opt: Sgd,
    server_opt: Sgd,
    images: Tensor,
    labels: Vec<usize>,
}

impl StepState {
    fn new() -> Self {
        let model = ModelKind::deepthin_default();
        let net = model
            .build(&[3, 16, 16], 8, 3)
            .expect("benchmark model builds");
        let split = SplitNetwork::split(net, model.default_cut()).expect("valid cut");
        StepState {
            split,
            client_opt: Sgd::new(0.05),
            server_opt: Sgd::new(0.05),
            images: Tensor::from_fn(&[16, 3, 16, 16], |i| ((i * 31 % 255) as f32 / 255.0) - 0.5),
            labels: (0..16).map(|i| i % 8).collect(),
        }
    }

    fn step(&mut self) {
        let loss_fn = SoftmaxCrossEntropy::new();
        self.split.client.zero_grad();
        self.split.server.zero_grad();
        let smashed = self.split.client.forward(&self.images).unwrap();
        let logits = self.split.server.forward(&smashed).unwrap();
        let out = loss_fn.compute(&logits, &self.labels).unwrap();
        let grad_smashed = self.split.server.backward(&out.grad_logits).unwrap();
        self.split
            .client
            .backward_no_input_grad(&grad_smashed)
            .unwrap();
        self.server_opt
            .step(&mut self.split.server.params_mut())
            .unwrap();
        self.client_opt
            .step(&mut self.split.client.params_mut())
            .unwrap();
        self.split.client.recycle(smashed);
        self.split.server.recycle(logits);
        self.split.server.recycle(grad_smashed);
        self.split.server.recycle(out.grad_logits);
        black_box(out.loss);
    }
}

/// The paper's lightweight CNN at CI-friendly scale: 8 clients on
/// synthetic signs, one round.
fn round_config(sequential_baseline: bool) -> ExperimentConfig {
    let mut b = ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(1)
        .batch_size(16)
        .learning_rate(0.05)
        .dataset(DatasetConfig {
            classes: 8,
            samples_per_class: 32,
            test_per_class: 4,
            image_size: 16,
        })
        .seed(11);
    if sequential_baseline {
        b = b.client_threads(1);
    }
    b.build().expect("benchmark config is valid")
}

/// Registers the train-step and end-to-end round benches on `suite`.
pub fn register(suite: &mut Suite) {
    // --- one split training step (CNN, batch 16) ---------------------
    let mut base_state = StepState::new();
    let mut fast_state = StepState::new();
    suite.compare(
        "train_step_split_cnn_b16",
        60,
        || {
            set_kernel_mode(KernelMode::Reference);
            base_state.step();
        },
        || {
            set_kernel_mode(KernelMode::Fast);
            fast_state.step();
        },
    );

    // --- full multi-client rounds (≥ 8 clients, CNN) -----------------
    // Context construction (datasets, shards, wireless) is excluded from
    // the timing; each iteration runs one complete round including the
    // round-1 evaluation.
    let base_runner = Runner::new(round_config(true)).expect("baseline runner builds");
    let fast_runner = Runner::new(round_config(false)).expect("fast runner builds");
    for (label, kind) in [
        ("e2e_round_federated_8c", SchemeKind::Federated),
        ("e2e_round_splitfed_8c", SchemeKind::SplitFed),
    ] {
        suite.compare(
            label,
            8,
            || {
                set_kernel_mode(KernelMode::Reference);
                black_box(base_runner.run(kind).unwrap());
            },
            || {
                set_kernel_mode(KernelMode::Fast);
                black_box(fast_runner.run(kind).unwrap());
            },
        );
    }
    set_kernel_mode(KernelMode::Fast);
}
