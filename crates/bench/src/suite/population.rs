//! Population-scale benches: cohort sampling against the O(N)
//! materialized-client baseline, workspace-recycled aggregation against
//! the fresh-allocation path, and the full million-client round — the
//! costs the scale-out subsystem (`gsfl_core::population`) exists to
//! bound.

use super::Suite;
use gsfl_core::aggregate::{aggregate_snapshots, aggregate_snapshots_with};
use gsfl_core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl_core::population::{Population, PopulationConfig};
use gsfl_core::runner::Runner;
use gsfl_core::scheme::SchemeKind;
use gsfl_data::synth::SynthGtsrb;
use gsfl_nn::params::ParamVec;
use gsfl_tensor::workspace::Workspace;
use std::hint::black_box;

const MILLION: u64 = 1_000_000;

/// The sampler a materialized-client implementation is stuck with:
/// partial Fisher–Yates over an explicit id list. The O(N) cost is the
/// list itself, not the RNG — a cheap inline xorshift keeps the
/// comparison about the data structure.
fn sample_materialized(n: u64, cohort: usize, seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n).collect();
    let mut s = seed | 1;
    for i in 0..cohort {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let j = i + (s % (n - i as u64)) as usize;
        ids.swap(i, j);
    }
    let mut chosen = ids[..cohort].to_vec();
    chosen.sort_unstable();
    chosen
}

/// One GSFL round over a million configured clients (cohort of 8).
fn million_client_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(1)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .population(PopulationConfig {
            clients: MILLION,
            samples_per_client: 16,
        })
        .seed(23)
        .build()
        .expect("benchmark config is valid")
}

/// Registers the population-scale benches on `suite`.
pub fn register(suite: &mut Suite) {
    // --- cohort sampling: O(cohort) Floyd vs the O(N) id list --------
    // 100k keeps the tracked ratio in a range the 2.5× perf gate can
    // hold across machines; at 10⁶ the gap is ~10× larger still (the
    // untracked `population_*` entries below time the million-client
    // paths directly).
    let sample_n = 100_000u64;
    let spec = PopulationConfig {
        clients: sample_n,
        samples_per_client: 0,
    };
    let pop = Population::new(&spec, 64, 9).expect("valid population");
    let mut round = 0u64;
    suite.compare(
        "cohort_sample_100k_c64",
        20,
        || {
            black_box(sample_materialized(sample_n, 64, 9));
        },
        || {
            round += 1;
            black_box(pop.sample_cohort(round));
        },
    );

    // --- aggregation: fresh accumulator vs recycled workspace --------
    let dim = 50_000usize;
    let snaps: Vec<ParamVec> = (0..30)
        .map(|r| ParamVec::from_values((0..dim).map(|i| ((i + r) as f32).sin()).collect()))
        .collect();
    let weights = vec![1.0f64; snaps.len()];
    let mut ws = Workspace::new();
    suite.compare(
        "aggregate_ws_30x50k",
        40,
        || {
            black_box(aggregate_snapshots(&snaps, &weights).unwrap());
        },
        || {
            let out = aggregate_snapshots_with(&snaps, &weights, &mut ws).unwrap();
            ws.give(black_box(out).into_values());
        },
    );

    // --- cohort materialization from a million-client population -----
    let pool = SynthGtsrb::builder()
        .classes(8)
        .samples_per_class(16)
        .image_size(8)
        .seed(5)
        .generate()
        .expect("benchmark pool generates");
    let mat_spec = PopulationConfig {
        clients: MILLION,
        samples_per_client: 8,
    };
    let mat_pop = Population::new(&mat_spec, 64, 17).expect("valid population");
    let mut mat_round = 0u64;
    suite.run("population_materialize_1m_c64", 30, || {
        mat_round += 1;
        let members = mat_pop.sample_cohort(mat_round);
        black_box(mat_pop.materialize_cohort(&members, &pool).unwrap());
    });

    // --- one full GSFL round at a million configured clients ---------
    // Context construction is excluded; each iteration runs a complete
    // round (sampling, materialization, training, tree aggregation,
    // evaluation). The flat per-iteration cost — versus the 8-client
    // e2e rounds — is the scale-out claim in benchmark form; the
    // report's `peak_rss_kb` pins the memory side.
    let runner = Runner::new(million_client_config()).expect("population runner builds");
    suite.run("population_round_gsfl_1m_c8", 10, || {
        black_box(runner.run(SchemeKind::Gsfl).unwrap());
    });
}
