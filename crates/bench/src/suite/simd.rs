//! Per-kernel SIMD dispatch benches: each kernel that was ported onto
//! the runtime-dispatched lanes in `gsfl_tensor::simd` is timed with the
//! ISA pinned explicitly — scalar tier as the baseline, AVX2 tier as the
//! fast side — so `perf_compare` tracks the vectorization win per kernel
//! independently of the end-to-end numbers. Reference-tier and unfused
//! entries ride along as plain timings where the historical kernel still
//! exists.
//!
//! On hosts without AVX2/FMA/F16C the fast side falls back to the scalar
//! lanes (the dispatch wrappers re-check the CPU), so the speedups
//! degenerate to ≈1.0× instead of lying.

use super::Suite;
use gsfl_nn::loss::SoftmaxCrossEntropy;
use gsfl_tensor::matmul::{gemm_a_bt_with_isa, gemm_with_isa};
use gsfl_tensor::quant::fp16_roundtrip_with_isa;
use gsfl_tensor::simd::Isa;
use gsfl_tensor::wire::{encode_intq_with_isa, encode_topk_with_isa, WireBuf};
use gsfl_tensor::{reference, Tensor, Workspace};
use std::hint::black_box;

/// Codec-bench payload size (matches the codec group: 64k scalars).
const N: usize = 64 * 1024;
const K: usize = N / 16;

/// Fixed stochastic-rounding stream; both ISA tiers must draw the same
/// sequence for the byte-identity contract to hold.
const STREAM: u64 = 42;

fn payload() -> Vec<f32> {
    (0..N)
        .map(|i| ((i * 31 % 4093) as f32 - 2046.0) * 0.01)
        .collect()
}

/// Registers the SIMD microkernel benches on `suite`.
pub fn register(suite: &mut Suite) {
    // --- GEMM microkernel: 256×256×256, serial (one thread on both
    // sides, so the ratio is pure lane width + instruction selection).
    let dim = 256;
    let a: Vec<f32> = (0..dim * dim)
        .map(|i| ((i * 37 % 1009) as f32 - 504.0) * 0.01)
        .collect();
    let b: Vec<f32> = (0..dim * dim)
        .map(|i| ((i * 53 % 997) as f32 - 498.0) * 0.01)
        .collect();
    let mut out_base = vec![0.0f32; dim * dim];
    let mut out_fast = vec![0.0f32; dim * dim];
    suite.compare(
        "simd_gemm_mk_256",
        40,
        || {
            gemm_with_isa(
                Isa::Scalar,
                dim,
                dim,
                dim,
                black_box(&a),
                black_box(&b),
                &mut out_base,
            );
            black_box(out_base[0]);
        },
        || {
            gemm_with_isa(
                Isa::Avx2,
                dim,
                dim,
                dim,
                black_box(&a),
                black_box(&b),
                &mut out_fast,
            );
            black_box(out_fast[0]);
        },
    );
    // Reference tier on the same shape (the pre-optimization triple
    // loop), as a plain timing for the three-tier table.
    let at = Tensor::from_vec(a.clone(), &[dim, dim]).expect("shape");
    let bt = Tensor::from_vec(b.clone(), &[dim, dim]).expect("shape");
    suite.run("simd_gemm_mk_256/reference", 10, || {
        black_box(reference::matmul(black_box(&at), black_box(&bt)).expect("matmul"));
    });

    // --- Conv-dW long-dot shape: dW = dY · colsᵀ with a 64k reduction
    // axis and a tiny output tile — the FMA lane-dot's home turf.
    let m = 4;
    let n = 27;
    let k = 64 * 1024;
    let dy: Vec<f32> = (0..m * k)
        .map(|i| ((i * 13 % 2003) as f32 - 1001.0) * 0.004)
        .collect();
    let cols: Vec<f32> = (0..n * k)
        .map(|i| ((i * 29 % 1999) as f32 - 999.0) * 0.003)
        .collect();
    let mut dw_base = vec![0.0f32; m * n];
    let mut dw_fast = vec![0.0f32; m * n];
    suite.compare(
        "simd_dw_lanedot_64k",
        60,
        || {
            gemm_a_bt_with_isa(
                Isa::Scalar,
                m,
                k,
                n,
                black_box(&dy),
                black_box(&cols),
                &mut dw_base,
            );
            black_box(dw_base[0]);
        },
        || {
            gemm_a_bt_with_isa(
                Isa::Avx2,
                m,
                k,
                n,
                black_box(&dy),
                black_box(&cols),
                &mut dw_fast,
            );
            black_box(dw_fast[0]);
        },
    );

    // --- Fused softmax + cross-entropy forward/backward, 512×32.
    let rows = 512;
    let classes = 32;
    let logits = Tensor::from_fn(&[rows, classes], |i| {
        ((i * 17 % 4001) as f32 - 2000.0) * 0.002
    });
    let labels: Vec<usize> = (0..rows).map(|r| (r * 7) % classes).collect();
    let loss_fn = SoftmaxCrossEntropy::new();
    suite.compare(
        "simd_softmax_xent_fused",
        200,
        || {
            black_box(
                loss_fn
                    .compute_with_isa(Isa::Scalar, black_box(&logits), &labels)
                    .expect("loss"),
            );
        },
        || {
            black_box(
                loss_fn
                    .compute_with_isa(Isa::Avx2, black_box(&logits), &labels)
                    .expect("loss"),
            );
        },
    );
    // The historical two-pass kernel, as a plain timing: the fusion win
    // is `unfused / fast`.
    suite.run("simd_softmax_xent_fused/unfused", 200, || {
        black_box(
            loss_fn
                .compute_unfused(black_box(&logits), &labels)
                .expect("loss"),
        );
    });

    // --- fp16 in-place round trip over the 64k codec payload.
    let src = payload();
    let mut buf_base = src.clone();
    let mut buf_fast = src.clone();
    suite.compare(
        "simd_fp16_roundtrip_64k",
        200,
        || {
            buf_base.copy_from_slice(&src);
            fp16_roundtrip_with_isa(Isa::Scalar, black_box(&mut buf_base));
        },
        || {
            buf_fast.copy_from_slice(&src);
            fp16_roundtrip_with_isa(Isa::Avx2, black_box(&mut buf_fast));
        },
    );

    // --- IntQ 4-bit wire encode: stochastic rounding, clamp, and
    // bit-pack (the uplink artifact hot path).
    let mut wire_base = WireBuf::new();
    let mut wire_fast = WireBuf::new();
    suite.compare(
        "simd_encode_intq4_64k",
        60,
        || {
            encode_intq_with_isa(Isa::Scalar, black_box(&src), 4, STREAM, &mut wire_base);
            black_box(wire_base.len());
        },
        || {
            encode_intq_with_isa(Isa::Avx2, black_box(&src), 4, STREAM, &mut wire_fast);
            black_box(wire_fast.len());
        },
    );

    // --- TopK wire encode: magnitude scan, threshold count, pack.
    let mut ws_base = Workspace::new();
    let mut ws_fast = Workspace::new();
    suite.compare(
        "simd_encode_topk_64k",
        60,
        || {
            encode_topk_with_isa(
                Isa::Scalar,
                black_box(&src),
                K,
                &mut ws_base,
                &mut wire_base,
            );
            black_box(wire_base.len());
        },
        || {
            encode_topk_with_isa(Isa::Avx2, black_box(&src), K, &mut ws_fast, &mut wire_fast);
            black_box(wire_fast.len());
        },
    );
}
