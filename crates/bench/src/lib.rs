//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in this crate regenerates one paper artifact (a figure
//! panel or an ablation the paper's future work calls for), prints the
//! series to stdout, and writes CSV + JSON under `target/experiments/`.
//!
//! Scale note: the paper trains on full GTSRB for up to 2000 rounds on a
//! GPU testbed. The harness defaults reproduce the *shape* at CPU-friendly
//! scale (synthetic 43-class signs, 16×16, ~2150 train images, a few
//! hundred rounds); pass `--full` to any binary for a larger, slower run.

pub mod compare;
pub mod suite;

use gsfl_core::config::{DatasetConfig, ExperimentConfig, ExperimentConfigBuilder};
use gsfl_core::results::RunResult;
use std::path::PathBuf;

/// Output directory for experiment artifacts.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Whether `--full` was passed (larger, slower runs).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Parses `--rounds N` if present.
pub fn rounds_override() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The paper-scale experiment skeleton: 30 clients, 6 groups, synthetic
/// GTSRB. `full` doubles the dataset and image size.
pub fn paper_config(full: bool) -> ExperimentConfigBuilder {
    let dataset = if full {
        DatasetConfig {
            classes: 43,
            samples_per_class: 100,
            test_per_class: 20,
            image_size: 32,
        }
    } else {
        DatasetConfig {
            classes: 43,
            samples_per_class: 50,
            test_per_class: 10,
            image_size: 16,
        }
    };
    // Double-strength augmentation: the paper's real GTSRB takes hundreds
    // of rounds to converge; the synthetic task needs this intra-class
    // variability to land in the same regime (see EXPERIMENTS.md).
    let hard_augment = {
        let base = gsfl_data::synth::Augment::default();
        gsfl_data::synth::Augment {
            rotation: base.rotation * 2.0,
            translation: base.translation * 2.0,
            scale_jitter: base.scale_jitter * 2.0,
            brightness: base.brightness * 2.0,
            noise_std: base.noise_std * 2.0,
            background_jitter: base.background_jitter,
        }
    };
    let mut b = ExperimentConfig::builder()
        .clients(30)
        .groups(6)
        .batch_size(16)
        .learning_rate(0.05)
        .dataset(dataset)
        .augment(hard_augment)
        .seed(42);
    // Calibration overrides for experimentation, e.g.
    // GSFL_LR=0.02 GSFL_ALPHA=2.0 GSFL_BW_MHZ=20 cargo run …
    if let Ok(lr) = std::env::var("GSFL_LR") {
        if let Ok(lr) = lr.parse() {
            b = b.learning_rate(lr);
        }
    }
    if let Ok(alpha) = std::env::var("GSFL_ALPHA") {
        if let Ok(alpha) = alpha.parse() {
            b = b.partition(gsfl_core::config::PartitionStrategy::Dirichlet(alpha));
        }
    }
    if let Ok(bw) = std::env::var("GSFL_BW_MHZ") {
        if let Ok(bw) = bw.parse() {
            b = b.wireless(gsfl_core::config::WirelessConfig {
                bandwidth_mhz: bw,
                ..gsfl_core::config::WirelessConfig::default()
            });
        }
    }
    if let Ok(h) = std::env::var("GSFL_AUG") {
        if let Ok(scale) = h.parse::<f32>() {
            let base = gsfl_data::synth::Augment::default();
            b = b.augment(gsfl_data::synth::Augment {
                rotation: base.rotation * scale,
                translation: base.translation * scale,
                scale_jitter: base.scale_jitter * scale,
                brightness: base.brightness * scale,
                noise_std: base.noise_std * scale,
                background_jitter: base.background_jitter,
            });
        }
    }
    if let Ok(g) = std::env::var("GSFL_GROUPING") {
        let kind = match g.as_str() {
            "random" => Some(gsfl_core::config::GroupingKind::Random),
            "balanced" => Some(gsfl_core::config::GroupingKind::ComputeBalanced),
            "channel" => Some(gsfl_core::config::GroupingKind::ChannelAware),
            "rr" => Some(gsfl_core::config::GroupingKind::RoundRobin),
            _ => None,
        };
        if let Some(kind) = kind {
            b = b.grouping(kind);
        }
    }
    b
}

/// Prints a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes a result to `target/experiments/<stem>.{csv,json}` and reports
/// the paths.
pub fn save_result(stem: &str, result: &RunResult) {
    let path = experiments_dir().join(stem);
    match result.write_to(&path) {
        Ok(()) => println!(
            "  wrote {} and {}",
            path.with_extension("csv").display(),
            path.with_extension("json").display()
        ),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
}

/// Accuracy series of a run: `(round, cumulative_latency_s, accuracy_pct)`
/// at evaluation rounds.
pub fn accuracy_series(result: &RunResult) -> Vec<(usize, f64, f64)> {
    result
        .records
        .iter()
        .filter_map(|r| {
            r.test_accuracy
                .map(|a| (r.round, r.cumulative_latency_s, a * 100.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_builds() {
        let cfg = paper_config(false).rounds(2).build().unwrap();
        assert_eq!(cfg.clients, 30);
        assert_eq!(cfg.groups, 6);
        assert_eq!(cfg.dataset.classes, 43);
    }

    #[test]
    fn accuracy_series_filters_eval_rounds() {
        use gsfl_core::results::{RoundRecord, RunResult};
        let r = RunResult {
            scheme: "x".into(),
            records: vec![
                RoundRecord {
                    round: 1,
                    round_latency_s: 1.0,
                    cumulative_latency_s: 1.0,
                    train_loss: 0.0,
                    test_accuracy: Some(0.5),
                    bytes_up: 0,
                    bytes_down: 0,
                    bytes_up_raw: 0,
                    bytes_down_raw: 0,
                    client_energy_j: 0.0,
                    retries: 0,
                    wasted_airtime_bytes: 0,
                    lost_clients: 0,
                    backups_activated: 0,
                    quorum_met: true,
                },
                RoundRecord {
                    round: 2,
                    round_latency_s: 1.0,
                    cumulative_latency_s: 2.0,
                    train_loss: 0.0,
                    test_accuracy: None,
                    bytes_up: 0,
                    bytes_down: 0,
                    bytes_up_raw: 0,
                    bytes_down_raw: 0,
                    client_energy_j: 0.0,
                    retries: 0,
                    wasted_airtime_bytes: 0,
                    lost_clients: 0,
                    backups_activated: 0,
                    quorum_met: true,
                },
            ],
            server_storage_bytes: 0,
            param_count: 0,
            wall_clock_s: 0.0,
        };
        let s = accuracy_series(&r);
        assert_eq!(s, vec![(1, 1.0, 50.0)]);
    }
}
