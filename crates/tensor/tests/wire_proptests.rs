//! Decode-hardening proptests for the packed wire format.
//!
//! A receiver must survive arbitrary corruption of a container —
//! truncation, bit flips, forged lengths, oversized declared shapes —
//! with a typed [`TensorError::Wire`] naming the malformed field, never
//! a panic and never an allocation sized from untrusted input. The
//! decoders write only into the caller's destination slice, so the
//! allocation property holds by construction; these tests drive the
//! no-panic and typed-error properties across the corruption space.

use gsfl_tensor::wire::{
    decode_f16, decode_intq, decode_pruned, decode_raw, decode_topk, encode_f16, encode_intq,
    encode_pruned, encode_raw, encode_topk, WireBuf,
};
use gsfl_tensor::{TensorError, Workspace};
use proptest::prelude::*;

/// Every wire decoder, addressable by index so proptest can sweep them.
fn decode_any(which: usize, buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    match which % 5 {
        0 => decode_raw(buf, out),
        1 => decode_f16(buf, out),
        2 => decode_intq(buf, out),
        3 => decode_topk(buf, out),
        _ => decode_pruned(buf, out),
    }
}

/// A valid container for encoder `which` over `n` synthetic scalars.
fn encode_any(which: usize, n: usize, stream: u64) -> WireBuf {
    let values: Vec<f32> = (0..n)
        .map(|i| ((i as u64 * 41 + stream) % 211) as f32 * 0.05 - 5.0)
        .collect();
    let mut ws = Workspace::new();
    let mut buf = WireBuf::new();
    match which % 5 {
        0 => encode_raw(&values, &mut buf),
        1 => encode_f16(&values, &mut buf),
        2 => encode_intq(&values, 2 + (stream % 15) as u32, stream, &mut buf),
        3 => encode_topk(&values, 1 + n / 7, &mut ws, &mut buf),
        _ => encode_pruned(
            &values,
            8,
            1 + n / 24,
            2 + (stream % 15) as u32,
            stream,
            &mut ws,
            &mut buf,
        ),
    }
    buf
}

proptest! {
    #[test]
    fn truncated_containers_fail_typed_not_panic(
        which in 0usize..5,
        n in 1usize..300,
        stream in 0u64..100,
        cut_frac in 0.0f64..1.0,
    ) {
        let buf = encode_any(which, n, stream);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < buf.len());
        let mut short = buf.clone();
        short.bytes_mut().truncate(cut);
        let mut out = vec![0.0f32; n];
        let err = decode_any(which, &short, &mut out)
            .expect_err("a truncated container must not decode");
        // Typed with a field path, and formatted as such.
        match err {
            TensorError::Wire { ref path, .. } => {
                prop_assert!(!path.is_empty(), "path must name the field");
            }
            other => prop_assert!(false, "untyped error: {:?}", other),
        }
    }

    #[test]
    fn bit_flipped_containers_never_panic(
        which in 0usize..5,
        n in 1usize..300,
        stream in 0u64..100,
        byte_salt in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let buf = encode_any(which, n, stream);
        let mut bad = buf.clone();
        let pos = byte_salt % bad.len();
        bad.bytes_mut()[pos] ^= 1 << bit;
        let mut out = vec![0.0f32; n];
        // A flip may still decode (e.g. inside a value) — what it must
        // never do is panic; on failure the error must be typed.
        if let Err(err) = decode_any(which, &bad, &mut out) {
            prop_assert!(
                matches!(err, TensorError::Wire { .. }),
                "corruption must surface as TensorError::Wire, got {err:?}"
            );
        }
    }

    #[test]
    fn oversized_declared_shapes_fail_the_destination_check(
        which in 1usize..5, // raw is headerless: no declared shape
        n in 1usize..64,
        stream in 0u64..100,
        claimed in 0u64..u64::MAX,
    ) {
        let buf = encode_any(which, n, stream);
        prop_assume!(claimed != n as u64);
        // Rewrite the varint numel (offset 4) to a forged claim —
        // including absurd ones that would be fatal if the decoder
        // allocated from them.
        let mut forged_bytes = buf.as_bytes()[..4].to_vec();
        let mut v = claimed;
        while v >= 0x80 {
            forged_bytes.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        forged_bytes.push(v as u8);
        // Keep the original payload after the original numel varint.
        let mut skip = 4;
        while buf.as_bytes()[skip] & 0x80 != 0 {
            skip += 1;
        }
        skip += 1;
        forged_bytes.extend_from_slice(&buf.as_bytes()[skip..]);
        let forged = WireBuf::from_vec(forged_bytes);
        let mut out = vec![0.0f32; n];
        let err = decode_any(which, &forged, &mut out)
            .expect_err("a forged element count must not decode");
        match err {
            TensorError::Wire { ref path, .. } => {
                prop_assert_eq!(path.as_str(), "shape.numel");
            }
            other => prop_assert!(false, "untyped error: {:?}", other),
        }
    }

    #[test]
    fn appended_garbage_is_rejected(
        which in 1usize..5, // raw already length-checks exactly
        n in 1usize..128,
        stream in 0u64..100,
        extra in 1usize..16,
    ) {
        let buf = encode_any(which, n, stream);
        let mut long = buf.clone();
        long.bytes_mut().extend(std::iter::repeat_n(0xAB, extra));
        let mut out = vec![0.0f32; n];
        let err = decode_any(which, &long, &mut out)
            .expect_err("trailing bytes must not decode");
        let typed = matches!(err, TensorError::Wire { .. });
        prop_assert!(typed, "expected a typed wire error, got {:?}", err);
    }

    #[test]
    fn wrong_decoder_is_rejected_at_the_dtype_tag(
        enc in 1usize..5,
        dec in 1usize..5,
        n in 1usize..128,
        stream in 0u64..100,
    ) {
        prop_assume!(enc != dec);
        let buf = encode_any(enc, n, stream);
        let mut out = vec![0.0f32; n];
        let err = decode_any(dec, &buf, &mut out)
            .expect_err("dtype mismatch must not decode");
        match err {
            TensorError::Wire { ref path, .. } => {
                prop_assert_eq!(path.as_str(), "header.dtype");
            }
            other => prop_assert!(false, "untyped error: {:?}", other),
        }
    }

    #[test]
    fn valid_containers_always_decode(
        which in 0usize..5,
        n in 1usize..300,
        stream in 0u64..100,
    ) {
        let buf = encode_any(which, n, stream);
        let mut out = vec![7.0f32; n];
        decode_any(which, &buf, &mut out).expect("an honest container decodes");
        prop_assert!(out.iter().all(|x| x.is_finite()), "finite payloads decode finite");
    }
}
