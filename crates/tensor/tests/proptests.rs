//! Property-based tests for the tensor substrate.

use gsfl_tensor::{io, matmul, rng::SeedDerive, Shape, Tensor};
use proptest::prelude::*;

/// Strategy: a shape with rank 1–4 and small extents.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..=4)
}

/// Strategy: a tensor with bounded values over a generated shape.
fn tensor_strategy() -> impl Strategy<Value = Tensor> {
    shape_strategy().prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        prop::collection::vec(-100.0f32..100.0, n)
            .prop_map(move |data| Tensor::from_vec(data, &dims).unwrap())
    })
}

proptest! {
    #[test]
    fn offset_unravel_bijection(dims in shape_strategy(), salt in 0usize..1000) {
        let s = Shape::new(&dims);
        let off = salt % s.numel();
        let idx = s.unravel(off).unwrap();
        prop_assert_eq!(s.offset(&idx), Some(off));
    }

    #[test]
    fn add_commutes(t in tensor_strategy()) {
        let u = t.map(|x| x * 0.5 - 1.0);
        let ab = t.add(&u).unwrap();
        let ba = u.add(&t).unwrap();
        prop_assert!(ab.approx_eq(&ba, 0.0));
    }

    #[test]
    fn sub_then_add_round_trips(t in tensor_strategy()) {
        let u = t.map(|x| x.sin() * 10.0);
        let back = t.sub(&u).unwrap().add(&u).unwrap();
        prop_assert!(back.approx_eq(&t, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add(t in tensor_strategy(), k in -3.0f32..3.0) {
        let u = t.map(|x| x * 0.25 + 2.0);
        let lhs = t.add(&u).unwrap().scale(k);
        let rhs = t.scale(k).add(&u.scale(k)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn io_round_trip(t in tensor_strategy()) {
        let back = io::decode(&io::encode(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn matmul_identity_neutral(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = SeedDerive::new(seed).rng();
        use rand::Rng;
        let a = Tensor::from_fn(&[rows, cols], |_| rng.gen_range(-5.0..5.0));
        let left = matmul::matmul(&Tensor::eye(rows), &a).unwrap();
        let right = matmul::matmul(&a, &Tensor::eye(cols)).unwrap();
        prop_assert!(left.approx_eq(&a, 1e-5));
        prop_assert!(right.approx_eq(&a, 1e-5));
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = SeedDerive::new(seed).child("t").rng();
        use rand::Rng;
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0..2.0));
        let lhs = matmul::matmul(&a, &b).unwrap().transpose2d().unwrap();
        let rhs = matmul::matmul(&b.transpose2d().unwrap(), &a.transpose2d().unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn slice_concat_round_trip(t in tensor_strategy(), cut_frac in 0.0f64..1.0) {
        let lead = t.dims()[0];
        let cut = ((lead as f64) * cut_frac) as usize;
        let a = t.slice_axis0(0..cut).unwrap();
        let b = t.slice_axis0(cut..lead).unwrap();
        let joined = Tensor::concat_axis0(&[&a, &b]).unwrap();
        prop_assert_eq!(joined, t);
    }

    #[test]
    fn seed_paths_never_collide_locally(seed in 0u64..u64::MAX / 2, i in 0u64..512, j in 0u64..512) {
        prop_assume!(i != j);
        let root = SeedDerive::new(seed);
        prop_assert_ne!(root.index(i).seed(), root.index(j).seed());
    }
}
