//! Property-based tests for the tensor substrate, including the
//! fast-vs-reference kernel equivalence suite: the blocked/threaded
//! GEMM and the batched im2col convolution must reproduce the preserved
//! naive kernels — bit-exactly wherever the fast path keeps the same
//! per-element reduction order (plain/transposed matmul, conv forward,
//! conv input/bias gradients), within epsilon where it regroups the sum
//! (the batched conv weight gradient).

use gsfl_tensor::{conv, io, matmul, reference, rng::SeedDerive, Shape, Tensor};
use proptest::prelude::*;

/// Relative-ish tolerance check for gradients whose reduction order
/// legitimately differs between kernels.
fn close_rel(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data()).all(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        })
}

/// Strategy: a shape with rank 1–4 and small extents.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..=4)
}

/// Strategy: a tensor with bounded values over a generated shape.
fn tensor_strategy() -> impl Strategy<Value = Tensor> {
    shape_strategy().prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        prop::collection::vec(-100.0f32..100.0, n)
            .prop_map(move |data| Tensor::from_vec(data, &dims).unwrap())
    })
}

proptest! {
    #[test]
    fn offset_unravel_bijection(dims in shape_strategy(), salt in 0usize..1000) {
        let s = Shape::new(&dims);
        let off = salt % s.numel();
        let idx = s.unravel(off).unwrap();
        prop_assert_eq!(s.offset(&idx), Some(off));
    }

    #[test]
    fn add_commutes(t in tensor_strategy()) {
        let u = t.map(|x| x * 0.5 - 1.0);
        let ab = t.add(&u).unwrap();
        let ba = u.add(&t).unwrap();
        prop_assert!(ab.approx_eq(&ba, 0.0));
    }

    #[test]
    fn sub_then_add_round_trips(t in tensor_strategy()) {
        let u = t.map(|x| x.sin() * 10.0);
        let back = t.sub(&u).unwrap().add(&u).unwrap();
        prop_assert!(back.approx_eq(&t, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add(t in tensor_strategy(), k in -3.0f32..3.0) {
        let u = t.map(|x| x * 0.25 + 2.0);
        let lhs = t.add(&u).unwrap().scale(k);
        let rhs = t.scale(k).add(&u.scale(k)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn io_round_trip(t in tensor_strategy()) {
        let back = io::decode(&io::encode(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn matmul_identity_neutral(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = SeedDerive::new(seed).rng();
        use rand::Rng;
        let a = Tensor::from_fn(&[rows, cols], |_| rng.gen_range(-5.0..5.0));
        let left = matmul::matmul(&Tensor::eye(rows), &a).unwrap();
        let right = matmul::matmul(&a, &Tensor::eye(cols)).unwrap();
        prop_assert!(left.approx_eq(&a, 1e-5));
        prop_assert!(right.approx_eq(&a, 1e-5));
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = SeedDerive::new(seed).child("t").rng();
        use rand::Rng;
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0..2.0));
        let lhs = matmul::matmul(&a, &b).unwrap().transpose2d().unwrap();
        let rhs = matmul::matmul(&b.transpose2d().unwrap(), &a.transpose2d().unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn slice_concat_round_trip(t in tensor_strategy(), cut_frac in 0.0f64..1.0) {
        let lead = t.dims()[0];
        let cut = ((lead as f64) * cut_frac) as usize;
        let a = t.slice_axis0(0..cut).unwrap();
        let b = t.slice_axis0(cut..lead).unwrap();
        let joined = Tensor::concat_axis0(&[&a, &b]).unwrap();
        prop_assert_eq!(joined, t);
    }

    #[test]
    fn seed_paths_never_collide_locally(seed in 0u64..u64::MAX / 2, i in 0u64..512, j in 0u64..512) {
        prop_assume!(i != j);
        let root = SeedDerive::new(seed);
        prop_assert_ne!(root.index(i).seed(), root.index(j).seed());
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive(
        m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000
    ) {
        let mut rng = SeedDerive::new(seed).child("gemm").rng();
        use rand::Rng;
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-3.0..3.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-3.0..3.0));
        let fast = matmul::matmul(&a, &b).unwrap();
        let naive = reference::matmul(&a, &b).unwrap();
        // Same ascending-k reduction per element ⇒ exact f32 equality.
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn threaded_matmul_bit_identical_to_naive(seed in 0u64..50) {
        // Shapes above the parallel threshold; with multiple hardware
        // threads this exercises the row-partitioned path, which must
        // not change a single bit.
        let mut rng = SeedDerive::new(seed).child("gemm-par").rng();
        use rand::Rng;
        let (m, k, n) = (96usize, 48usize, 72usize);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-3.0..3.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-3.0..3.0));
        let fast = matmul::matmul(&a, &b).unwrap();
        let naive = reference::matmul(&a, &b).unwrap();
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn transposed_matmuls_bit_identical_to_naive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let mut rng = SeedDerive::new(seed).child("gemm-t").rng();
        use rand::Rng;
        // Aᵀ·B with A:[k×m], B:[k×n].
        let a = Tensor::from_fn(&[k, m], |_| rng.gen_range(-3.0..3.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-3.0..3.0));
        let fast = matmul::matmul_at_b(&a, &b).unwrap();
        let naive = reference::matmul_at_b(&a, &b).unwrap();
        prop_assert_eq!(fast.data(), naive.data());
        // A·Bᵀ with A:[m×k], B:[n×k].
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-3.0..3.0));
        let b = Tensor::from_fn(&[n, k], |_| rng.gen_range(-3.0..3.0));
        let fast = matmul::matmul_a_bt(&a, &b).unwrap();
        let naive = reference::matmul_a_bt(&a, &b).unwrap();
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn batched_conv_forward_bit_identical_to_per_sample(
        n in 1usize..5, c_in in 1usize..4, hw in 3usize..10, c_out in 1usize..5,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..500
    ) {
        let mut rng = SeedDerive::new(seed).child("conv").rng();
        use rand::Rng;
        let input = Tensor::from_fn(&[n, c_in, hw, hw], |_| rng.gen_range(-2.0..2.0));
        let weight = Tensor::from_fn(&[c_out, c_in, 3, 3], |_| rng.gen_range(-1.0..1.0));
        let bias = Tensor::from_fn(&[c_out], |_| rng.gen_range(-0.5..0.5));
        let fast = conv::conv2d_forward(&input, &weight, &bias, stride, pad).unwrap();
        let naive = reference::conv2d_forward(&input, &weight, &bias, stride, pad).unwrap();
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn batched_conv_backward_matches_per_sample(
        n in 1usize..5, c_in in 1usize..4, hw in 3usize..9, c_out in 1usize..4,
        seed in 0u64..500
    ) {
        let mut rng = SeedDerive::new(seed).child("conv-bwd").rng();
        use rand::Rng;
        let input = Tensor::from_fn(&[n, c_in, hw, hw], |_| rng.gen_range(-2.0..2.0));
        let weight = Tensor::from_fn(&[c_out, c_in, 3, 3], |_| rng.gen_range(-1.0..1.0));
        let bias = Tensor::zeros(&[c_out]);
        let out = conv::conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::from_fn(out.dims(), |_| rng.gen_range(-1.0..1.0));
        let (gx, gw, gb) = conv::conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let (rx, rw, rb) = reference::conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        // Input and bias gradients keep the reference reduction order.
        prop_assert_eq!(gx.data(), rx.data());
        prop_assert_eq!(gb.data(), rb.data());
        // The batch-wide dW GEMM regroups the f32 sum: epsilon, not bits.
        prop_assert!(close_rel(&gw, &rw, 1e-4), "dW diverged beyond epsilon");
    }
}
