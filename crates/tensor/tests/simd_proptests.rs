//! SIMD-vs-scalar equivalence proptests for every kernel ported onto
//! the runtime-dispatched lanes in `gsfl_tensor::simd`.
//!
//! Two contracts are pinned, per the dispatch layer's documentation:
//!
//! * **Bit-identical** — GEMM, the fp16 round trip (including NaN,
//!   denormal, and ±inf inputs), IntQ encode/decode bytes, and TopK
//!   selection (including all-equal-magnitude ties) must produce the
//!   same bits/bytes on the AVX2 tier as on the scalar tier.
//! * **Epsilon-contracted** — the conv-dW long-dot GEMM regroups its
//!   reduction (FMA accumulators), so it is pinned within relative
//!   epsilon of the scalar lane kernel.
//!
//! On hosts without AVX2/FMA/F16C every pair degenerates to
//! scalar-vs-scalar and the suite passes trivially — the CI
//! `GSFL_SIMD=scalar` matrix leg covers that path explicitly.

use gsfl_tensor::matmul::{gemm_a_bt_with_isa, gemm_with_isa};
use gsfl_tensor::quant::{
    fp16_roundtrip_with_isa, intq_roundtrip_with_isa, topk_indices_with_isa, topk_mask_with_isa,
};
use gsfl_tensor::simd::Isa;
use gsfl_tensor::wire::{
    decode_f16_with_isa, decode_intq_with_isa, encode_f16_with_isa, encode_intq_with_isa,
    encode_topk_with_isa, WireBuf,
};
use gsfl_tensor::Workspace;
use proptest::prelude::*;

/// Interesting f32 bit patterns for the fp16 edge sweep: signed zeros,
/// ±inf, quiet/signaling NaNs with payloads, f32 and f16 subnormal
/// territory, halfway-rounding cases, and overflow-to-inf magnitudes.
const EDGE_BITS: [u32; 14] = [
    0x0000_0000, // +0
    0x8000_0000, // −0
    0x7F80_0000, // +inf
    0xFF80_0000, // −inf
    0x7FC0_0000, // canonical qNaN
    0x7FC1_2345, // qNaN with payload
    0xFFA0_0001, // sNaN pattern with payload
    0x0000_0001, // smallest f32 subnormal
    0x0040_0000, // mid f32 subnormal
    0x3380_0000, // 2^-24 (smallest f16 subnormal)
    0x3300_0000, // 2^-25 (underflow tie)
    0x477F_E000, // 65504 (f16 max)
    0x477F_F000, // just over f16 max (rounds to inf)
    0x4780_0000, // 65536 (overflow)
];

/// Builds an edge-heavy f32 vector: selector `< EDGE_BITS.len()` picks
/// that edge pattern, anything else takes the paired arbitrary bits.
fn edge_values(sel: &[usize], raw: &[u32]) -> Vec<f32> {
    sel.iter()
        .zip(raw)
        .map(|(&s, &r)| f32::from_bits(if s < EDGE_BITS.len() { EDGE_BITS[s] } else { r }))
        .collect()
}

fn f32_vec(len: impl Strategy<Value = usize>) -> impl Strategy<Value = Vec<f32>> {
    len.prop_flat_map(|n| prop::collection::vec(-100.0f32..100.0, n..=n))
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

proptest! {
    // ---------------------------------------------------------------
    // GEMM: bit-identical (lanes across columns, ascending-k order)
    // ---------------------------------------------------------------

    #[test]
    fn gemm_avx2_is_bit_identical_to_scalar(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i as u64).wrapping_mul(seed + 37) % 1000) as f32 - 500.0) * 0.013)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((i as u64).wrapping_mul(seed + 53) % 1000) as f32 - 500.0) * 0.007)
            .collect();
        let mut fast = vec![0.0f32; m * n];
        gemm_with_isa(Isa::Avx2, m, k, n, &a, &b, &mut fast);
        let mut slow = vec![0.0f32; m * n];
        gemm_with_isa(Isa::Scalar, m, k, n, &a, &b, &mut slow);
        prop_assert!(bits_eq(&fast, &slow), "GEMM must be bit-identical across ISAs");
    }

    // ---------------------------------------------------------------
    // Conv dW long-dot: epsilon-contracted (FMA regroups the sum)
    // ---------------------------------------------------------------

    #[test]
    fn dw_long_dot_is_epsilon_close_across_isas(
        m in 1usize..4,
        k in 1usize..300,
        n in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i as u64).wrapping_mul(seed + 11) % 997) as f32 - 498.0) * 0.004)
            .collect();
        let b: Vec<f32> = (0..n * k)
            .map(|i| (((i as u64).wrapping_mul(seed + 29) % 991) as f32 - 495.0) * 0.003)
            .collect();
        let mut fast = vec![0.0f32; m * n];
        gemm_a_bt_with_isa(Isa::Avx2, m, k, n, &a, &b, &mut fast);
        let mut slow = vec![0.0f32; m * n];
        gemm_a_bt_with_isa(Isa::Scalar, m, k, n, &a, &b, &mut slow);
        for (x, y) in fast.iter().zip(&slow) {
            let scale = x.abs().max(y.abs()).max(1.0);
            prop_assert!(
                (x - y).abs() <= 1e-4 * scale,
                "dW dot drifted past the epsilon contract: {} vs {}", x, y
            );
        }
    }

    // ---------------------------------------------------------------
    // fp16: bit-identical including NaN payloads, denormals, ±inf
    // ---------------------------------------------------------------

    #[test]
    fn fp16_roundtrip_is_bit_identical_on_edge_inputs(
        sel in prop::collection::vec(0usize..2 * EDGE_BITS.len(), 1..64),
        raw in prop::collection::vec(0u32..=u32::MAX, 64..=64),
    ) {
        let src = edge_values(&sel, &raw);
        let mut fast = src.clone();
        fp16_roundtrip_with_isa(Isa::Avx2, &mut fast);
        let mut slow = src.clone();
        fp16_roundtrip_with_isa(Isa::Scalar, &mut slow);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "lane {} ({:#010x}): {} vs {}", i, src[i].to_bits(), x, y
            );
        }
    }

    #[test]
    fn f16_wire_container_is_byte_identical_on_edge_inputs(
        sel in prop::collection::vec(0usize..2 * EDGE_BITS.len(), 1..64),
        raw in prop::collection::vec(0u32..=u32::MAX, 64..=64),
    ) {
        let src = edge_values(&sel, &raw);
        let mut fast = WireBuf::new();
        encode_f16_with_isa(Isa::Avx2, &src, &mut fast);
        let mut slow = WireBuf::new();
        encode_f16_with_isa(Isa::Scalar, &src, &mut slow);
        prop_assert_eq!(fast.as_bytes(), slow.as_bytes(), "encode bytes must match");
        let mut out_fast = vec![0.0f32; src.len()];
        decode_f16_with_isa(Isa::Avx2, &fast, &mut out_fast).unwrap();
        let mut out_slow = vec![0.0f32; src.len()];
        decode_f16_with_isa(Isa::Scalar, &slow, &mut out_slow).unwrap();
        for (x, y) in out_fast.iter().zip(&out_slow) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "decode must preserve payload bits");
        }
    }

    // ---------------------------------------------------------------
    // IntQ: wire bytes exactly equal; in-place round trip bit-equal on
    // finite lanes, NaN-tolerant on NaN lanes (floor may rewrite the
    // payload, which the wire format never exposes)
    // ---------------------------------------------------------------

    #[test]
    fn intq_wire_container_is_byte_identical(
        values in f32_vec(1usize..600),
        bits in 2u32..=16,
        stream in 0u64..1_000,
    ) {
        let mut fast = WireBuf::new();
        encode_intq_with_isa(Isa::Avx2, &values, bits, stream, &mut fast);
        let mut slow = WireBuf::new();
        encode_intq_with_isa(Isa::Scalar, &values, bits, stream, &mut slow);
        prop_assert_eq!(fast.as_bytes(), slow.as_bytes(), "encode bytes must match");
        let mut out_fast = vec![0.0f32; values.len()];
        decode_intq_with_isa(Isa::Avx2, &fast, &mut out_fast).unwrap();
        let mut out_slow = vec![0.0f32; values.len()];
        decode_intq_with_isa(Isa::Scalar, &slow, &mut out_slow).unwrap();
        prop_assert!(bits_eq(&out_fast, &out_slow), "decoded tensors must match");
    }

    #[test]
    fn intq_roundtrip_matches_across_isas(
        values in f32_vec(1usize..600),
        bits in 2u32..=16,
        stream in 0u64..1_000,
        nan_sel in 0usize..1_200,
    ) {
        let mut src = values;
        // Half the cases poison one element with NaN: the scale fold
        // must ignore it and the lane itself must stay NaN on both
        // tiers.
        if nan_sel < 600 {
            let i = nan_sel % src.len();
            src[i] = f32::NAN;
        }
        let mut fast = src.clone();
        intq_roundtrip_with_isa(Isa::Avx2, &mut fast, bits, stream);
        let mut slow = src.clone();
        intq_roundtrip_with_isa(Isa::Scalar, &mut slow, bits, stream);
        prop_assert!(
            bits_eq(&fast, &slow),
            "in-place round trip must match (NaN lanes NaN on both tiers)"
        );
    }

    // ---------------------------------------------------------------
    // TopK: identical survivor sets, including all-equal-magnitude ties
    // ---------------------------------------------------------------

    #[test]
    fn topk_mask_matches_across_isas(values in f32_vec(1usize..400), kf in 0.0f64..1.0) {
        let k = ((values.len() as f64) * kf) as usize;
        let mut ws = Workspace::new();
        let mut fast = values.clone();
        topk_mask_with_isa(Isa::Avx2, &mut fast, k, &mut ws);
        let mut slow = values.clone();
        topk_mask_with_isa(Isa::Scalar, &mut slow, k, &mut ws);
        prop_assert!(bits_eq(&fast, &slow), "survivor sets must match");
    }

    #[test]
    fn topk_all_equal_magnitude_ties_resolve_identically(
        n in 1usize..300,
        k in 1usize..300,
        mag in 0.25f32..8.0,
        signs in prop::collection::vec(0u32..2, 300..=300),
    ) {
        // Every element has the same magnitude: the entire slice is one
        // big threshold tie, the adversarial case for the vectorized
        // above-threshold count.
        let values: Vec<f32> = signs[..n]
            .iter()
            .map(|&s| if s == 1 { mag } else { -mag })
            .collect();
        let mut ws = Workspace::new();
        let mut fast = values.clone();
        topk_mask_with_isa(Isa::Avx2, &mut fast, k, &mut ws);
        let mut slow = values.clone();
        topk_mask_with_isa(Isa::Scalar, &mut slow, k, &mut ws);
        prop_assert!(bits_eq(&fast, &slow), "tie resolution must match");
        // The kept set must be the first min(k, n) indices (ascending
        // tie resolution), unless k >= n (no-op).
        if k < n {
            for (i, v) in fast.iter().enumerate() {
                prop_assert_eq!(*v != 0.0, i < k, "index {} kept-state wrong", i);
            }
        }
        // And the index-selection twin agrees.
        let mut idx_fast = Vec::new();
        topk_indices_with_isa(Isa::Avx2, &values, k.max(1), &mut ws, &mut idx_fast);
        let mut idx_slow = Vec::new();
        topk_indices_with_isa(Isa::Scalar, &values, k.max(1), &mut ws, &mut idx_slow);
        prop_assert_eq!(idx_fast, idx_slow);
    }

    #[test]
    fn topk_wire_container_is_byte_identical(
        values in f32_vec(2usize..400),
        kf in 0.0f64..1.0,
    ) {
        let k = (((values.len() as f64) * kf) as usize).max(1);
        let mut ws = Workspace::new();
        let mut fast = WireBuf::new();
        encode_topk_with_isa(Isa::Avx2, &values, k, &mut ws, &mut fast);
        let mut slow = WireBuf::new();
        encode_topk_with_isa(Isa::Scalar, &values, k, &mut ws, &mut slow);
        prop_assert_eq!(fast.as_bytes(), slow.as_bytes());
    }
}
