use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public function in this crate that can fail returns
/// [`TensorError`]; the variants carry enough context to diagnose shape
/// mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the buffer.
    ElementCountMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually present.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// Operation that failed.
        op: &'static str,
    },
    /// A tensor had the wrong rank (number of dimensions) for an operation.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank of the tensor passed in.
        actual: usize,
        /// Operation that failed.
        op: &'static str,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// padded input).
    InvalidGeometry(String),
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// Byte buffer could not be decoded into a tensor.
    Decode(String),
    /// A packed wire container failed to decode. Unlike [`TensorError::Decode`]
    /// this names the malformed field by dotted path (e.g.
    /// `topk.indices[3]`), in the style of trace validation errors.
    Wire {
        /// Dotted path of the offending container field.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// An argument failed validation (e.g. zero-sized dimension where
    /// positive is required).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCountMismatch { expected, actual } => write!(
                f,
                "element count mismatch: shape implies {expected} elements, buffer has {actual}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "rank mismatch in {op}: expected {expected}, got {actual}"),
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} cols, right has {right_rows} rows"
            ),
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::Decode(msg) => write!(f, "decode error: {msg}"),
            TensorError::Wire { path, reason } => {
                write!(f, "wire decode error at {path}: {reason}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
