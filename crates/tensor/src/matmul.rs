//! Blocked, register-tiled, optionally multithreaded GEMM kernels.
//!
//! All kernels operate on 2-D [`Tensor`]s. The main entry point is
//! [`matmul`]; the transposed variants avoid the dot-product-style access
//! patterns of backward passes by materializing the transposed operand in
//! scratch space and reusing the one fast kernel:
//!
//! * [`matmul`]        — `C = A · B`
//! * [`matmul_at_b`]   — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`]   — `C = A · Bᵀ` (input gradients)
//!
//! Each has a `_ws` twin that draws its output (and the transpose
//! scratch) from a caller [`Workspace`] instead of allocating.
//!
//! # Kernel design
//!
//! The serial kernel processes `MR×NR` output tiles: the tile lives in
//! registers while the full `k` extent streams through it, broadcasting
//! `A` elements against unit-stride `B` row segments. Crucially, every
//! output element still accumulates its products in ascending-`k` order,
//! so results are **bit-identical** to the historical naive `i-k-j` loop
//! ([`crate::reference::matmul`]) for all finite inputs — the golden
//! fixtures and determinism suites keep passing while the kernel runs
//! several times faster (C is written once instead of `k` times, and the
//! dense-data-hostile `a == 0.0` branch is gone).
//!
//! Shapes with enough work additionally split by *rows* across host
//! threads from the shared [`crate::threading`] budget. Row partitioning
//! never changes what is computed for any element, so the threaded path
//! is bit-identical to the serial one regardless of thread count.

use crate::kernel::{dispatch, Dispatch};
use crate::simd::{self, Isa};
use crate::threading::request_threads;
use crate::workspace::Workspace;
use crate::{Result, Tensor, TensorError};

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile.
const NR: usize = 16;
/// Minimum `m·k·n` before the row-threaded path is considered.
const PAR_WORK_THRESHOLD: usize = 1 << 18;
/// Maximum fan-out the GEMM will request from the thread budget.
const PAR_MAX_THREADS: usize = 8;

/// `MR_ × NR_` register-tile microkernel: every output element of the
/// tile accumulates `a[i][kk] · b[kk][j]` for `kk` ascending, then is
/// stored exactly once.
#[inline(always)]
fn microkernel<const MR_: usize, const NR_: usize>(
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; NR_]; MR_];
    for kk in 0..k {
        let b_seg = &b[kk * n + j0..kk * n + j0 + NR_];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let aik = a[(i0 + r) * k + kk];
            for (av, &bv) in acc_row.iter_mut().zip(b_seg) {
                *av += aik * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR_].copy_from_slice(acc_row);
    }
}

/// Runs one `NR_`-wide column panel down every row band. The panel of
/// `B` (`k × NR_`) stays cache-hot while each band of `A` streams
/// through it.
#[inline(always)]
fn col_panel<const NR_: usize>(
    j0: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let mut i0 = 0;
    while i0 + MR <= m {
        microkernel::<MR, NR_>(i0, j0, k, n, a, b, out);
        i0 += MR;
    }
    while i0 < m {
        microkernel::<1, NR_>(i0, j0, k, n, a, b, out);
        i0 += 1;
    }
}

/// Serial blocked GEMM: `out[m×n] = a[m×k] · b[k×n]`, overwriting `out`.
///
/// On a vector ISA, [`simd::gemm_main`] first covers every full
/// vector-width column panel (lanes across columns — the per-element
/// ascending-`k` reduction order is preserved, so the result stays
/// bit-identical), and the historical scalar panels finish the
/// sub-vector edge. On the scalar tier `gemm_main` consumes nothing and
/// the panels below are the entire (unchanged) kernel.
fn gemm_serial(isa: Isa, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut j0 = simd::gemm_main(isa, m, k, n, a, b, out);
    while j0 + NR <= n {
        col_panel::<NR>(j0, m, k, n, a, b, out);
        j0 += NR;
    }
    while j0 + 8 <= n {
        col_panel::<8>(j0, m, k, n, a, b, out);
        j0 += 8;
    }
    while j0 + 4 <= n {
        col_panel::<4>(j0, m, k, n, a, b, out);
        j0 += 4;
    }
    while j0 < n {
        col_panel::<1>(j0, m, k, n, a, b, out);
        j0 += 1;
    }
}

/// Blocked GEMM with a row-partitioned multithreaded path for large
/// shapes. Bit-identical to [`gemm_serial`] for any thread count.
fn gemm(isa: Isa, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    if m * k * n >= PAR_WORK_THRESHOLD && m >= 2 {
        let grant = request_threads(PAR_MAX_THREADS.min(m));
        let threads = grant.threads().min(m);
        if threads > 1 {
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut row = 0;
                for t in 0..threads {
                    let rows = (m - row).div_ceil(threads - t);
                    let (chunk, tail) = rest.split_at_mut(rows * n);
                    rest = tail;
                    let a_band = &a[row * k..(row + rows) * k];
                    if t + 1 == threads {
                        // The caller's own thread takes the last band.
                        gemm_serial(isa, rows, k, n, a_band, b, chunk);
                    } else {
                        scope.spawn(move || gemm_serial(isa, rows, k, n, a_band, b, chunk));
                    }
                    row += rows;
                }
            });
            return;
        }
    }
    gemm_serial(isa, m, k, n, a, b, out);
}

/// Serial raw-slice GEMM pinned to an explicit ISA tier. Benchmark
/// hook — the library's own entries resolve their tier via
/// [`dispatch`](crate::kernel::dispatch) instead.
#[doc(hidden)]
pub fn gemm_with_isa(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    gemm_serial(isa, m, k, n, a, b, out);
}

/// Writes the transpose of the row-major `rows × cols` matrix `src` into
/// `dst` (which becomes `cols × rows`), in cache-blocked tiles. Shared
/// with the convolution lowering.
pub(crate) fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TILE: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TILE).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

fn check_inner(k: usize, k2: usize) -> Result<()> {
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    Ok(())
}

/// `C = A · B` for 2-D tensors `A: [m×k]`, `B: [k×n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when inner dimensions disagree.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{Tensor, matmul::matmul};
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut ws = Workspace::new();
    matmul_ws(a, b, &mut ws)
}

/// [`matmul`] drawing its output buffer from `ws`.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
    let d = dispatch();
    if d == Dispatch::Reference {
        return crate::reference::matmul(a, b);
    }
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    check_inner(k, k2)?;
    let mut out = ws.take(m * n);
    gemm(d.isa(), m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A: [k×m]`, `B: [k×n]`.
///
/// This is the shape of the weight-gradient computation
/// `dW = Xᵀ · dY` in a dense layer. `Aᵀ` is materialized in scratch space
/// so the multiply itself runs on the fast kernel.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut ws = Workspace::new();
    matmul_at_b_ws(a, b, &mut ws)
}

/// [`matmul_at_b`] drawing scratch and output from `ws`.
///
/// # Errors
///
/// Same conditions as [`matmul_at_b`].
pub fn matmul_at_b_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
    let d = dispatch();
    if d == Dispatch::Reference {
        return crate::reference::matmul_at_b(a, b);
    }
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    check_inner(k, k2)?;
    let mut at = ws.take(m * k);
    transpose_into(a.data(), k, m, &mut at);
    let mut out = ws.take(m * n);
    gemm(d.isa(), m, k, n, &at, b.data(), &mut out);
    ws.give(at);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A: [m×k]`, `B: [n×k]`.
///
/// This is the shape of the dense forward (`Y = X · Wᵀ`) and
/// input-gradient computations. `Bᵀ` is materialized in scratch space so
/// the multiply itself runs on the fast kernel instead of the scalar
/// dot-product loop the naive variant needs.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut ws = Workspace::new();
    matmul_a_bt_ws(a, b, &mut ws)
}

/// [`matmul_a_bt`] drawing scratch and output from `ws`.
///
/// # Errors
///
/// Same conditions as [`matmul_a_bt`].
pub fn matmul_a_bt_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
    let d = dispatch();
    if d == Dispatch::Reference {
        return crate::reference::matmul_a_bt(a, b);
    }
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    check_inner(k, k2)?;
    let mut bt = ws.take(n * k);
    transpose_into(b.data(), n, k, &mut bt);
    let mut out = ws.take(m * n);
    gemm(d.isa(), m, k, n, a.data(), &bt, &mut out);
    ws.give(bt);
    Tensor::from_vec(out, &[m, n])
}

/// Raw-slice GEMM for callers that manage their own layouts (the batched
/// convolution lowering). `out` is fully overwritten. Same kernel — and
/// therefore the same per-element reduction order — as [`matmul`]. The
/// caller resolves the dispatch tier once at its own entry and passes
/// the ISA down.
pub(crate) fn gemm_into(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    gemm(isa, m, k, n, a, b, out);
}

/// Lanes of the chunked dot-product reduction in [`gemm_a_bt_into`].
const DOT_LANES: usize = 8;

/// Deterministic lane-chunked dot product: 8 interleaved partial sums
/// over the bulk, folded in fixed lane order, remainder appended
/// sequentially. Vectorizes where a sequential reduction cannot.
#[inline]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; DOT_LANES];
    let mut ca = a.chunks_exact(DOT_LANES);
    let mut cb = b.chunks_exact(DOT_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += xa[l] * xb[l];
        }
    }
    let mut acc = 0.0f32;
    for &lane in &lanes {
        acc += lane;
    }
    for (&xa, &xb) in ca.remainder().iter().zip(cb.remainder()) {
        acc += xa * xb;
    }
    acc
}

/// Raw-slice `out[m×n] = a[m×k] · b[n×k]ᵀ` via a long-dot kernel — the
/// right shape for long-`k`, small-`m×n` reductions (the batched conv
/// weight gradient), where it beats transpose-then-GEMM. Deterministic
/// for a fixed ISA, but the reduction order is lane-interleaved (scalar
/// tier: [`dot_lanes`]) or FMA-regrouped (AVX2:
/// [`simd::dot_long`]) rather than ascending-`k` — the
/// epsilon-contracted class.
pub(crate) fn gemm_a_bt_into(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let dot: fn(&[f32], &[f32]) -> f32 = match isa {
        Isa::Avx2 => simd::dot_long,
        Isa::Scalar => dot_lanes,
    };
    for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (b_row, o) in b.chunks_exact(k).zip(out_row.iter_mut()) {
            *o = dot(a_row, b_row);
        }
    }
}

/// Raw-slice `A · Bᵀ` long-dot GEMM pinned to an explicit ISA tier.
/// Benchmark hook for the conv weight-gradient comparison.
#[doc(hidden)]
pub fn gemm_a_bt_with_isa(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    gemm_a_bt_into(isa, m, k, n, a, b, out);
}

/// Matrix–vector product `y = A · x` for `A: [m×k]`, `x: [k]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on malformed inputs.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
            op: "matvec",
        });
    }
    if x.numel() != k {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: x.numel(),
        });
    }
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (o, row) in out.iter_mut().zip(ad.chunks_exact(k)) {
        let mut acc = 0.0f32;
        for (&av, &xv) in row.iter().zip(xd) {
            acc += av * xv;
        }
        *o = acc;
    }
    Tensor::from_vec(out, &[m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix().unwrap();
        let (_, n) = b.shape().as_matrix().unwrap();
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32) * 0.3 - 1.0);
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32) * 0.1 + 0.5);
        let got = matmul(&a, &b).unwrap();
        assert!(got.approx_eq(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn bit_identical_to_reference_kernel_across_edge_shapes() {
        // Shapes straddling every tile-width boundary, including the
        // scalar edge columns and sub-MR row remainders.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (4, 16, 16),
            (5, 7, 17),
            (7, 11, 43),
            (16, 27, 256),
            (33, 64, 19),
        ] {
            let a = Tensor::from_fn(&[m, k], |i| ((i * 37 % 23) as f32 - 11.0) * 0.13);
            let b = Tensor::from_fn(&[k, n], |i| ((i * 53 % 19) as f32 - 9.0) * 0.07);
            let fast = matmul(&a, &b).unwrap();
            let slow = reference::matmul(&a, &b).unwrap();
            assert_eq!(fast.data(), slow.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn threaded_path_matches_serial_bitwise() {
        // Big enough to clear PAR_WORK_THRESHOLD; the row split must not
        // change a single bit.
        let m = 96;
        let k = 64;
        let n = 80;
        let a = Tensor::from_fn(&[m, k], |i| ((i % 101) as f32 - 50.0) * 0.021);
        let b = Tensor::from_fn(&[k, n], |i| ((i % 97) as f32 - 48.0) * 0.017);
        let mut serial = vec![0.0f32; m * n];
        gemm_serial(simd::active_isa(), m, k, n, a.data(), b.data(), &mut serial);
        let via_public = matmul(&a, &b).unwrap();
        assert_eq!(via_public.data(), &serial[..]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[4, 4], |i| i as f32);
        assert!(matmul(&a, &Tensor::eye(4)).unwrap().approx_eq(&a, 0.0));
        assert!(matmul(&Tensor::eye(4), &a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn rejects_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            matmul_at_b(&a, &Tensor::zeros(&[4, 2])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            matmul_a_bt(&a, &Tensor::zeros(&[4, 2])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 3], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[5, 4], |i| (i as f32).cos());
        let expect = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert_eq!(got.data(), expect.data(), "same kernel, same bits");
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 3], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[4, 3], |i| (i as f32).cos());
        let expect = matmul(&a, &b.transpose2d().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(got.data(), expect.data(), "same kernel, same bits");
    }

    #[test]
    fn ws_variants_reuse_buffers() {
        let a = Tensor::from_fn(&[8, 8], |i| i as f32 * 0.1);
        let b = Tensor::from_fn(&[8, 8], |i| i as f32 * 0.2);
        let mut ws = Workspace::new();
        let y1 = matmul_ws(&a, &b, &mut ws).unwrap();
        let first = ws.fresh_allocs();
        ws.recycle(y1);
        let y2 = matmul_ws(&a, &b, &mut ws).unwrap();
        assert_eq!(ws.fresh_allocs(), first, "steady state must not allocate");
        ws.recycle(y2);
    }

    #[test]
    fn transpose_into_round_trips() {
        let src: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 6];
        transpose_into(&src, 2, 3, &mut dst);
        assert_eq!(dst, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let mut back = vec![0.0f32; 6];
        transpose_into(&dst, 3, 2, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_fn(&[3, 4], |i| i as f32);
        let x = Tensor::from_fn(&[4], |i| (i as f32) - 1.5);
        let xm = x.reshape(&[4, 1]).unwrap();
        let expect = matmul(&a, &xm).unwrap();
        let got = matvec(&a, &x).unwrap();
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn matvec_validates() {
        let a = Tensor::zeros(&[3, 4]);
        assert!(matvec(&a, &Tensor::zeros(&[5])).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[4, 1])).is_err());
    }
}
