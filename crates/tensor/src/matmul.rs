//! Cache-friendly matrix multiplication kernels.
//!
//! All kernels operate on 2-D [`Tensor`]s. The main entry point is
//! [`matmul`]; the transposed variants avoid materializing explicit
//! transposes in backward passes:
//!
//! * [`matmul`]        — `C = A · B`
//! * [`matmul_at_b`]   — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`]   — `C = A · Bᵀ` (input gradients)
//!
//! The inner loops use the `i-k-j` ordering so the innermost traversal is
//! unit-stride over both `B` and `C`, which is the single most important
//! optimization for a naive CPU GEMM.

use crate::{Result, Tensor, TensorError};

/// `C = A · B` for 2-D tensors `A: [m×k]`, `B: [k×n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when inner dimensions disagree.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{Tensor, matmul::matmul};
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A: [k×m]`, `B: [k×n]`, without materializing `Aᵀ`.
///
/// This is the shape of the weight-gradient computation
/// `dW = Xᵀ · dY` in a dense layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // For each shared row kk, accumulate the outer product of A's row
    // (read column-wise as a[kk, i]) with B's row — unit-stride on B and C.
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A: [m×k]`, `B: [n×k]`, without materializing `Bᵀ`.
///
/// This is the shape of the input-gradient computation
/// `dX = dY · Wᵀ` in a dense layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs and
/// [`TensorError::MatmulDimMismatch`] when the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `y = A · x` for `A: [m×k]`, `x: [k]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on malformed inputs.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
            op: "matvec",
        });
    }
    if x.numel() != k {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: x.numel(),
        });
    }
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec(out, &[m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix().unwrap();
        let (_, n) = b.shape().as_matrix().unwrap();
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32) * 0.3 - 1.0);
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32) * 0.1 + 0.5);
        let got = matmul(&a, &b).unwrap();
        assert!(got.approx_eq(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[4, 4], |i| i as f32);
        assert!(matmul(&a, &Tensor::eye(4)).unwrap().approx_eq(&a, 0.0));
        assert!(matmul(&Tensor::eye(4), &a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn rejects_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 3], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[5, 4], |i| (i as f32).cos());
        let expect = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert!(matmul_at_b(&a, &b).unwrap().approx_eq(&expect, 1e-5));
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 3], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[4, 3], |i| (i as f32).cos());
        let expect = matmul(&a, &b.transpose2d().unwrap()).unwrap();
        assert!(matmul_a_bt(&a, &b).unwrap().approx_eq(&expect, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_fn(&[3, 4], |i| i as f32);
        let x = Tensor::from_fn(&[4], |i| (i as f32) - 1.5);
        let xm = x.reshape(&[4, 1]).unwrap();
        let expect = matmul(&a, &xm).unwrap();
        let got = matvec(&a, &x).unwrap();
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn matvec_validates() {
        let a = Tensor::zeros(&[3, 4]);
        assert!(matvec(&a, &Tensor::zeros(&[5])).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[4, 1])).is_err());
    }
}
