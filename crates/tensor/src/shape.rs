use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major tensor shape.
///
/// A [`Shape`] records the extent of each dimension; strides are derived
/// on demand (the crate only supports contiguous row-major layouts, which
/// keeps every kernel simple and predictable).
///
/// # Example
///
/// ```
/// use gsfl_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape with a single element.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index, or `None` if any coordinate is out of
    /// bounds or the index rank disagrees.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut off = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }

    /// Inverse of [`Shape::offset`]: the multi-index of a flat offset.
    ///
    /// Returns `None` when `offset >= numel()`.
    pub fn unravel(&self, offset: usize) -> Option<Vec<usize>> {
        if offset >= self.numel() {
            return None;
        }
        let mut rem = offset;
        let mut idx = vec![0usize; self.dims.len()];
        for (slot, &s) in idx.iter_mut().zip(self.strides().iter()) {
            *slot = rem / s;
            rem %= s;
        }
        Some(idx)
    }

    /// Whether two shapes are elementwise-compatible (identical dims).
    pub fn same_dims(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }

    /// Interprets this shape as a 2-D matrix `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is exactly 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "as_matrix",
            });
        }
        Ok((self.dims[0], self.dims[1]))
    }

    /// Interprets this shape as an image batch `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is exactly 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
                op: "as_nchw",
            });
        }
        Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[3, 4]);
        assert_eq!(s.numel(), 12);
        assert_eq!(s.rank(), 2);
        assert_eq!(Shape::scalar().numel(), 1);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        for off in 0..s.numel() {
            let idx = s.unravel(off).unwrap();
            assert_eq!(s.offset(&idx), Some(off));
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.unravel(6), None);
    }

    #[test]
    fn matrix_and_nchw_views() {
        assert_eq!(Shape::new(&[3, 5]).as_matrix().unwrap(), (3, 5));
        assert!(Shape::new(&[3]).as_matrix().is_err());
        assert_eq!(
            Shape::new(&[8, 3, 32, 32]).as_nchw().unwrap(),
            (8, 3, 32, 32)
        );
        assert!(Shape::new(&[8, 3, 32]).as_nchw().is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2×3]");
    }

    #[test]
    fn dim_accessor_checks_range() {
        let s = Shape::new(&[4, 7]);
        assert_eq!(s.dim(1).unwrap(), 7);
        assert!(matches!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        ));
    }
}
