//! Quantization and sparsification kernels for the payload codec layer.
//!
//! Everything that crosses the simulated wireless link (smashed
//! activations, cut-layer gradients, model deltas) can be encoded before
//! transmission. These kernels implement the *lossy round trip* —
//! encode immediately followed by decode — in place on an `f32` slice,
//! which is exactly what the training schemes need: the receiver trains
//! on the decoded tensor while the latency model charges airtime for the
//! encoded size. All kernels are deterministic (stochastic rounding is
//! seeded) and allocation-free in steady state (scratch comes from a
//! [`Workspace`]).
//!
//! * [`fp16_roundtrip`] — IEEE 754 binary16 with round-to-nearest-even.
//! * [`intq_roundtrip`] — symmetric uniform quantization to `bits` bits
//!   with seeded stochastic rounding (unbiased: `E[decode(encode(x))] = x`).
//! * [`topk_mask`] — magnitude top-k sparsification; survivors keep
//!   their exact value, everything else becomes zero. Ties at the
//!   threshold resolve by ascending index, so the kept set is
//!   deterministic regardless of the selection algorithm.

use crate::kernel::dispatch;
use crate::rng::seeded_rng;
use crate::simd::{self, Isa};
use crate::workspace::Workspace;
use rand::Rng;

/// Elements per SIMD codec block: stochastic-rounding draws are
/// pre-drawn scalar-sequentially into a stack buffer of this size (so
/// the RNG consumption order — and therefore every code — is identical
/// to the scalar tier), then the arithmetic runs 8 lanes wide.
pub(crate) const CODEC_BLOCK: usize = 256;

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even
/// (the hardware rounding mode), flushing overflow to ±infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: preserve class (quiet any NaN payload).
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, re-biased for f16 (bias 15).
    let e = exp - 127 + 15;
    if e >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if e <= 0 {
        // Subnormal (or underflow to zero): shift the implicit-1 mantissa.
        if e < -10 {
            return sign; // underflows even the smallest subnormal
        }
        let mant = frac | 0x0080_0000; // implicit leading 1
        let shift = 14 - e; // bits dropped from the 24-bit mantissa
        let half = 1u32 << (shift - 1);
        let rest = mant & ((1u32 << shift) - 1);
        let mut out = (mant >> shift) as u16;
        // Round to nearest, ties to even.
        if rest > half || (rest == half && out & 1 == 1) {
            out += 1;
        }
        return sign | out;
    }
    // Normal: keep the top 10 mantissa bits, round-to-nearest-even on the
    // 13 dropped bits.
    let mut out = ((e as u16) << 10) | (frac >> 13) as u16;
    let rest = frac & 0x1FFF;
    if rest > 0x1000 || (rest == 0x1000 && out & 1 == 1) {
        out += 1; // mantissa carry may overflow into the exponent: correct
    }
    sign | out
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let frac = u32::from(h & 0x03FF);
    let bits = match exp {
        0 => {
            if frac == 0 {
                sign // ±0
            } else {
                // Subnormal: renormalize. After s shifts the value is
                // (1 + m/1024) · 2^(−14−s), so e = −s.
                let mut e = 0i32;
                let mut f = frac;
                while f & 0x0400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                let exp32 = (127 - 14 + e) as u32;
                sign | (exp32 << 23) | ((f & 0x03FF) << 13)
            }
        }
        0x1F => sign | 0x7F80_0000 | (frac << 13), // inf / NaN
        _ => sign | ((u32::from(exp) + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(bits)
}

/// Rounds every element through IEEE binary16 and back, in place.
/// Bit-identical on every SIMD tier: the hardware F16C path rounds
/// exactly like the software converters, and NaN-carrying blocks fall
/// back to software so payload canonicalization matches too.
pub fn fp16_roundtrip(values: &mut [f32]) {
    fp16_roundtrip_with_isa(dispatch().isa(), values);
}

/// [`fp16_roundtrip`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook).
#[doc(hidden)]
pub fn fp16_roundtrip_with_isa(isa: Isa, values: &mut [f32]) {
    match isa {
        Isa::Avx2 => simd::fp16_roundtrip_block(values),
        Isa::Scalar => {
            for v in values.iter_mut() {
                *v = f16_bits_to_f32(f32_to_f16_bits(*v));
            }
        }
    }
}

/// Symmetric uniform quantization to `bits`-bit signed integers with
/// stochastic rounding, immediately dequantized, in place.
///
/// The per-call scale is the max-abs of the slice (transmitted alongside
/// the payload in a real system; its 4 bytes are accounted by the codec's
/// wire-size formula, not here). Stochastic rounding draws from a
/// [`crate::rng::seeded_rng`] stream at `stream`, so the round trip is
/// deterministic for a given seed and unbiased in expectation.
///
/// `bits` must be in `2..=16`; an all-zero slice is returned unchanged.
pub fn intq_roundtrip(values: &mut [f32], bits: u32, stream: u64) {
    intq_roundtrip_with_isa(dispatch().isa(), values, bits, stream);
}

/// [`intq_roundtrip`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook). The vector tier pre-draws the stochastic
/// rounding uniforms per [`CODEC_BLOCK`] in scalar order, so the
/// quantized values are bit-identical to the scalar tier for every
/// finite input.
#[doc(hidden)]
pub fn intq_roundtrip_with_isa(isa: Isa, values: &mut [f32], bits: u32, stream: u64) {
    debug_assert!((2..=16).contains(&bits), "intq bits must be in 2..=16");
    let scale = match isa {
        Isa::Avx2 => simd::max_abs(values),
        Isa::Scalar => values.iter().fold(0.0f32, |m, v| m.max(v.abs())),
    };
    if scale == 0.0 || !scale.is_finite() {
        return;
    }
    let levels = ((1u32 << (bits - 1)) - 1) as f32; // e.g. 127 for 8 bits
    let inv = levels / scale;
    let mut rng = seeded_rng(stream);
    match isa {
        Isa::Avx2 => {
            let mut draws = [0.0f32; CODEC_BLOCK];
            for chunk in values.chunks_mut(CODEC_BLOCK) {
                for d in draws[..chunk.len()].iter_mut() {
                    *d = rng.gen();
                }
                simd::intq_roundtrip_block(chunk, inv, levels, scale, &draws[..chunk.len()]);
            }
        }
        Isa::Scalar => {
            for v in values.iter_mut() {
                let x = *v * inv;
                let lo = x.floor();
                let frac = x - lo;
                // P(round up) = frac ⇒ E[q] = x.
                let q = if rng.gen::<f32>() < frac {
                    lo + 1.0
                } else {
                    lo
                };
                *v = q.clamp(-levels, levels) * scale / levels;
            }
        }
    }
}

/// Keeps the `k` largest-magnitude elements and zeroes the rest, in
/// place. Ties at the k-th magnitude are kept in ascending index order,
/// making the surviving set deterministic. Scratch comes from `ws`
/// (steady-state calls allocate nothing).
///
/// `k >= values.len()` is a no-op, as is a slice containing any
/// non-finite value (a diverged tensor passes through untranscoded
/// rather than panicking mid-selection — the same degrade-to-identity
/// behavior as [`intq_roundtrip`]'s non-finite-scale guard).
pub fn topk_mask(values: &mut [f32], k: usize, ws: &mut Workspace) {
    topk_mask_with_isa(dispatch().isa(), values, k, ws);
}

/// [`topk_mask`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook). The magnitude fill, divergence guard, and
/// above-threshold count vectorize; the selection and the tie-resolving
/// mask pass are unchanged — the survivor set is identical on every
/// tier, including all-equal-magnitude ties.
#[doc(hidden)]
pub fn topk_mask_with_isa(isa: Isa, values: &mut [f32], k: usize, ws: &mut Workspace) {
    let n = values.len();
    let diverged = match isa {
        Isa::Avx2 => simd::any_non_finite(values),
        Isa::Scalar => values.iter().any(|v| !v.is_finite()),
    };
    if k >= n || diverged {
        return;
    }
    if k == 0 {
        values.fill(0.0);
        return;
    }
    let mut mags = ws.take(n);
    match isa {
        Isa::Avx2 => simd::abs_into(values, &mut mags),
        Isa::Scalar => {
            for (m, v) in mags.iter_mut().zip(values.iter()) {
                *m = v.abs();
            }
        }
    }
    // k-th largest magnitude = element at index k-1 of the descending
    // order. select_nth is O(n) and the threshold it finds is unique up
    // to ties, which the index-ordered fill below resolves.
    let kth = {
        let mut sel = ws.take(n);
        sel.copy_from_slice(&mags);
        sel.select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("finite magnitudes"));
        let t = sel[k - 1];
        ws.give(sel);
        t
    };
    // Keep everything strictly above the threshold, then fill the
    // remaining slots with threshold-magnitude elements by ascending
    // index.
    let above = match isa {
        Isa::Avx2 => simd::count_gt(&mags, kth),
        Isa::Scalar => mags.iter().filter(|&&m| m > kth).count(),
    };
    let mut at_budget = k - above;
    for (v, &m) in values.iter_mut().zip(mags.iter()) {
        if m > kth {
            continue;
        }
        if m == kth && at_budget > 0 {
            at_budget -= 1;
            continue;
        }
        *v = 0.0;
    }
    ws.give(mags);
}

/// Collects the indices of the `k` largest-magnitude elements, in
/// ascending index order — the selection kernel behind the sparse TopK
/// wire section. On finite input the survivor set is identical to
/// [`topk_mask`]'s: everything strictly above the k-th magnitude, plus
/// threshold ties filled by ascending index. Non-finite elements rank
/// as +∞ magnitude (they always survive), so a diverged tensor encodes
/// its poisoned entries verbatim instead of panicking mid-selection.
///
/// `out` is cleared first; scratch comes from `ws` (steady-state calls
/// allocate nothing). Requires `1 <= k`; `k >= values.len()` keeps
/// every index.
pub fn topk_indices(values: &[f32], k: usize, ws: &mut Workspace, out: &mut Vec<u32>) {
    topk_indices_with_isa(dispatch().isa(), values, k, ws, out);
}

/// [`topk_indices`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook): same survivor set on every tier.
#[doc(hidden)]
pub fn topk_indices_with_isa(
    isa: Isa,
    values: &[f32],
    k: usize,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    out.clear();
    let n = values.len();
    if k >= n {
        out.extend(0..n as u32);
        return;
    }
    debug_assert!(k >= 1, "topk_indices requires k >= 1");
    let mut mags = ws.take(n);
    match isa {
        Isa::Avx2 => simd::abs_or_inf_into(values, &mut mags),
        Isa::Scalar => {
            for (m, v) in mags.iter_mut().zip(values.iter()) {
                *m = if v.is_finite() {
                    v.abs()
                } else {
                    f32::INFINITY
                };
            }
        }
    }
    let kth = {
        let mut sel = ws.take(n);
        sel.copy_from_slice(&mags);
        sel.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
        let t = sel[k - 1];
        ws.give(sel);
        t
    };
    let above = match isa {
        Isa::Avx2 => simd::count_gt(&mags, kth),
        Isa::Scalar => mags.iter().filter(|&&m| m > kth).count(),
    };
    let mut at_budget = k - above;
    for (i, &m) in mags.iter().enumerate() {
        if m > kth {
            out.push(i as u32);
        } else if m == kth && at_budget > 0 {
            at_budget -= 1;
            out.push(i as u32);
        }
    }
    ws.give(mags);
}

/// Collects the indices of the `kept` blocks (of `block` contiguous
/// elements; the final block may be short) with the largest L2
/// norm, in ascending block order — the magnitude-structured selection
/// behind the pruned wire format. Ties resolve by ascending block
/// index; a block containing a non-finite element scores +∞ (diverged
/// blocks always survive, keeping the divergence visible downstream).
///
/// `out` is cleared first; scratch comes from `ws`. `block` must be
/// positive; `kept >=` the block count keeps every block.
pub fn top_block_indices(
    values: &[f32],
    block: usize,
    kept: usize,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    debug_assert!(block >= 1, "block size must be positive");
    out.clear();
    let block = block.max(1);
    let n_blocks = values.len().div_ceil(block);
    if kept >= n_blocks {
        out.extend(0..n_blocks as u32);
        return;
    }
    debug_assert!(kept >= 1, "top_block_indices requires kept >= 1");
    let mut scores = ws.take(n_blocks);
    for (s, chunk) in scores.iter_mut().zip(values.chunks(block)) {
        let mut acc = 0.0f64;
        let mut finite = true;
        for &v in chunk {
            finite &= v.is_finite();
            acc += f64::from(v) * f64::from(v);
        }
        *s = if finite && acc.is_finite() {
            acc as f32
        } else {
            f32::INFINITY
        };
    }
    let kth = {
        let mut sel = ws.take(n_blocks);
        sel.copy_from_slice(&scores);
        sel.select_nth_unstable_by(kept - 1, |a, b| b.total_cmp(a));
        let t = sel[kept - 1];
        ws.give(sel);
        t
    };
    let above = scores.iter().filter(|&&s| s > kth).count();
    let mut at_budget = kept - above;
    for (b, &s) in scores.iter().enumerate() {
        if s > kth {
            out.push(b as u32);
        } else if s == kth && at_budget > 0 {
            at_budget -= 1;
            out.push(b as u32);
        }
    }
    ws.give(scores);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_exact_for_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v, "{v}");
        }
    }

    #[test]
    fn f16_relative_error_bounded() {
        // Normal-range values: relative error ≤ 2^-11.
        let mut v: Vec<f32> = (1..2000).map(|i| (i as f32) * 0.37 - 350.0).collect();
        let orig = v.clone();
        fp16_roundtrip(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!(
                (a - b).abs() <= b.abs() * (1.0 / 2048.0) + 1e-24,
                "{b} → {a}"
            );
        }
    }

    #[test]
    fn f16_overflow_saturates_to_inf() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_subnormals_decode_exactly() {
        // Exactly-representable subnormals must round-trip bit-exactly:
        // frac × 2⁻²⁴ for frac in 1..1024.
        assert_eq!(
            f16_bits_to_f32(0x0001),
            2.0f32.powi(-24),
            "smallest subnormal"
        );
        assert_eq!(f16_bits_to_f32(0x0200), 2.0f32.powi(-15), "frac=512");
        assert_eq!(
            f16_bits_to_f32(0x03FF),
            1023.0 * 2.0f32.powi(-24),
            "largest subnormal"
        );
        for frac in [1u16, 3, 7, 255, 512, 1023] {
            let v = f32::from(frac) * 2.0f32.powi(-24);
            assert_eq!(f32_to_f16_bits(v), frac, "{v} encodes exactly");
            assert_eq!(f16_bits_to_f32(frac), v, "{frac:#06x} decodes exactly");
        }
        // Boundary: the largest subnormal + one step is the smallest
        // normal, 2⁻¹⁴.
        assert_eq!(f16_bits_to_f32(0x0400), 2.0f32.powi(-14));
        // Round trip of a non-representable subnormal stays within half
        // a subnormal step (2⁻²⁵).
        let tiny = 6.0e-8f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert!((back - tiny).abs() <= 2.0f32.powi(-25), "{tiny} → {back}");
    }

    #[test]
    fn intq_is_deterministic_and_bounded() {
        let orig: Vec<f32> = (0..512)
            .map(|i| ((i * 7 % 101) as f32 - 50.0) * 0.1)
            .collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        intq_roundtrip(&mut a, 8, 42);
        intq_roundtrip(&mut b, 8, 42);
        assert_eq!(a, b, "same stream ⇒ same result");
        let scale = orig.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = scale / 127.0;
        for (q, x) in a.iter().zip(&orig) {
            assert!((q - x).abs() <= step + 1e-6, "{x} → {q} (step {step})");
        }
        let mut c = orig.clone();
        intq_roundtrip(&mut c, 8, 43);
        assert_ne!(a, c, "different streams must differ");
    }

    #[test]
    fn intq_zero_slice_is_noop() {
        let mut v = vec![0.0f32; 16];
        intq_roundtrip(&mut v, 4, 0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn topk_keeps_largest_and_breaks_ties_by_index() {
        let mut ws = Workspace::new();
        let mut v = vec![1.0f32, -3.0, 2.0, -2.0, 0.5];
        topk_mask(&mut v, 2, &mut ws);
        // |−3| and the first of the tied |2| magnitudes (index 2) survive.
        assert_eq!(v, vec![0.0, -3.0, 2.0, 0.0, 0.0]);
        let mut w = vec![5.0f32, 1.0];
        topk_mask(&mut w, 5, &mut ws);
        assert_eq!(w, vec![5.0, 1.0], "k ≥ n is a no-op");
        let mut z = vec![1.0f32, 2.0];
        topk_mask(&mut z, 0, &mut ws);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn topk_passes_non_finite_slices_through() {
        // A diverged tensor must not panic the selection: the kernel
        // degrades to identity, like intq's non-finite-scale guard.
        let mut ws = Workspace::new();
        let mut v = vec![1.0f32, f32::NAN, 3.0, -2.0];
        let orig = v.clone();
        topk_mask(&mut v, 2, &mut ws);
        assert_eq!(v[0], orig[0]);
        assert!(v[1].is_nan());
        assert_eq!(&v[2..], &orig[2..]);
        let mut w = vec![1.0f32, f32::INFINITY];
        topk_mask(&mut w, 1, &mut ws);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn topk_indices_match_the_mask_survivors() {
        let mut ws = Workspace::new();
        let v = vec![1.0f32, -3.0, 2.0, -2.0, 0.5];
        let mut idx = Vec::new();
        topk_indices(&v, 2, &mut ws, &mut idx);
        assert_eq!(idx, vec![1, 2], "|−3| and the first tied |2| survive");
        let mut masked = v.clone();
        topk_mask(&mut masked, 2, &mut ws);
        let from_mask: Vec<u32> = masked
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(idx, from_mask, "same survivor set as the mask kernel");
        topk_indices(&v, 9, &mut ws, &mut idx);
        assert_eq!(idx, vec![0, 1, 2, 3, 4], "k ≥ n keeps everything");
    }

    #[test]
    fn topk_indices_rank_non_finite_first() {
        let mut ws = Workspace::new();
        let v = vec![1.0f32, f32::NAN, 3.0, f32::NEG_INFINITY];
        let mut idx = Vec::new();
        topk_indices(&v, 2, &mut ws, &mut idx);
        assert_eq!(idx, vec![1, 3], "non-finite entries always survive");
    }

    #[test]
    fn top_block_indices_pick_heavy_blocks_ties_ascending() {
        let mut ws = Workspace::new();
        // 4 blocks of 4: block 1 heavy, blocks 0 and 2 tied, block 3 light.
        let mut v = vec![0.0f32; 16];
        v[0..4].fill(1.0);
        v[4..8].fill(5.0);
        v[8..12].fill(1.0);
        v[12..16].fill(0.1);
        let mut idx = Vec::new();
        top_block_indices(&v, 4, 2, &mut ws, &mut idx);
        assert_eq!(idx, vec![0, 1], "tie between blocks 0 and 2 → lower index");
        top_block_indices(&v, 4, 9, &mut ws, &mut idx);
        assert_eq!(idx, vec![0, 1, 2, 3], "kept ≥ blocks keeps everything");
        // Non-finite poisons its block to the top.
        v[13] = f32::NAN;
        top_block_indices(&v, 4, 1, &mut ws, &mut idx);
        assert_eq!(idx, vec![3]);
    }

    #[test]
    fn topk_steady_state_allocs_stop() {
        let mut ws = Workspace::new();
        let mut v: Vec<f32> = (0..256).map(|i| (i as f32) - 77.5).collect();
        topk_mask(&mut v, 32, &mut ws);
        let warm = ws.fresh_allocs();
        for _ in 0..5 {
            topk_mask(&mut v, 32, &mut ws);
        }
        assert_eq!(ws.fresh_allocs(), warm, "top-k must recycle its scratch");
    }
}
