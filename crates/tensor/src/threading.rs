//! Process-wide thread budget shared by every parallel path.
//!
//! Several layers of the stack can fan out onto host threads: the runner
//! runs whole schemes in parallel, GSFL trains groups in parallel,
//! FedAvg-style schemes train clients in parallel, and large GEMMs split
//! by rows. Uncoordinated, those multiply (schemes × clients × GEMM
//! rows) and oversubscribe the host. This module is the single arbiter:
//! a caller [`request_threads`] for the fan-out it *wants*, receives a
//! [`ThreadGrant`] for what the machine can afford right now, and the
//! grant returns its share when dropped. Nested parallelism therefore
//! degrades gracefully to sequential instead of stacking threads.
//!
//! The budget is [`hardware_threads`]: `std::thread::available_parallelism`,
//! overridable with the `GSFL_THREADS` environment variable (read once).
//! Grant sizing never affects results — all parallel paths in this
//! workspace partition work at fixed boundaries and combine in fixed
//! order, so any grant yields bit-identical output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker threads currently granted beyond the callers' own threads.
static EXTRA_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide thread budget: `GSFL_THREADS` if set to a positive
/// integer, otherwise the host's available parallelism. Cached after the
/// first call.
pub fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("GSFL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// A lease on worker threads; gives them back to the budget on drop.
#[derive(Debug)]
pub struct ThreadGrant {
    extra: usize,
}

impl ThreadGrant {
    /// Total threads the holder may run with, including its own
    /// (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.extra + 1
    }
}

impl Drop for ThreadGrant {
    fn drop(&mut self) {
        if self.extra > 0 {
            EXTRA_IN_USE.fetch_sub(self.extra, Ordering::SeqCst);
        }
    }
}

/// Requests a fan-out of up to `want` threads (the caller's own thread
/// included). The grant holds whatever share of the budget is free —
/// possibly just the caller's thread, in which case work should run
/// sequentially.
pub fn request_threads(want: usize) -> ThreadGrant {
    let cap = hardware_threads();
    let want_extra = want.saturating_sub(1);
    if want_extra == 0 || cap <= 1 {
        return ThreadGrant { extra: 0 };
    }
    let mut granted = 0;
    let _ = EXTRA_IN_USE.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
        granted = want_extra.min(cap.saturating_sub(1).saturating_sub(used));
        if granted == 0 {
            None
        } else {
            Some(used + granted)
        }
    });
    ThreadGrant { extra: granted }
}

/// Worker threads currently leased out (diagnostics/tests).
pub fn extra_threads_in_use() -> usize {
    EXTRA_IN_USE.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_is_at_least_one_thread() {
        let g = request_threads(0);
        assert_eq!(g.threads(), 1);
        let g = request_threads(1);
        assert_eq!(g.threads(), 1);
    }

    #[test]
    fn grants_never_exceed_budget() {
        // Note: other tests in this binary may hold grants concurrently,
        // so only local invariants are asserted here.
        let cap = hardware_threads();
        let g1 = request_threads(1024);
        let g2 = request_threads(1024);
        assert!(
            (g1.threads() - 1) + (g2.threads() - 1) <= cap.saturating_sub(1),
            "extras exceed the budget"
        );
    }
}
