//! Deterministic hierarchical seed derivation.
//!
//! Distributed-learning experiments need many independent random streams —
//! one per client, per group, per round, per layer — that are all derived
//! from a single experiment seed so a run can be reproduced bit-for-bit.
//! [`SeedDerive`] provides a cheap, collision-resistant derivation based on
//! SplitMix64, and [`seeded_rng`] turns a derived seed into a
//! [`rand_chacha::ChaCha8Rng`].

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derives independent child seeds from a root seed.
///
/// # Example
///
/// ```
/// use gsfl_tensor::rng::SeedDerive;
///
/// let root = SeedDerive::new(42);
/// let client3_round7 = root.child("client").index(3).index(7).seed();
/// let client4_round7 = root.child("client").index(4).index(7).seed();
/// assert_ne!(client3_round7, client4_round7);
/// // Same path ⇒ same seed, always.
/// assert_eq!(
///     client3_round7,
///     SeedDerive::new(42).child("client").index(3).index(7).seed()
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedDerive {
    state: u64,
}

impl SeedDerive {
    /// Creates a derivation root from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SeedDerive {
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives a child labelled by a static string (e.g. `"client"`).
    pub fn child(&self, label: &str) -> Self {
        let mut s = self.state;
        for b in label.as_bytes() {
            s = splitmix64(s ^ u64::from(*b));
        }
        SeedDerive { state: s }
    }

    /// Derives a child labelled by an index (e.g. client id, round number).
    pub fn index(&self, i: u64) -> Self {
        SeedDerive {
            state: splitmix64(self.state ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        }
    }

    /// The 64-bit seed at this point of the derivation path.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A ChaCha8 RNG seeded at this derivation path.
    pub fn rng(&self) -> ChaCha8Rng {
        seeded_rng(self.state)
    }
}

/// One step of the SplitMix64 sequence; a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic [`ChaCha8Rng`] from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_path_same_seed() {
        let a = SeedDerive::new(7).child("x").index(3).seed();
        let b = SeedDerive::new(7).child("x").index(3).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn different_paths_differ() {
        let root = SeedDerive::new(7);
        assert_ne!(root.child("a").seed(), root.child("b").seed());
        assert_ne!(root.index(0).seed(), root.index(1).seed());
        assert_ne!(
            root.child("a").index(1).seed(),
            root.child("b").index(1).seed()
        );
    }

    #[test]
    fn label_order_matters() {
        let root = SeedDerive::new(9);
        assert_ne!(
            root.child("ab").seed(),
            root.child("ba").seed(),
            "derivation must be order-sensitive"
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = SeedDerive::new(1).child("layer").rng();
        let mut r2 = SeedDerive::new(1).child("layer").rng();
        let a: Vec<f64> = (0..16).map(|_| r1.gen::<f64>()).collect();
        let b: Vec<f64> = (0..16).map(|_| r2.gen::<f64>()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn no_trivial_collisions_over_indices() {
        let root = SeedDerive::new(1234).child("client");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(root.index(i).seed()), "collision at index {i}");
        }
    }
}
