//! Dense `f32` tensor substrate for the GSFL reproduction.
//!
//! This crate provides everything the neural-network stack
//! ([`gsfl-nn`](https://docs.rs/gsfl-nn)) needs to train lightweight CNNs on
//! CPU without any external BLAS or deep-learning dependency:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Tensor`] — an owned, contiguous `f32` buffer plus its shape,
//! * [`matmul`] — blocked, register-tiled, optionally multithreaded
//!   matrix multiplication,
//! * [`conv`] — whole-batch im2col/col2im 2-D convolution forward and
//!   backward,
//! * [`pool`] — max/average pooling forward and backward,
//! * [`workspace`] — recycled scratch buffers so the training hot path
//!   is allocation-free after warm-up,
//! * [`threading`] — the process-wide thread budget every parallel path
//!   (GEMM rows, clients, groups, schemes) draws from,
//! * [`reference`](mod@reference) — the preserved pre-optimization
//!   kernels (test oracle and benchmark baseline), selectable at runtime
//!   via [`kernel`],
//! * [`simd`] — runtime-dispatched SIMD lanes (AVX2/FMA/F16C with a
//!   scalar fallback, `GSFL_SIMD` override) behind the compute and
//!   codec hot paths,
//! * [`init`] — He / Xavier / uniform initializers,
//! * [`rng`] — deterministic hierarchical seed derivation so that every
//!   client, group and round of a distributed experiment draws from an
//!   independent, reproducible stream,
//! * [`io`] — flat byte serialization used to measure "transmission" sizes
//!   of model parameters and smashed data over the simulated wireless links,
//! * [`wire`] — the packed wire container (dtype-tagged, versioned,
//!   bit-packed payloads): the buffers whose measured `len()` the latency
//!   model charges as airtime.
//!
//! # Example
//!
//! ```
//! use gsfl_tensor::{Tensor, matmul};
//!
//! # fn main() -> Result<(), gsfl_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = matmul::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod shape;
mod tensor;

pub mod conv;
pub mod init;
pub mod io;
pub mod kernel;
pub mod matmul;
pub mod pool;
pub mod quant;
pub mod reference;
pub mod rng;
pub mod simd;
pub mod threading;
pub mod wire;
pub mod workspace;

pub use error::TensorError;
pub use kernel::{dispatch, kernel_mode, set_kernel_mode, Dispatch, KernelMode};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
