//! Flat byte serialization of tensors.
//!
//! The wireless simulator charges communication latency per byte, so the
//! byte footprint of everything that crosses a link — model parameters,
//! smashed activations, gradients — is defined here, in one place:
//! little-endian `f32`s preceded by a small header.

use crate::{Result, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix guarding against decoding garbage.
const MAGIC: u32 = 0x4753_464C; // "GSFL"

/// Serialized size in bytes of a tensor with `numel` elements and `rank`
/// dimensions: header (magic + rank) + dims + payload.
pub fn encoded_len(numel: usize, rank: usize) -> usize {
    4 + 4 + 8 * rank + 4 * numel
}

/// Wire size of just the payload (what a real system would send after
/// shape negotiation): 4 bytes per element.
pub fn payload_bytes(numel: usize) -> u64 {
    4 * numel as u64
}

/// Encodes a tensor to a self-describing byte buffer.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{Tensor, io};
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let t = Tensor::arange(6).reshape(&[2, 3])?;
/// let bytes = io::encode(&t);
/// let back = io::decode(&bytes)?;
/// assert_eq!(back, t);
/// # Ok(())
/// # }
/// ```
pub fn encode(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(t.numel(), t.shape().rank()));
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(t.shape().rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns [`TensorError::Decode`] on truncation, bad magic, or an
/// element-count overflow.
pub fn decode(bytes: &[u8]) -> Result<Tensor> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(TensorError::Decode("buffer shorter than header".into()));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TensorError::Decode(format!(
            "bad magic 0x{magic:08X}, expected 0x{MAGIC:08X}"
        )));
    }
    let rank = buf.get_u32_le() as usize;
    if buf.remaining() < 8 * rank {
        return Err(TensorError::Decode("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le() as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| TensorError::Decode("element count overflows usize".into()))?;
        dims.push(d);
    }
    if buf.remaining() != 4 * numel {
        return Err(TensorError::Decode(format!(
            "payload length {} does not match shape {:?} (expected {})",
            buf.remaining(),
            dims,
            4 * numel
        )));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| (i as f32) * -0.37 + 1.0);
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn round_trip_scalarish_shapes() {
        for dims in [vec![], vec![1], vec![0], vec![3, 0, 2]] {
            let t = Tensor::zeros(&dims);
            let back = decode(&encode(&t)).unwrap();
            assert_eq!(back.dims(), t.dims());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let t = Tensor::arange(3);
        let mut bytes = encode(&t).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(TensorError::Decode(_))));
    }

    #[test]
    fn rejects_truncation() {
        let t = Tensor::arange(3);
        let bytes = encode(&t);
        for cut in [0, 4, 7, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn encoded_len_matches_actual() {
        let t = Tensor::zeros(&[5, 7]);
        assert_eq!(encode(&t).len(), encoded_len(35, 2));
    }

    #[test]
    fn payload_bytes_is_4_per_element() {
        assert_eq!(payload_bytes(100), 400);
        assert_eq!(payload_bytes(0), 0);
    }
}
