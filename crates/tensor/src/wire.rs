//! The packed wire container: what actually crosses the simulated link.
//!
//! Until this module existed the codec layer *transcoded* tensors but
//! *charged* airtime on computed byte formulas — encoded sizes were
//! arithmetic, never buffers. Here every encoded artifact becomes a real
//! [`WireBuf`] whose [`WireBuf::len`] **is** the charged size:
//!
//! ```text
//! ┌──────┬─────────┬───────┬──────────────┬─────────────┬─────────┐
//! │ "GW" │ version │ dtype │ varint numel │ dtype params│ payload │
//! └──────┴─────────┴───────┴──────────────┴─────────────┴─────────┘
//! ```
//!
//! * **F16** — params: none; payload: `2·numel` little-endian binary16.
//! * **IntQ** — params: `bits` (u8); payload: f32 max-abs scale +
//!   `numel` codes bit-packed at `bits` bits each (code = `q + levels`,
//!   an unsigned value in `0 ..= 2·levels`, so exactly `bits` bits).
//! * **TopK** — params: varint `k`, `idx_bits` (u8); payload: `k`
//!   survivor indices bit-packed at `idx_bits = ⌈log₂ numel⌉` bits,
//!   then `k` f32 survivor values. Fixed-width packed indices (not
//!   delta-varints) keep the encoded size a pure function of
//!   `(numel, k)` — which is what lets the latency calculators charge
//!   measured bytes without coupling to per-step tensor contents.
//! * **PrunedQ** — params: `bits` (u8), varint `block`, varint
//!   `kept_blocks`, `idx_bits` (u8); payload: kept block indices
//!   bit-packed at `idx_bits = ⌈log₂ n_blocks⌉` bits, f32 scale, then
//!   `kept_blocks · block` quantized codes (a short final block is
//!   zero-padded to keep the size value-independent).
//!
//! The fp32 passthrough intentionally has **no container**: the
//! identity wire format is the headerless little-endian stream
//! ([`encode_raw`]), byte-identical to the historical accounting of
//! 4 bytes per scalar — the golden round-record fixtures pin this.
//!
//! Containers carry the flat scalar stream only (`numel`, not a dim
//! list): artifact shapes are protocol state both endpoints already
//! hold, exactly like the training loops that decode into an existing
//! tensor. Decoding therefore never allocates from untrusted lengths —
//! a container claiming an oversized `numel` fails the
//! `shape.numel` check against the caller's destination instead of
//! allocating. Every malformed input (truncation, bad magic, bit
//! flips) yields a typed [`TensorError::Wire`] naming the offending
//! field by path, e.g. `topk.indices[3]` — never a panic.
//!
//! [`WireBuf`]s recycle through the [`Workspace`] byte pool
//! ([`Workspace::take_wire`] / [`Workspace::give_wire`]), so
//! steady-state encoding allocates nothing after warm-up.

use crate::error::TensorError;
use crate::kernel::dispatch;
use crate::quant::{
    f16_bits_to_f32, f32_to_f16_bits, top_block_indices, topk_indices_with_isa, CODEC_BLOCK,
};
use crate::rng::seeded_rng;
use crate::simd::{self, Isa};
use crate::workspace::Workspace;
use rand::Rng;

/// Container magic: `b"GW"` ("GSFL wire").
pub const MAGIC: [u8; 2] = *b"GW";
/// Container format version this module reads and writes.
pub const VERSION: u8 = 1;

/// Dtype tag of a container payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireDtype {
    /// IEEE 754 binary16, 2 bytes per scalar.
    F16 = 1,
    /// Bit-packed symmetric uniform quantization codes plus one scale.
    IntQ = 2,
    /// Sparse top-k: bit-packed indices + f32 survivor values.
    TopK = 3,
    /// Magnitude-pruned blocks with quantized survivor values.
    PrunedQ = 4,
}

impl WireDtype {
    fn from_u8(v: u8) -> Option<WireDtype> {
        match v {
            1 => Some(WireDtype::F16),
            2 => Some(WireDtype::IntQ),
            3 => Some(WireDtype::TopK),
            4 => Some(WireDtype::PrunedQ),
            _ => None,
        }
    }
}

/// An encoded payload: the byte buffer that actually crosses the wire.
/// `len()` is the measured size the latency calculators charge.
/// Recycle through [`Workspace::give_wire`] for zero-alloc steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireBuf {
    bytes: Vec<u8>,
}

impl WireBuf {
    /// An empty buffer (no allocation until the first encode).
    pub fn new() -> Self {
        WireBuf::default()
    }

    /// Wraps an existing byte vector (e.g. one received off a socket —
    /// or a recycled pool buffer).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        WireBuf { bytes }
    }

    /// Unwraps into the backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    /// Encoded size in bytes — the number airtime is charged for.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the backing vector — for receivers filling the
    /// buffer and for corruption tests flipping bits.
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Empties the buffer, keeping its capacity for the next encode.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }
}

/// Shorthand for a typed field-path decode error.
fn werr(path: &str, reason: impl Into<String>) -> TensorError {
    TensorError::Wire {
        path: path.to_string(),
        reason: reason.into(),
    }
}

/// Bytes a LEB128 varint encoding of `v` occupies.
pub fn varint_len(v: u64) -> u64 {
    let mut v = v;
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Bits needed to store any index below `numel` (at least 1).
pub fn index_bits(numel: usize) -> u32 {
    let max = numel.saturating_sub(1) as u64;
    (64 - max.leading_zeros()).max(1)
}

/// A bounds-checked cursor over a container's bytes. Every read names
/// the field it was parsing, so truncation and bit flips surface as
/// typed path errors instead of panics.
struct Rd<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Rd { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, path: &str) -> Result<&'a [u8], TensorError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(werr(
                path,
                format!(
                    "truncated: need {n} bytes at offset {}, container has {}",
                    self.pos,
                    self.bytes.len()
                ),
            )),
        }
    }

    fn u8(&mut self, path: &str) -> Result<u8, TensorError> {
        Ok(self.take(1, path)?[0])
    }

    fn f32(&mut self, path: &str) -> Result<f32, TensorError> {
        let b = self.take(4, path)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn varint(&mut self, path: &str) -> Result<u64, TensorError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(path)?;
            if shift >= 63 && b > 1 {
                return Err(werr(path, "varint overflows u64"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(werr(path, "varint longer than 10 bytes"));
            }
        }
    }

    /// Fails if payload bytes remain — a corrupted length field would
    /// otherwise silently ignore trailing garbage.
    fn done(&self, path: &str) -> Result<(), TensorError> {
        if self.pos != self.bytes.len() {
            return Err(werr(
                path,
                format!(
                    "{} trailing bytes after the payload",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// LSB-first bit packer (widths up to 57 bits per push).
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    fn push(&mut self, v: u64, width: u32) {
        debug_assert!(width <= 57 && (width == 64 || v < (1u64 << width)));
        self.acc |= v << self.nbits;
        self.nbits += width;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(self) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
    }
}

/// LSB-first bit unpacker over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn read(&mut self, width: u32) -> u64 {
        // The caller sized `bytes` from the declared counts, so running
        // off the end cannot happen for a well-formed container; missing
        // bytes read as zero (the size checks upstream already rejected
        // truncation).
        while self.nbits < width {
            let b = if self.pos < self.bytes.len() {
                self.bytes[self.pos]
            } else {
                0
            };
            self.pos += 1;
            self.acc |= u64::from(b) << self.nbits;
            self.nbits += 8;
        }
        let v = self.acc & ((1u64 << width) - 1);
        self.acc >>= width;
        self.nbits -= width;
        v
    }
}

/// Bytes `count` fields of `width` bits occupy when bit-packed.
fn packed_bytes(count: u64, width: u32) -> u64 {
    (count * u64::from(width)).div_ceil(8)
}

fn write_header(out: &mut Vec<u8>, dtype: WireDtype, numel: usize) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(dtype as u8);
    write_varint(out, numel as u64);
}

/// Validates magic/version/dtype and the declared element count against
/// the destination length. Returns the cursor positioned at the dtype
/// parameter section.
fn read_header<'a>(
    buf: &'a WireBuf,
    want: WireDtype,
    out_len: usize,
) -> Result<Rd<'a>, TensorError> {
    let mut rd = Rd::new(buf.as_bytes());
    let magic = rd.take(2, "header.magic")?;
    if magic != MAGIC {
        return Err(werr(
            "header.magic",
            format!("expected {MAGIC:?}, got {magic:?}"),
        ));
    }
    let version = rd.u8("header.version")?;
    if version != VERSION {
        return Err(werr(
            "header.version",
            format!("unsupported version {version} (this build reads {VERSION})"),
        ));
    }
    let tag = rd.u8("header.dtype")?;
    let dtype = WireDtype::from_u8(tag)
        .ok_or_else(|| werr("header.dtype", format!("unknown dtype tag {tag}")))?;
    if dtype != want {
        return Err(werr(
            "header.dtype",
            format!("container holds {dtype:?}, decoder expected {want:?}"),
        ));
    }
    let numel = rd.varint("shape.numel")?;
    if numel != out_len as u64 {
        return Err(werr(
            "shape.numel",
            format!("container declares {numel} scalars, destination holds {out_len}"),
        ));
    }
    Ok(rd)
}

// ---------------------------------------------------------------------------
// Identity (headerless raw fp32)
// ---------------------------------------------------------------------------

/// Exact wire size of the raw fp32 stream: 4 bytes per scalar.
pub fn raw_len(numel: usize) -> u64 {
    4 * numel as u64
}

/// Encodes the identity wire format: a headerless little-endian fp32
/// stream, byte-identical to the historical 4-bytes-per-scalar
/// accounting (the golden fixtures pin this — no container overhead).
pub fn encode_raw(values: &[f32], buf: &mut WireBuf) {
    let out = buf.bytes_mut();
    out.clear();
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes the raw fp32 stream into `out`.
///
/// # Errors
///
/// [`TensorError::Wire`] at `raw.payload` when the byte length is not
/// exactly `4 · out.len()`.
pub fn decode_raw(buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    let bytes = buf.as_bytes();
    if bytes.len() != out.len() * 4 {
        return Err(werr(
            "raw.payload",
            format!(
                "raw stream holds {} bytes, destination needs {}",
                bytes.len(),
                out.len() * 4
            ),
        ));
    }
    for (v, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// F16
// ---------------------------------------------------------------------------

/// Exact encoded size of an [`WireDtype::F16`] container.
pub fn f16_len(numel: usize) -> u64 {
    4 + varint_len(numel as u64) + 2 * numel as u64
}

/// Encodes `values` as binary16 (round-to-nearest-even).
pub fn encode_f16(values: &[f32], buf: &mut WireBuf) {
    encode_f16_with_isa(dispatch().isa(), values, buf);
}

/// [`encode_f16`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook): byte-identical containers on every tier.
#[doc(hidden)]
pub fn encode_f16_with_isa(isa: Isa, values: &[f32], buf: &mut WireBuf) {
    let out = buf.bytes_mut();
    out.clear();
    out.reserve(f16_len(values.len()) as usize);
    write_header(out, WireDtype::F16, values.len());
    match isa {
        Isa::Avx2 => simd::encode_f16_payload(values, out),
        Isa::Scalar => {
            for v in values {
                out.extend_from_slice(&f32_to_f16_bits(*v).to_le_bytes());
            }
        }
    }
}

/// Decodes an F16 container into `out`.
///
/// # Errors
///
/// [`TensorError::Wire`] naming the malformed field.
pub fn decode_f16(buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    decode_f16_with_isa(dispatch().isa(), buf, out)
}

/// [`decode_f16`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook): bit-identical tensors on every tier,
/// including exact NaN-payload preservation.
#[doc(hidden)]
pub fn decode_f16_with_isa(isa: Isa, buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    let mut rd = read_header(buf, WireDtype::F16, out.len())?;
    let payload = rd.take(out.len() * 2, "f16.payload")?;
    rd.done("f16.payload")?;
    match isa {
        Isa::Avx2 => simd::decode_f16_payload(payload, out),
        Isa::Scalar => {
            for (v, c) in out.iter_mut().zip(payload.chunks_exact(2)) {
                *v = f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// IntQ
// ---------------------------------------------------------------------------

/// Exact encoded size of an [`WireDtype::IntQ`] container.
pub fn intq_len(numel: usize, bits: u32) -> u64 {
    4 + varint_len(numel as u64) + 1 + 4 + packed_bytes(numel as u64, bits)
}

/// Encodes `values` as `bits`-bit symmetric uniform quantization with
/// seeded stochastic rounding — the same quantizer as
/// [`crate::quant::intq_roundtrip`], emitting the codes instead of
/// dequantizing in place. The max-abs scale ships in the payload. A
/// non-finite scale (diverged input) is transmitted as-is with zero
/// codes; the decoder surfaces it as a NaN-filled tensor, keeping the
/// divergence visible to the receiver. `bits` must be in `2..=16`.
pub fn encode_intq(values: &[f32], bits: u32, stream: u64, buf: &mut WireBuf) {
    encode_intq_with_isa(dispatch().isa(), values, bits, stream, buf);
}

/// [`encode_intq`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook). The vector tier pre-draws the stochastic
/// rounding uniforms per [`CODEC_BLOCK`] in scalar order and quantizes
/// 8 lanes at a time; the emitted container is byte-identical on every
/// tier.
#[doc(hidden)]
pub fn encode_intq_with_isa(isa: Isa, values: &[f32], bits: u32, stream: u64, buf: &mut WireBuf) {
    debug_assert!((2..=16).contains(&bits), "intq bits must be in 2..=16");
    let out = buf.bytes_mut();
    out.clear();
    out.reserve(intq_len(values.len(), bits) as usize);
    write_header(out, WireDtype::IntQ, values.len());
    out.push(bits as u8);
    let scale = match isa {
        Isa::Avx2 => simd::max_abs(values),
        Isa::Scalar => values.iter().fold(0.0f32, |m, v| m.max(v.abs())),
    };
    out.extend_from_slice(&scale.to_le_bytes());
    let levels = (1u32 << (bits - 1)) - 1;
    let mut bw = BitWriter::new(out);
    if scale == 0.0 || !scale.is_finite() {
        for _ in values {
            bw.push(u64::from(levels), bits); // code 0 = `levels` offset
        }
    } else {
        let inv = levels as f32 / scale;
        let mut rng = seeded_rng(stream);
        match isa {
            Isa::Avx2 => {
                let mut draws = [0.0f32; CODEC_BLOCK];
                let mut codes = [0u16; CODEC_BLOCK];
                for chunk in values.chunks(CODEC_BLOCK) {
                    for d in draws[..chunk.len()].iter_mut() {
                        *d = rng.gen();
                    }
                    simd::intq_quantize_codes(
                        chunk,
                        inv,
                        levels,
                        &draws[..chunk.len()],
                        &mut codes[..chunk.len()],
                    );
                    for &c in &codes[..chunk.len()] {
                        bw.push(u64::from(c), bits);
                    }
                }
            }
            Isa::Scalar => {
                let lv = levels as f32;
                for v in values {
                    let x = *v * inv;
                    let lo = x.floor();
                    let frac = x - lo;
                    // P(round up) = frac ⇒ E[q] = x, matching intq_roundtrip
                    // draw for draw so wire and in-place paths stay bit-equal.
                    let q = if rng.gen::<f32>() < frac {
                        lo + 1.0
                    } else {
                        lo
                    };
                    let q = q.clamp(-lv, lv) as i64;
                    bw.push((q + i64::from(levels)) as u64, bits);
                }
            }
        }
    }
    bw.finish();
}

/// Decodes an IntQ container into `out`. A container whose scale is
/// non-finite (a diverged encode) fills `out` with NaN.
///
/// # Errors
///
/// [`TensorError::Wire`] naming the malformed field.
pub fn decode_intq(buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    decode_intq_with_isa(dispatch().isa(), buf, out)
}

/// [`decode_intq`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook). The vector tier unpacks codes per
/// [`CODEC_BLOCK`] (validating each, with the same per-index error),
/// then dequantizes 8 lanes at a time — bit-identical tensors on every
/// tier.
#[doc(hidden)]
pub fn decode_intq_with_isa(isa: Isa, buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    let mut rd = read_header(buf, WireDtype::IntQ, out.len())?;
    let bits = u32::from(rd.u8("intq.bits")?);
    if !(2..=16).contains(&bits) {
        return Err(werr("intq.bits", format!("bits {bits} outside 2..=16")));
    }
    let scale = rd.f32("intq.scale")?;
    let payload = rd.take(packed_bytes(out.len() as u64, bits) as usize, "intq.codes")?;
    rd.done("intq.codes")?;
    if !scale.is_finite() {
        out.fill(f32::NAN);
        return Ok(());
    }
    let levels = (1u32 << (bits - 1)) - 1;
    let max_code = u64::from(2 * levels);
    let mut br = BitReader::new(payload);
    match isa {
        Isa::Avx2 => {
            let mut codes = [0u16; CODEC_BLOCK];
            let mut base = 0usize;
            for chunk in out.chunks_mut(CODEC_BLOCK) {
                for (j, c) in codes[..chunk.len()].iter_mut().enumerate() {
                    let code = br.read(bits);
                    if code > max_code {
                        return Err(werr(
                            &format!("intq.codes[{}]", base + j),
                            format!("code {code} exceeds 2·levels = {max_code}"),
                        ));
                    }
                    *c = code as u16;
                }
                simd::intq_dequant_codes(&codes[..chunk.len()], levels, scale, chunk);
                base += chunk.len();
            }
        }
        Isa::Scalar => {
            for (i, v) in out.iter_mut().enumerate() {
                let code = br.read(bits);
                if code > max_code {
                    return Err(werr(
                        &format!("intq.codes[{i}]"),
                        format!("code {code} exceeds 2·levels = {max_code}"),
                    ));
                }
                let q = code as i64 - i64::from(levels);
                *v = q as f32 * scale / levels as f32;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

/// Exact encoded size of a [`WireDtype::TopK`] container.
pub fn topk_len(numel: usize, k: usize) -> u64 {
    let idx = index_bits(numel);
    4 + varint_len(numel as u64)
        + varint_len(k as u64)
        + 1
        + packed_bytes(k as u64, idx)
        + 4 * k as u64
}

/// Encodes the `k` largest-magnitude elements of `values` as a sparse
/// index + value section (the DisTrO-style layout). Survivor selection
/// matches [`crate::quant::topk_mask`]: ties at the threshold resolve
/// by ascending index. Non-finite elements rank above every finite one,
/// so a diverged tensor ships its non-finite entries verbatim instead
/// of panicking mid-selection. `k` is clamped to `1..=numel`.
pub fn encode_topk(values: &[f32], k: usize, ws: &mut Workspace, buf: &mut WireBuf) {
    encode_topk_with_isa(dispatch().isa(), values, k, ws, buf);
}

/// [`encode_topk`] pinned to an explicit ISA tier (benchmark and
/// equivalence-test hook): the survivor selection's magnitude and
/// threshold passes vectorize; the container is byte-identical on every
/// tier (ascending-index tie resolution included).
#[doc(hidden)]
pub fn encode_topk_with_isa(
    isa: Isa,
    values: &[f32],
    k: usize,
    ws: &mut Workspace,
    buf: &mut WireBuf,
) {
    let n = values.len();
    let k = k.clamp(1, n.max(1));
    let mut idx = ws.take_indices();
    topk_indices_with_isa(isa, values, k, ws, &mut idx);
    let out = buf.bytes_mut();
    out.clear();
    out.reserve(topk_len(n, k) as usize);
    write_header(out, WireDtype::TopK, n);
    write_varint(out, k as u64);
    let width = index_bits(n);
    out.push(width as u8);
    let mut bw = BitWriter::new(out);
    for &i in &idx {
        bw.push(u64::from(i), width);
    }
    bw.finish();
    for &i in &idx {
        out.extend_from_slice(&values[i as usize].to_le_bytes());
    }
    ws.give_indices(idx);
}

/// Decodes a TopK container into `out`: zeros everywhere, survivor
/// values scattered to their indices.
///
/// # Errors
///
/// [`TensorError::Wire`] naming the malformed field (`topk.k`,
/// `topk.idx_bits`, `topk.indices[i]`, …).
pub fn decode_topk(buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    let n = out.len();
    let mut rd = read_header(buf, WireDtype::TopK, n)?;
    let k = rd.varint("topk.k")?;
    if k == 0 || k > n as u64 {
        return Err(werr("topk.k", format!("k = {k} outside 1..={n} survivors")));
    }
    let k = k as usize;
    let width = u32::from(rd.u8("topk.idx_bits")?);
    if width != index_bits(n) {
        return Err(werr(
            "topk.idx_bits",
            format!(
                "width {width} does not match ⌈log₂ {n}⌉ = {}",
                index_bits(n)
            ),
        ));
    }
    let packed = rd.take(packed_bytes(k as u64, width) as usize, "topk.indices")?;
    let vals = rd.take(4 * k, "topk.values")?;
    rd.done("topk.values")?;
    out.fill(0.0);
    let mut br = BitReader::new(packed);
    for (j, c) in vals.chunks_exact(4).enumerate() {
        let i = br.read(width);
        if i >= n as u64 {
            return Err(werr(
                &format!("topk.indices[{j}]"),
                format!("index {i} outside 0..{n}"),
            ));
        }
        out[i as usize] = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// PrunedQ
// ---------------------------------------------------------------------------

/// Exact encoded size of a [`WireDtype::PrunedQ`] container.
pub fn pruned_len(numel: usize, block: usize, kept_blocks: usize, bits: u32) -> u64 {
    let n_blocks = numel.div_ceil(block.max(1));
    let idx = index_bits(n_blocks);
    4 + varint_len(numel as u64)
        + 1
        + varint_len(block as u64)
        + varint_len(kept_blocks as u64)
        + 1
        + packed_bytes(kept_blocks as u64, idx)
        + 4
        + packed_bytes(kept_blocks as u64 * block as u64, bits)
}

/// Encodes magnitude-structured pruning composed with quantization: the
/// `kept_blocks` blocks of `block` contiguous elements with the largest
/// L2 norm survive, their values quantized to `bits` bits against one
/// shared max-abs scale; everything else decodes to zero. A short final
/// block is zero-padded in the code section so the encoded size never
/// depends on which blocks won. `bits` must be in `2..=16`.
pub fn encode_pruned(
    values: &[f32],
    block: usize,
    kept_blocks: usize,
    bits: u32,
    stream: u64,
    ws: &mut Workspace,
    buf: &mut WireBuf,
) {
    debug_assert!((2..=16).contains(&bits), "pruned bits must be in 2..=16");
    let n = values.len();
    let block = block.max(1);
    let n_blocks = n.div_ceil(block);
    let kept = kept_blocks.clamp(1, n_blocks.max(1));
    let mut idx = ws.take_indices();
    top_block_indices(values, block, kept, ws, &mut idx);
    let out = buf.bytes_mut();
    out.clear();
    out.reserve(pruned_len(n, block, kept, bits) as usize);
    write_header(out, WireDtype::PrunedQ, n);
    out.push(bits as u8);
    write_varint(out, block as u64);
    write_varint(out, kept as u64);
    let width = index_bits(n_blocks);
    out.push(width as u8);
    let mut bw = BitWriter::new(out);
    for &b in &idx {
        bw.push(u64::from(b), width);
    }
    bw.finish();
    // One shared scale over the surviving elements.
    let mut scale = 0.0f32;
    for &b in &idx {
        let start = b as usize * block;
        for v in &values[start..(start + block).min(n)] {
            scale = scale.max(v.abs());
        }
    }
    out.extend_from_slice(&scale.to_le_bytes());
    let levels = (1u32 << (bits - 1)) - 1;
    let mut bw = BitWriter::new(out);
    if scale == 0.0 || !scale.is_finite() {
        for _ in 0..kept * block {
            bw.push(u64::from(levels), bits);
        }
    } else {
        let inv = levels as f32 / scale;
        let lv = levels as f32;
        let mut rng = seeded_rng(stream);
        for &b in &idx {
            let start = b as usize * block;
            for j in 0..block {
                let v = values.get(start + j).copied().unwrap_or(0.0);
                let x = v * inv;
                let lo = x.floor();
                let frac = x - lo;
                let q = if rng.gen::<f32>() < frac {
                    lo + 1.0
                } else {
                    lo
                };
                let q = q.clamp(-lv, lv) as i64;
                bw.push((q + i64::from(levels)) as u64, bits);
            }
        }
    }
    bw.finish();
    ws.give_indices(idx);
}

/// Decodes a PrunedQ container into `out`: zeros everywhere, surviving
/// blocks dequantized in place. A non-finite scale fills the surviving
/// blocks with NaN (divergence stays visible).
///
/// # Errors
///
/// [`TensorError::Wire`] naming the malformed field.
pub fn decode_pruned(buf: &WireBuf, out: &mut [f32]) -> Result<(), TensorError> {
    let n = out.len();
    let mut rd = read_header(buf, WireDtype::PrunedQ, n)?;
    let bits = u32::from(rd.u8("pruned.bits")?);
    if !(2..=16).contains(&bits) {
        return Err(werr("pruned.bits", format!("bits {bits} outside 2..=16")));
    }
    let block = rd.varint("pruned.block")?;
    // The block size is a codec parameter, not bounded by `n` (a short
    // tensor still uses the codec's block); only zero and
    // overflow-enabling sizes are malformed.
    if block == 0 || block > 1 << 24 {
        return Err(werr(
            "pruned.block",
            format!("block size {block} outside 1..=2^24"),
        ));
    }
    let block = block as usize;
    let n_blocks = n.div_ceil(block);
    let kept = rd.varint("pruned.kept_blocks")?;
    if kept == 0 || kept > n_blocks as u64 {
        return Err(werr(
            "pruned.kept_blocks",
            format!("kept_blocks {kept} outside 1..={n_blocks}"),
        ));
    }
    let kept = kept as usize;
    let width = u32::from(rd.u8("pruned.idx_bits")?);
    if width != index_bits(n_blocks) {
        return Err(werr(
            "pruned.idx_bits",
            format!(
                "width {width} does not match ⌈log₂ {n_blocks}⌉ = {}",
                index_bits(n_blocks)
            ),
        ));
    }
    let packed_idx = rd.take(packed_bytes(kept as u64, width) as usize, "pruned.indices")?;
    let scale = rd.f32("pruned.scale")?;
    let codes = rd.take(
        packed_bytes(kept as u64 * block as u64, bits) as usize,
        "pruned.codes",
    )?;
    rd.done("pruned.codes")?;
    out.fill(0.0);
    let levels = (1u32 << (bits - 1)) - 1;
    let max_code = u64::from(2 * levels);
    let mut bi = BitReader::new(packed_idx);
    let mut bc = BitReader::new(codes);
    for j in 0..kept {
        let b = bi.read(width);
        if b >= n_blocks as u64 {
            return Err(werr(
                &format!("pruned.indices[{j}]"),
                format!("block index {b} outside 0..{n_blocks}"),
            ));
        }
        let start = b as usize * block;
        for off in 0..block {
            let code = bc.read(bits);
            if code > max_code {
                return Err(werr(
                    &format!("pruned.codes[{}]", j * block + off),
                    format!("code {code} exceeds 2·levels = {max_code}"),
                ));
            }
            if let Some(v) = out.get_mut(start + off) {
                *v = if scale.is_finite() {
                    (code as i64 - i64::from(levels)) as f32 * scale / levels as f32
                } else {
                    f32::NAN
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{intq_roundtrip, topk_mask};

    fn payload(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 % 211) as f32 - 105.0) * 0.017)
            .collect()
    }

    #[test]
    fn raw_is_the_headerless_legacy_format() {
        let v = payload(9);
        let mut buf = WireBuf::new();
        encode_raw(&v, &mut buf);
        assert_eq!(buf.len() as u64, raw_len(9));
        assert_eq!(buf.len(), 36, "exactly 4 bytes per scalar, no header");
        let mut out = vec![0.0f32; 9];
        decode_raw(&buf, &mut out).unwrap();
        assert_eq!(out, v, "raw round trip is bitwise exact");
    }

    #[test]
    fn f16_container_round_trips_and_measures_its_law() {
        for n in [1usize, 7, 64, 1000] {
            let v = payload(n);
            let mut buf = WireBuf::new();
            encode_f16(&v, &mut buf);
            assert_eq!(buf.len() as u64, f16_len(n), "n = {n}");
            let mut out = vec![0.0f32; n];
            decode_f16(&buf, &mut out).unwrap();
            for (a, b) in out.iter().zip(&v) {
                assert_eq!(*a, f16_bits_to_f32(f32_to_f16_bits(*b)));
            }
        }
    }

    #[test]
    fn intq_wire_matches_the_in_place_kernel_bit_for_bit() {
        for bits in [2u32, 4, 8, 13, 16] {
            let v = payload(257);
            let mut buf = WireBuf::new();
            encode_intq(&v, bits, 99, &mut buf);
            assert_eq!(buf.len() as u64, intq_len(257, bits), "bits = {bits}");
            let mut out = vec![0.0f32; 257];
            decode_intq(&buf, &mut out).unwrap();
            let mut reference = v.clone();
            intq_roundtrip(&mut reference, bits, 99);
            assert_eq!(out, reference, "wire and in-place paths must agree");
        }
    }

    #[test]
    fn intq_divergence_stays_visible() {
        let v = vec![1.0f32, f32::INFINITY, -3.0];
        let mut buf = WireBuf::new();
        encode_intq(&v, 8, 0, &mut buf);
        assert_eq!(
            buf.len() as u64,
            intq_len(3, 8),
            "size law holds even diverged"
        );
        let mut out = vec![0.0f32; 3];
        decode_intq(&buf, &mut out).unwrap();
        assert!(out.iter().all(|x| x.is_nan()), "divergence decodes to NaN");
    }

    #[test]
    fn topk_container_matches_the_masking_kernel() {
        let mut ws = Workspace::new();
        let v = payload(300);
        let k = 30;
        let mut buf = WireBuf::new();
        encode_topk(&v, k, &mut ws, &mut buf);
        assert_eq!(buf.len() as u64, topk_len(300, k));
        let mut out = vec![1.0f32; 300];
        decode_topk(&buf, &mut out).unwrap();
        let mut reference = v.clone();
        topk_mask(&mut reference, k, &mut ws);
        assert_eq!(out, reference, "decode must equal the in-place mask");
    }

    #[test]
    fn topk_beats_raw_for_sparse_fractions() {
        // 5% survivors of 64k elements: ~17-bit indices + 4-byte values
        // ≪ 4 bytes/scalar raw.
        let n = 64 * 1024;
        let k = n / 20;
        assert!(topk_len(n, k) < raw_len(n) / 6);
    }

    #[test]
    fn pruned_round_trips_and_zeroes_losers() {
        let mut ws = Workspace::new();
        let mut v = vec![0.01f32; 128];
        // Blocks 1 and 3 carry all the mass.
        for j in 0..32 {
            v[32 + j] = 1.0 + j as f32 * 0.01;
            v[96 + j] = -2.0 + j as f32 * 0.01;
        }
        let mut buf = WireBuf::new();
        encode_pruned(&v, 32, 2, 8, 7, &mut ws, &mut buf);
        assert_eq!(buf.len() as u64, pruned_len(128, 32, 2, 8));
        let mut out = vec![9.0f32; 128];
        decode_pruned(&buf, &mut out).unwrap();
        for j in 0..32 {
            assert_eq!(out[j], 0.0, "pruned block decodes to zero");
            assert_eq!(out[64 + j], 0.0, "pruned block decodes to zero");
            assert!((out[32 + j] - v[32 + j]).abs() < 0.02, "survivor {j}");
            assert!((out[96 + j] - v[96 + j]).abs() < 0.02, "survivor {j}");
        }
    }

    #[test]
    fn pruned_short_final_block_keeps_the_size_law() {
        let mut ws = Workspace::new();
        // 70 elements, block 32 → 3 blocks, last one 6 elements. Force
        // the short block to win: its elements are the largest.
        let mut v = vec![0.001f32; 70];
        for x in v[64..].iter_mut() {
            *x = 5.0;
        }
        let mut buf = WireBuf::new();
        encode_pruned(&v, 32, 1, 4, 0, &mut ws, &mut buf);
        assert_eq!(
            buf.len() as u64,
            pruned_len(70, 32, 1, 4),
            "padding keeps the size independent of which block won"
        );
        let mut out = vec![0.0f32; 70];
        decode_pruned(&buf, &mut out).unwrap();
        assert!(out[..64].iter().all(|&x| x == 0.0));
        assert!(out[64..].iter().all(|&x| (x - 5.0).abs() < 1.0));
    }

    #[test]
    fn decode_errors_name_field_paths() {
        let v = payload(16);
        let mut buf = WireBuf::new();
        encode_intq(&v, 8, 0, &mut buf);

        // Truncation.
        let mut cut = buf.clone();
        cut.bytes_mut().truncate(6);
        let mut out = vec![0.0f32; 16];
        let err = decode_intq(&cut, &mut out).unwrap_err().to_string();
        assert!(
            err.contains("intq.scale") || err.contains("intq.bits"),
            "{err}"
        );

        // Wrong magic.
        let mut bad = buf.clone();
        bad.bytes_mut()[0] = b'X';
        let err = decode_intq(&bad, &mut out).unwrap_err().to_string();
        assert!(err.contains("header.magic"), "{err}");

        // Wrong version.
        let mut bad = buf.clone();
        bad.bytes_mut()[2] = 99;
        let err = decode_intq(&bad, &mut out).unwrap_err().to_string();
        assert!(err.contains("header.version"), "{err}");

        // Dtype mismatch against the decoder.
        let err = decode_f16(&buf, &mut out).unwrap_err().to_string();
        assert!(err.contains("header.dtype"), "{err}");

        // Oversized declared shape never allocates — it fails the
        // destination check.
        let mut huge = buf.clone();
        huge.bytes_mut()[4] = 0xFF; // varint numel → multi-byte monster
        huge.bytes_mut().insert(5, 0xFF);
        huge.bytes_mut().insert(6, 0x7F);
        let err = decode_intq(&huge, &mut out).unwrap_err().to_string();
        assert!(err.contains("shape.numel"), "{err}");

        // Trailing garbage.
        let mut long = buf.clone();
        long.bytes_mut().push(0);
        let err = decode_intq(&long, &mut out).unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn topk_decode_rejects_out_of_range_indices() {
        let mut ws = Workspace::new();
        let v = payload(10);
        let mut buf = WireBuf::new();
        encode_topk(&v, 3, &mut ws, &mut buf);
        // k sits right after the header (4 bytes magic/version/dtype +
        // 1 varint numel byte); forge k > numel.
        let kpos = 5;
        assert_eq!(buf.as_bytes()[kpos], 3);
        let mut bad = buf.clone();
        bad.bytes_mut()[kpos] = 77;
        let mut out = vec![0.0f32; 10];
        let err = decode_topk(&bad, &mut out).unwrap_err().to_string();
        assert!(err.contains("topk.k"), "{err}");
    }

    #[test]
    fn wirebufs_recycle_through_the_workspace_pool() {
        let mut ws = Workspace::new();
        let v = payload(512);
        let mut buf = ws.take_wire();
        encode_intq(&v, 8, 1, &mut buf);
        ws.give_wire(buf);
        let warm = ws.fresh_allocs();
        for s in 0..5u64 {
            let mut buf = ws.take_wire();
            encode_intq(&v, 8, s, &mut buf);
            let mut out = vec![0.0f32; 512];
            decode_intq(&buf, &mut out).unwrap();
            ws.give_wire(buf);
        }
        assert_eq!(
            ws.fresh_allocs(),
            warm,
            "steady-state encodes allocate nothing"
        );
    }

    #[test]
    fn varint_len_matches_the_writer() {
        for v in [0u64, 1, 127, 128, 300, 1 << 14, (1 << 21) - 1, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out.len() as u64, varint_len(v), "{v}");
            let mut rd = Rd::new(&out);
            assert_eq!(rd.varint("x").unwrap(), v);
        }
    }
}
