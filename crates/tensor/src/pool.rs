//! Max and average pooling.
//!
//! Each op has a plain entry point that allocates its result and a `_ws`
//! twin that draws output buffers from a caller [`Workspace`] (and, for
//! max-pool, refills a caller-owned argmax buffer) so the training hot
//! path stays allocation-free after warm-up.

use crate::conv::ConvGeom;
use crate::workspace::Workspace;
use crate::{Result, Tensor, TensorError};

/// Result of a max-pool forward pass: the pooled tensor plus the flat input
/// offsets of each winning element, needed for the backward scatter.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[n, c, out_h, out_w]`.
    pub output: Tensor,
    /// For each output element, the flat offset into the input buffer of the
    /// maximal element in its window.
    pub argmax: Vec<usize>,
}

/// Shared max-pool kernel writing into caller buffers.
#[allow(clippy::too_many_arguments)]
fn maxpool_core(
    data: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    g: &ConvGeom,
    window: usize,
    stride: usize,
    out: &mut [f32],
    argmax: &mut [usize],
) {
    let out_plane = g.out_h * g.out_w;
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * out_plane;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = base;
                    for ky in 0..window {
                        for kx in 0..window {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy >= h || ix >= w {
                                continue;
                            }
                            let off = base + iy * w + ix;
                            if data[off] > best {
                                best = data[off];
                                best_off = off;
                            }
                        }
                    }
                    out[obase + oy * g.out_w + ox] = best;
                    argmax[obase + oy * g.out_w + ox] = best_off;
                }
            }
        }
    }
}

/// Max-pool forward over non-overlapping or strided windows.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{Tensor, pool::maxpool2d_forward};
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2])?;
/// let p = maxpool2d_forward(&x, 2, 2)?;
/// assert_eq!(p.output.data(), &[4.0]);
/// # Ok(())
/// # }
/// ```
pub fn maxpool2d_forward(input: &Tensor, window: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let len = n * c * g.out_h * g.out_w;
    let mut out = vec![0.0f32; len];
    let mut argmax = vec![0usize; len];
    maxpool_core(
        input.data(),
        n,
        c,
        h,
        w,
        &g,
        window,
        stride,
        &mut out,
        &mut argmax,
    );
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, g.out_h, g.out_w])?,
        argmax,
    })
}

/// [`maxpool2d_forward`] writing the pooled tensor into a workspace
/// buffer and refilling the caller-owned `argmax` buffer in place.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
pub fn maxpool2d_forward_ws(
    input: &Tensor,
    window: usize,
    stride: usize,
    ws: &mut Workspace,
    argmax: &mut Vec<usize>,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let len = n * c * g.out_h * g.out_w;
    let mut out = ws.take(len);
    argmax.clear();
    argmax.resize(len, 0);
    maxpool_core(
        input.data(),
        n,
        c,
        h,
        w,
        &g,
        window,
        stride,
        &mut out,
        argmax,
    );
    Tensor::from_vec(out, &[n, c, g.out_h, g.out_w])
}

/// Max-pool backward: routes each output gradient to the argmax position.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `grad_out` does not match the
/// recorded argmax table.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    let mut ws = Workspace::new();
    maxpool2d_backward_ws(grad_out, argmax, input_dims, &mut ws)
}

/// [`maxpool2d_backward`] drawing the gradient buffer from `ws`.
///
/// # Errors
///
/// Same conditions as [`maxpool2d_backward`].
pub fn maxpool2d_backward_ws(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
    ws: &mut Workspace,
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            left: vec![grad_out.numel()],
            right: vec![argmax.len()],
            op: "maxpool2d_backward",
        });
    }
    let numel: usize = input_dims.iter().product();
    let mut gi = ws.take_zeroed(numel);
    for (&g, &off) in grad_out.data().iter().zip(argmax) {
        gi[off] += g;
    }
    Tensor::from_vec(gi, input_dims)
}

/// Shared average-pool kernel writing into a caller buffer.
#[allow(clippy::too_many_arguments)]
fn avgpool_core(
    data: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    g: &ConvGeom,
    window: usize,
    stride: usize,
    out: &mut [f32],
) {
    let out_plane = g.out_h * g.out_w;
    let norm = 1.0 / (window * window) as f32;
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * out_plane;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += data[base + (oy * stride + ky) * w + (ox * stride + kx)];
                        }
                    }
                    out[obase + oy * g.out_w + ox] = acc * norm;
                }
            }
        }
    }
}

/// Average-pool forward.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
pub fn avgpool2d_forward(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let mut ws = Workspace::new();
    avgpool2d_forward_ws(input, window, stride, &mut ws)
}

/// [`avgpool2d_forward`] drawing the output buffer from `ws`.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
pub fn avgpool2d_forward_ws(
    input: &Tensor,
    window: usize,
    stride: usize,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let mut out = ws.take(n * c * g.out_h * g.out_w);
    avgpool_core(input.data(), n, c, h, w, &g, window, stride, &mut out);
    Tensor::from_vec(out, &[n, c, g.out_h, g.out_w])
}

/// Average-pool backward: spreads each output gradient uniformly over its
/// window.
///
/// # Errors
///
/// Returns a geometry or shape error when dimensions are inconsistent.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    let mut ws = Workspace::new();
    avgpool2d_backward_ws(grad_out, input_dims, window, stride, &mut ws)
}

/// [`avgpool2d_backward`] drawing the gradient buffer from `ws`.
///
/// # Errors
///
/// Same conditions as [`avgpool2d_backward`].
pub fn avgpool2d_backward_ws(
    grad_out: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (n, c, h, w) = crate::Shape::new(input_dims).as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    if gn != n || gc != c || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "avgpool2d_backward",
        });
    }
    let norm = 1.0 / (window * window) as f32;
    let numel: usize = input_dims.iter().product();
    let mut gi = ws.take_zeroed(numel);
    let go = grad_out.data();
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * g.out_h * g.out_w;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let gval = go[obase + oy * g.out_w + ox] * norm;
                    for ky in 0..window {
                        for kx in 0..window {
                            gi[base + (oy * stride + ky) * w + (ox * stride + kx)] += gval;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gi, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(p.output.data(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let gx = maxpool2d_backward(&g, &p.argmax, x.dims()).unwrap();
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_validates_len() {
        let g = Tensor::zeros(&[1, 1, 1, 2]);
        assert!(maxpool2d_backward(&g, &[0], &[1, 1, 2, 2]).is_err());
    }

    #[test]
    fn ws_variant_matches_plain_and_reuses_buffers() {
        let x = Tensor::from_fn(&[2, 3, 6, 6], |i| ((i * 31 % 23) as f32 - 11.0) * 0.3);
        let plain = maxpool2d_forward(&x, 2, 2).unwrap();
        let mut ws = Workspace::new();
        let mut argmax = Vec::new();
        let y1 = maxpool2d_forward_ws(&x, 2, 2, &mut ws, &mut argmax).unwrap();
        assert_eq!(y1.data(), plain.output.data());
        assert_eq!(argmax, plain.argmax);
        let g1 = maxpool2d_backward_ws(&y1, &argmax, x.dims(), &mut ws).unwrap();
        ws.recycle(y1);
        ws.recycle(g1);
        let allocs = ws.fresh_allocs();
        let y2 = maxpool2d_forward_ws(&x, 2, 2, &mut ws, &mut argmax).unwrap();
        let g2 = maxpool2d_backward_ws(&y2, &argmax, x.dims(), &mut ws).unwrap();
        ws.recycle(y2);
        ws.recycle(g2);
        assert_eq!(ws.fresh_allocs(), allocs, "steady state must not allocate");
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let p = avgpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.data(), &[4.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gx = avgpool2d_backward(&g, &[1, 1, 2, 2], 2, 2).unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_handles_multichannel_batches() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.output.dims(), &[2, 3, 2, 2]);
        // Each window max is its bottom-right corner for an increasing ramp.
        assert_eq!(p.output.get(&[0, 0, 0, 0]).unwrap(), 5.0);
        assert_eq!(p.output.get(&[1, 2, 1, 1]).unwrap(), 95.0);
    }

    #[test]
    fn maxpool_grad_accumulates_on_shared_argmax() {
        // Overlapping windows (stride 1) that share one maximum must
        // accumulate gradient there.
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let p = maxpool2d_forward(&x, 2, 1).unwrap();
        let g = Tensor::ones(p.output.dims());
        let gx = maxpool2d_backward(&g, &p.argmax, x.dims()).unwrap();
        // The 9.0 at offset 3 wins windows (0,0), (1,0) and (1,1)… count them.
        let wins = p.argmax.iter().filter(|&&o| o == 3).count();
        assert_eq!(gx.data()[3], wins as f32);
        assert!(wins >= 2);
    }
}
