//! Max and average pooling.

use crate::conv::ConvGeom;
use crate::{Result, Tensor, TensorError};

/// Result of a max-pool forward pass: the pooled tensor plus the flat input
/// offsets of each winning element, needed for the backward scatter.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[n, c, out_h, out_w]`.
    pub output: Tensor,
    /// For each output element, the flat offset into the input buffer of the
    /// maximal element in its window.
    pub argmax: Vec<usize>,
}

/// Max-pool forward over non-overlapping or strided windows.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{Tensor, pool::maxpool2d_forward};
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2])?;
/// let p = maxpool2d_forward(&x, 2, 2)?;
/// assert_eq!(p.output.data(), &[4.0]);
/// # Ok(())
/// # }
/// ```
pub fn maxpool2d_forward(input: &Tensor, window: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let out_plane = g.out_h * g.out_w;
    let mut out = vec![f32::NEG_INFINITY; n * c * out_plane];
    let mut argmax = vec![0usize; n * c * out_plane];
    let data = input.data();
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * out_plane;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = base;
                    for ky in 0..window {
                        for kx in 0..window {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy >= h || ix >= w {
                                continue;
                            }
                            let off = base + iy * w + ix;
                            if data[off] > best {
                                best = data[off];
                                best_off = off;
                            }
                        }
                    }
                    out[obase + oy * g.out_w + ox] = best;
                    argmax[obase + oy * g.out_w + ox] = best_off;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, g.out_h, g.out_w])?,
        argmax,
    })
}

/// Max-pool backward: routes each output gradient to the argmax position.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `grad_out` does not match the
/// recorded argmax table.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            left: vec![grad_out.numel()],
            right: vec![argmax.len()],
            op: "maxpool2d_backward",
        });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.data_mut();
    for (&g, &off) in grad_out.data().iter().zip(argmax) {
        gi[off] += g;
    }
    Ok(grad_in)
}

/// Average-pool forward.
///
/// # Errors
///
/// Returns a geometry error when the window does not fit the input.
pub fn avgpool2d_forward(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let out_plane = g.out_h * g.out_w;
    let norm = 1.0 / (window * window) as f32;
    let mut out = vec![0.0f32; n * c * out_plane];
    let data = input.data();
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * out_plane;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += data[base + (oy * stride + ky) * w + (ox * stride + kx)];
                        }
                    }
                    out[obase + oy * g.out_w + ox] = acc * norm;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, g.out_h, g.out_w])
}

/// Average-pool backward: spreads each output gradient uniformly over its
/// window.
///
/// # Errors
///
/// Returns a geometry or shape error when dimensions are inconsistent.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    let (n, c, h, w) = crate::Shape::new(input_dims).as_nchw()?;
    let g = ConvGeom::new(h, w, window, window, stride, 0)?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    if gn != n || gc != c || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "avgpool2d_backward",
        });
    }
    let norm = 1.0 / (window * window) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.data_mut();
    let go = grad_out.data();
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * g.out_h * g.out_w;
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let gval = go[obase + oy * g.out_w + ox] * norm;
                    for ky in 0..window {
                        for kx in 0..window {
                            gi[base + (oy * stride + ky) * w + (ox * stride + kx)] += gval;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(p.output.data(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let gx = maxpool2d_backward(&g, &p.argmax, x.dims()).unwrap();
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_validates_len() {
        let g = Tensor::zeros(&[1, 1, 1, 2]);
        assert!(maxpool2d_backward(&g, &[0], &[1, 1, 2, 2]).is_err());
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let p = avgpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.data(), &[4.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gx = avgpool2d_backward(&g, &[1, 1, 2, 2], 2, 2).unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_handles_multichannel_batches() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let p = maxpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(p.output.dims(), &[2, 3, 2, 2]);
        // Each window max is its bottom-right corner for an increasing ramp.
        assert_eq!(p.output.get(&[0, 0, 0, 0]).unwrap(), 5.0);
        assert_eq!(p.output.get(&[1, 2, 1, 1]).unwrap(), 95.0);
    }

    #[test]
    fn maxpool_grad_accumulates_on_shared_argmax() {
        // Overlapping windows (stride 1) that share one maximum must
        // accumulate gradient there.
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let p = maxpool2d_forward(&x, 2, 1).unwrap();
        let g = Tensor::ones(p.output.dims());
        let gx = maxpool2d_backward(&g, &p.argmax, x.dims()).unwrap();
        // The 9.0 at offset 3 wins windows (0,0), (1,0) and (1,1)… count them.
        let wins = p.argmax.iter().filter(|&&o| o == 3).count();
        assert_eq!(gx.data()[3], wins as f32);
        assert!(wins >= 2);
    }
}
