//! Runtime-dispatched SIMD lanes for the compute and codec hot paths.
//!
//! Every kernel in this crate used to lean on LLVM auto-vectorization.
//! This module makes the vector shapes explicit: a portable f32 lane
//! abstraction ([`SimdF32`]), an AVX2/FMA/F16C backend selected **once**
//! at startup behind `is_x86_feature_detected!`, and a scalar fallback
//! that is byte-for-byte the historical fast path. The selected ISA is
//! queryable via [`active_isa`] and overridable with the `GSFL_SIMD`
//! environment variable (`auto` | `avx2` | `scalar`), mirroring
//! `GSFL_THREADS`.
//!
//! # Equivalence contract
//!
//! Kernels dispatched through this module fall into two classes:
//!
//! * **Bit-identical** — the vector form preserves each output
//!   element's reduction order (GEMM lanes run *across* output columns;
//!   fp16 uses hardware conversion with scalar NaN canonicalization;
//!   IntQ/TopK vector math is exact element-wise IEEE arithmetic), so
//!   any ISA produces the same bytes as the scalar tier. The golden
//!   fixtures hold under every `GSFL_SIMD` setting.
//! * **Epsilon-contracted** — reductions that regroup partial sums for
//!   speed (the FMA long-dot behind the conv weight gradient). These are
//!   deterministic for a fixed ISA at any thread count, and property
//!   tests pin them within relative epsilon of the scalar tier.
//!
//! The module is the only place in the crate allowed to use `unsafe`
//! (intrinsics and `#[target_feature]` entries); everything it exports
//! is a safe function that re-checks CPU support before taking the
//! vector path.
#![allow(unsafe_code)]

use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// ISA selection
// ---------------------------------------------------------------------------

/// An instruction-set tier the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar lanes — the historical fast path, bit-identical
    /// to what every prior release computed.
    Scalar,
    /// 8-wide AVX2 lanes with FMA and F16C (all three must be present).
    Avx2,
}

impl Isa {
    /// Short stable name, as accepted by `GSFL_SIMD` and recorded in
    /// `BENCH_results.json`.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }

    /// Whether the running CPU can execute this tier. [`Isa::Scalar`]
    /// is always available; [`Isa::Avx2`] requires runtime-detected
    /// `avx2`, `fma` *and* `f16c`.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => avx2_available(),
        }
    }

    /// Lane width of the f32 vector type on this tier.
    pub fn lanes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 8,
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    // Each detection macro caches in an atomic, so this is a handful of
    // relaxed loads — cheap enough for per-call safety re-checks.
    is_x86_feature_detected!("avx2")
        && is_x86_feature_detected!("fma")
        && is_x86_feature_detected!("f16c")
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn avx2_available() -> bool {
    false
}

/// What `GSFL_SIMD` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Requested {
    Auto,
    Scalar,
    Avx2,
}

fn parse_request(raw: &str) -> Option<Requested> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Some(Requested::Auto),
        "scalar" => Some(Requested::Scalar),
        "avx2" => Some(Requested::Avx2),
        _ => None,
    }
}

/// Resolves a request against the host, returning the ISA plus an
/// optional warning describing a forced fallback. Split from the env
/// read so it is unit-testable.
fn resolve(req: Requested) -> (Isa, Option<&'static str>) {
    match req {
        Requested::Scalar => (Isa::Scalar, None),
        Requested::Avx2 => {
            if Isa::Avx2.is_available() {
                (Isa::Avx2, None)
            } else {
                (
                    Isa::Scalar,
                    Some("GSFL_SIMD=avx2 requested but the host lacks avx2+fma+f16c; using scalar lanes"),
                )
            }
        }
        Requested::Auto => {
            if Isa::Avx2.is_available() {
                (Isa::Avx2, None)
            } else {
                (Isa::Scalar, None)
            }
        }
    }
}

/// The process-wide kernel ISA: `GSFL_SIMD` if set (`auto` | `avx2` |
/// `scalar`), otherwise the best runtime-detected tier. Selected once,
/// cached, and logged once to stderr; every public op entry resolves
/// its dispatch from this.
pub fn active_isa() -> Isa {
    static CACHED: OnceLock<Isa> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("GSFL_SIMD").ok();
        let req = match raw.as_deref() {
            None => Requested::Auto,
            Some(s) => match parse_request(s) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "gsfl_tensor: unknown GSFL_SIMD value {s:?} (expected auto|avx2|scalar); using auto detection"
                    );
                    Requested::Auto
                }
            },
        };
        let (isa, warning) = resolve(req);
        if let Some(w) = warning {
            eprintln!("gsfl_tensor: {w}");
        }
        eprintln!(
            "gsfl_tensor: simd dispatch: {} lanes ({})",
            isa.name(),
            match isa {
                Isa::Avx2 => "runtime-detected avx2+fma+f16c",
                Isa::Scalar => "portable fallback",
            }
        );
        isa
    })
}

// ---------------------------------------------------------------------------
// Portable lane abstraction
// ---------------------------------------------------------------------------

/// A pack of f32 lanes with the element-wise ops the kernels need.
///
/// Implemented by `f32` itself (one lane — the portable fallback) and,
/// on x86-64, by the AVX2 8-lane vector. Generic kernels written
/// against this trait monomorphize to straight-line vector code under
/// a `#[target_feature]` entry and to plain scalar code otherwise.
///
/// Semantics notes for bit-exactness:
/// * [`SimdF32::fma`] is *fused* only where the ISA fuses (AVX2); the
///   scalar impl is an unfused multiply-then-add. Only
///   epsilon-contracted kernels may use it.
/// * [`SimdF32::vmax`] follows hardware `maxps` semantics exactly:
///   `if self > rhs { self } else { rhs }` — NaN in either operand (and
///   a `+0 == -0` tie) selects `rhs`.
pub trait SimdF32: Copy {
    /// Lanes in the pack.
    const LANES: usize;
    /// All lanes set to `x`.
    fn splat(x: f32) -> Self;
    /// Loads the first `LANES` elements of `xs` (which must hold at
    /// least that many).
    fn load(xs: &[f32]) -> Self;
    /// Stores the pack into the first `LANES` elements of `out`.
    fn store(self, out: &mut [f32]);
    /// Lane-wise `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise `self - rhs`.
    fn sub(self, rhs: Self) -> Self;
    /// Lane-wise `self * rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise `self / rhs`.
    fn div(self, rhs: Self) -> Self;
    /// Lane-wise `self * a + b`, fused on ISAs with FMA, unfused on the
    /// scalar tier (see the trait docs).
    fn fma(self, a: Self, b: Self) -> Self;
    /// Lane-wise hardware-`maxps` maximum (see the trait docs).
    fn vmax(self, rhs: Self) -> Self;
    /// Lane-wise absolute value (sign-bit clear).
    fn vabs(self) -> Self;
    /// Lane-wise round toward negative infinity.
    fn vfloor(self) -> Self;
}

impl SimdF32 for f32 {
    const LANES: usize = 1;

    #[inline(always)]
    fn splat(x: f32) -> Self {
        x
    }

    #[inline(always)]
    fn load(xs: &[f32]) -> Self {
        xs[0]
    }

    #[inline(always)]
    fn store(self, out: &mut [f32]) {
        out[0] = self;
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        // Deliberately unfused: the scalar tier must reproduce the
        // historical two-rounding arithmetic bit for bit.
        self * a + b
    }

    #[inline(always)]
    fn vmax(self, rhs: Self) -> Self {
        if self > rhs {
            self
        } else {
            rhs
        }
    }

    #[inline(always)]
    fn vabs(self) -> Self {
        f32::from_bits(self.to_bits() & 0x7FFF_FFFF)
    }

    #[inline(always)]
    fn vfloor(self) -> Self {
        self.floor()
    }
}

// ---------------------------------------------------------------------------
// Generic kernels (monomorphized per lane type)
// ---------------------------------------------------------------------------

/// Register-tile GEMM microkernel over `MR_` rows × `CV` vector columns.
/// Lanes run **across output columns**, so every output element still
/// accumulates its `a·b` products in ascending-`k` order with separate
/// multiply and add — bit-identical to the scalar microkernel for all
/// finite inputs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tile_v<V: SimdF32, const MR_: usize, const CV: usize>(
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let w = V::LANES;
    let mut acc = [[V::splat(0.0); CV]; MR_];
    for kk in 0..k {
        let base = kk * n + j0;
        let mut bv = [V::splat(0.0); CV];
        for (c, bvc) in bv.iter_mut().enumerate() {
            *bvc = V::load(&b[base + c * w..]);
        }
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = V::splat(a[(i0 + r) * k + kk]);
            for (accv, &bvc) in acc_row.iter_mut().zip(bv.iter()) {
                *accv = accv.add(av.mul(bvc));
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let row = (i0 + r) * n + j0;
        for (c, accv) in acc_row.iter().enumerate() {
            accv.store(&mut out[row + c * w..]);
        }
    }
}

/// Runs every full vector-width column panel of the GEMM and returns
/// the first unprocessed column (a multiple of `V::LANES`); the caller
/// finishes the `n % LANES` edge with its scalar panels.
#[inline(always)]
fn gemm_main_v<V: SimdF32>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) -> usize {
    let w = V::LANES;
    let mut j0 = 0;
    while j0 + 2 * w <= n {
        let mut i0 = 0;
        while i0 + 4 <= m {
            gemm_tile_v::<V, 4, 2>(i0, j0, k, n, a, b, out);
            i0 += 4;
        }
        while i0 < m {
            gemm_tile_v::<V, 1, 2>(i0, j0, k, n, a, b, out);
            i0 += 1;
        }
        j0 += 2 * w;
    }
    while j0 + w <= n {
        let mut i0 = 0;
        while i0 + 4 <= m {
            gemm_tile_v::<V, 4, 1>(i0, j0, k, n, a, b, out);
            i0 += 4;
        }
        while i0 < m {
            gemm_tile_v::<V, 1, 1>(i0, j0, k, n, a, b, out);
            i0 += 1;
        }
        j0 += w;
    }
    j0
}

// ---------------------------------------------------------------------------
// Safe dispatched entry points
// ---------------------------------------------------------------------------

/// GEMM vector main: processes all full 8-wide column panels when `isa`
/// is AVX2 (and the CPU agrees), returning the first unprocessed
/// column. Returns 0 on the scalar tier — the caller's historical
/// scalar panels then cover the whole width, keeping that path
/// literally unchanged.
pub(crate) fn gemm_main(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 && avx2_available() {
        // SAFETY: avx2+fma+f16c presence was just re-checked.
        return unsafe { x86::gemm_main_avx2(m, k, n, a, b, out) };
    }
    let _ = (isa, m, k, n, a, b, out);
    0
}

/// Long dot product for the conv weight gradient: four interleaved
/// 8-lane FMA accumulators on AVX2 (folded in fixed order, sequential
/// remainder) — deterministic for a fixed ISA, epsilon-contracted
/// against the scalar tier's 8-lane unfused reduction.
pub(crate) fn dot_long(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        return unsafe { x86::dot_fma_avx2(a, b) };
    }
    fallback::dot_lanes8(a, b)
}

/// In-place fp16 round trip: hardware F16C conversion with scalar
/// software fallback for any 8-lane block containing NaN (the software
/// path canonicalizes NaN payloads; hardware truncates them). Bit-
/// identical to the scalar tier for every input.
pub(crate) fn fp16_roundtrip_block(values: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::fp16_roundtrip_avx2(values) };
        return;
    }
    fallback::fp16_roundtrip(values);
}

/// Appends `2 · values.len()` bytes of little-endian binary16 to `out`
/// (the F16 wire payload). Byte-identical to the scalar encoder.
pub(crate) fn encode_f16_payload(values: &[f32], out: &mut Vec<u8>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::encode_f16_payload_avx2(values, out) };
        return;
    }
    fallback::encode_f16_payload(values, out);
}

/// Decodes a little-endian binary16 payload (`2 · out.len()` bytes)
/// into `out`. Bit-identical to the scalar decoder, including exact
/// NaN-payload preservation (NaN blocks take the software path).
pub(crate) fn decode_f16_payload(payload: &[u8], out: &mut [f32]) {
    debug_assert_eq!(payload.len(), out.len() * 2);
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::decode_f16_payload_avx2(payload, out) };
        return;
    }
    fallback::decode_f16_payload(payload, out);
}

/// Max-abs reduction (the IntQ scale fold). NaN elements are ignored
/// exactly as in the scalar `fold(0.0, |m, v| m.max(v.abs()))` — the
/// vector accumulate is `maxps(|x|, acc)`, whose NaN-in-first-operand
/// semantics select the accumulator.
pub(crate) fn max_abs(values: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        return unsafe { x86::max_abs_avx2(values) };
    }
    fallback::max_abs(values)
}

/// Quantizes `values[i] * inv` to stochastic-rounded codes
/// `clamp(q, -levels, levels) + levels` using the pre-drawn uniforms in
/// `draws` (one per element, in element order). Every arithmetic step
/// is exact or order-preserved, so the codes are byte-identical to the
/// scalar quantizer — including NaN inputs, which encode as code
/// `levels` (the scalar `NaN as i64 == 0` path).
pub(crate) fn intq_quantize_codes(
    values: &[f32],
    inv: f32,
    levels: u32,
    draws: &[f32],
    codes: &mut [u16],
) {
    debug_assert_eq!(values.len(), draws.len());
    debug_assert_eq!(values.len(), codes.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::intq_quantize_codes_avx2(values, inv, levels, draws, codes) };
        return;
    }
    fallback::intq_quantize_codes(values, inv, levels, draws, codes);
}

/// Dequantizes IntQ codes: `(code - levels) * scale / levels`, exact
/// integer conversion plus exact IEEE multiply/divide — bit-identical
/// to the scalar decoder.
pub(crate) fn intq_dequant_codes(codes: &[u16], levels: u32, scale: f32, out: &mut [f32]) {
    debug_assert_eq!(codes.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::intq_dequant_codes_avx2(codes, levels, scale, out) };
        return;
    }
    fallback::intq_dequant_codes(codes, levels, scale, out);
}

/// In-place stochastic-rounding quantize/dequantize round trip over one
/// block, with pre-drawn uniforms. Matches the scalar
/// `clamp(q) * scale / levels` expression exactly for finite inputs;
/// NaN inputs stay NaN (payloads may differ from the scalar tier's, as
/// NaN payload propagation through `floor` is platform arithmetic).
pub(crate) fn intq_roundtrip_block(
    values: &mut [f32],
    inv: f32,
    levels: f32,
    scale: f32,
    draws: &[f32],
) {
    debug_assert_eq!(values.len(), draws.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::intq_roundtrip_avx2(values, inv, levels, scale, draws) };
        return;
    }
    fallback::intq_roundtrip_block(values, inv, levels, scale, draws);
}

/// Whether any element is non-finite (the TopK divergence guard).
pub(crate) fn any_non_finite(values: &[f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        return unsafe { x86::any_non_finite_avx2(values) };
    }
    fallback::any_non_finite(values)
}

/// `dst[i] = |src[i]|` (the TopK magnitude pass).
pub(crate) fn abs_into(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::abs_into_avx2(src, dst) };
        return;
    }
    fallback::abs_into(src, dst);
}

/// `dst[i] = |src[i]|`, with non-finite elements ranked as +∞ (the
/// TopK index-selection magnitude pass).
pub(crate) fn abs_or_inf_into(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        unsafe { x86::abs_or_inf_into_avx2(src, dst) };
        return;
    }
    fallback::abs_or_inf_into(src, dst);
}

/// Counts elements strictly greater than `t` (ordered compare: NaN on
/// either side counts as not-greater, matching the scalar `>`).
pub(crate) fn count_gt(values: &[f32], t: f32) -> usize {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: feature presence re-checked above.
        return unsafe { x86::count_gt_avx2(values, t) };
    }
    fallback::count_gt(values, t)
}

/// Max-fold of `xs` onto `init` with `f32::max` NaN-ignoring semantics
/// (the softmax row-max pass). Exact under lane regrouping: `max` is
/// associative over non-NaN values, and a `±0` tie cannot perturb any
/// downstream `exp(v - max)` bit.
pub fn reduce_max(isa: Isa, xs: &[f32], init: f32) -> f32 {
    match isa {
        Isa::Avx2 if avx2_available() => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature presence checked in the match guard.
            return unsafe { x86::reduce_max_avx2(xs, init) };
            #[cfg(not(target_arch = "x86_64"))]
            xs.iter().copied().fold(init, f32::max)
        }
        _ => xs.iter().copied().fold(init, f32::max),
    }
}

/// `xs[i] = (xs[i] / div) * mul` — the fused softmax gradient scale
/// pass. Element-wise IEEE divide and multiply: bit-identical on every
/// tier.
pub fn div_then_mul(isa: Isa, xs: &mut [f32], div: f32, mul: f32) {
    match isa {
        Isa::Avx2 if avx2_available() => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature presence checked in the match guard.
            unsafe {
                x86::div_then_mul_avx2(xs, div, mul)
            };
            #[cfg(not(target_arch = "x86_64"))]
            for x in xs.iter_mut() {
                *x = (*x / div) * mul;
            }
        }
        _ => {
            for x in xs.iter_mut() {
                *x = (*x / div) * mul;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar fallbacks (always compiled; also serve non-x86 targets)
// ---------------------------------------------------------------------------

mod fallback {
    use crate::quant::{f16_bits_to_f32, f32_to_f16_bits};

    pub(super) fn dot_lanes8(a: &[f32], b: &[f32]) -> f32 {
        const LANES: usize = 8;
        let mut lanes = [0.0f32; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane += xa[l] * xb[l];
            }
        }
        let mut acc = 0.0f32;
        for &lane in &lanes {
            acc += lane;
        }
        for (&xa, &xb) in ca.remainder().iter().zip(cb.remainder()) {
            acc += xa * xb;
        }
        acc
    }

    pub(super) fn fp16_roundtrip(values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = f16_bits_to_f32(f32_to_f16_bits(*v));
        }
    }

    pub(super) fn encode_f16_payload(values: &[f32], out: &mut Vec<u8>) {
        out.reserve(values.len() * 2);
        for v in values {
            out.extend_from_slice(&f32_to_f16_bits(*v).to_le_bytes());
        }
    }

    pub(super) fn decode_f16_payload(payload: &[u8], out: &mut [f32]) {
        for (v, c) in out.iter_mut().zip(payload.chunks_exact(2)) {
            *v = f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]));
        }
    }

    pub(super) fn max_abs(values: &[f32]) -> f32 {
        values.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    pub(super) fn intq_quantize_codes(
        values: &[f32],
        inv: f32,
        levels: u32,
        draws: &[f32],
        codes: &mut [u16],
    ) {
        let lv = levels as f32;
        for ((v, &d), c) in values.iter().zip(draws).zip(codes.iter_mut()) {
            let x = *v * inv;
            let lo = x.floor();
            let frac = x - lo;
            let q = if d < frac { lo + 1.0 } else { lo };
            *c = (q.clamp(-lv, lv) as i64 + i64::from(levels)) as u16;
        }
    }

    pub(super) fn intq_dequant_codes(codes: &[u16], levels: u32, scale: f32, out: &mut [f32]) {
        for (c, v) in codes.iter().zip(out.iter_mut()) {
            let q = i64::from(*c) - i64::from(levels);
            *v = q as f32 * scale / levels as f32;
        }
    }

    pub(super) fn intq_roundtrip_block(
        values: &mut [f32],
        inv: f32,
        levels: f32,
        scale: f32,
        draws: &[f32],
    ) {
        for (v, &d) in values.iter_mut().zip(draws) {
            let x = *v * inv;
            let lo = x.floor();
            let frac = x - lo;
            let q = if d < frac { lo + 1.0 } else { lo };
            *v = q.clamp(-levels, levels) * scale / levels;
        }
    }

    pub(super) fn any_non_finite(values: &[f32]) -> bool {
        values.iter().any(|v| !v.is_finite())
    }

    pub(super) fn abs_into(src: &[f32], dst: &mut [f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.abs();
        }
    }

    pub(super) fn abs_or_inf_into(src: &[f32], dst: &mut [f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = if s.is_finite() {
                s.abs()
            } else {
                f32::INFINITY
            };
        }
    }

    pub(super) fn count_gt(values: &[f32], t: f32) -> usize {
        values.iter().filter(|&&m| m > t).count()
    }
}

// ---------------------------------------------------------------------------
// AVX2 / FMA / F16C backend
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{fallback, gemm_main_v, SimdF32};
    use crate::quant::f32_to_f16_bits;
    use std::arch::x86_64::*;

    /// 8 f32 lanes in a `__m256`.
    #[derive(Clone, Copy)]
    pub(super) struct F32x8(__m256);

    impl SimdF32 for F32x8 {
        const LANES: usize = 8;

        #[inline(always)]
        fn splat(x: f32) -> Self {
            // SAFETY: callers only reach F32x8 code under an AVX2
            // `#[target_feature]` entry gated by runtime detection.
            F32x8(unsafe { _mm256_set1_ps(x) })
        }

        #[inline(always)]
        fn load(xs: &[f32]) -> Self {
            assert!(xs.len() >= 8);
            // SAFETY: length checked; unaligned load. Feature presence
            // guaranteed by the gated caller.
            F32x8(unsafe { _mm256_loadu_ps(xs.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, out: &mut [f32]) {
            assert!(out.len() >= 8);
            // SAFETY: length checked; unaligned store. Feature presence
            // guaranteed by the gated caller.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_add_ps(self.0, rhs.0) })
        }

        #[inline(always)]
        fn sub(self, rhs: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_sub_ps(self.0, rhs.0) })
        }

        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_mul_ps(self.0, rhs.0) })
        }

        #[inline(always)]
        fn div(self, rhs: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_div_ps(self.0, rhs.0) })
        }

        #[inline(always)]
        fn fma(self, a: Self, b: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_fmadd_ps(self.0, a.0, b.0) })
        }

        #[inline(always)]
        fn vmax(self, rhs: Self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_max_ps(self.0, rhs.0) })
        }

        #[inline(always)]
        fn vabs(self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_andnot_ps(_mm256_set1_ps(-0.0), self.0) })
        }

        #[inline(always)]
        fn vfloor(self) -> Self {
            // SAFETY: see `splat`.
            F32x8(unsafe { _mm256_floor_ps(self.0) })
        }
    }

    impl F32x8 {
        #[inline(always)]
        fn to_array(self) -> [f32; 8] {
            let mut out = [0.0f32; 8];
            // SAFETY: out holds exactly 8 f32; see `SimdF32::splat`.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) };
            out
        }
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn gemm_main_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) -> usize {
        gemm_main_v::<F32x8>(m, k, n, a, b, out)
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn dot_fma_avx2(a: &[f32], b: &[f32]) -> f32 {
        let len = a.len().min(b.len());
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut s0 = _mm256_setzero_ps();
        let mut s1 = _mm256_setzero_ps();
        let mut s2 = _mm256_setzero_ps();
        let mut s3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= len {
            s0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), s0);
            s1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                s1,
            );
            s2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                s2,
            );
            s3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                s3,
            );
            i += 32;
        }
        while i + 8 <= len {
            s0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), s0);
            i += 8;
        }
        // Fixed-order fold: (s0+s1) + (s2+s3), then lanes 0..7, then the
        // sequential remainder — deterministic at any call site.
        let v = _mm256_add_ps(_mm256_add_ps(s0, s1), _mm256_add_ps(s2, s3));
        let lanes = F32x8(v).to_array();
        let mut acc = 0.0f32;
        for &lane in &lanes {
            acc += lane;
        }
        for j in i..len {
            acc += a[j] * b[j];
        }
        acc
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn fp16_roundtrip_avx2(values: &mut [f32]) {
        let n = values.len();
        let mut i = 0;
        while i + 8 <= n {
            let p = values.as_mut_ptr().add(i);
            let v = _mm256_loadu_ps(p);
            // NaN lanes must canonicalize through the software path
            // (hardware truncates NaN payloads; software pins them).
            if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v)) != 0 {
                fallback::fp16_roundtrip(&mut values[i..i + 8]);
            } else {
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm256_storeu_ps(p, _mm256_cvtph_ps(h));
            }
            i += 8;
        }
        fallback::fp16_roundtrip(&mut values[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn encode_f16_payload_avx2(values: &[f32], out: &mut Vec<u8>) {
        let n = values.len();
        let start = out.len();
        out.resize(start + 2 * n, 0);
        let dst = &mut out[start..];
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v)) != 0 {
                for l in 0..8 {
                    let h = f32_to_f16_bits(values[i + l]).to_le_bytes();
                    dst[2 * (i + l)] = h[0];
                    dst[2 * (i + l) + 1] = h[1];
                }
            } else {
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm_storeu_si128(dst.as_mut_ptr().add(2 * i).cast::<__m128i>(), h);
            }
            i += 8;
        }
        for (l, v) in values[i..].iter().enumerate() {
            let h = f32_to_f16_bits(*v).to_le_bytes();
            dst[2 * (i + l)] = h[0];
            dst[2 * (i + l) + 1] = h[1];
        }
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn decode_f16_payload_avx2(payload: &[u8], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0;
        while i + 8 <= n {
            let h = _mm_loadu_si128(payload.as_ptr().add(2 * i).cast::<__m128i>());
            // f16 NaN (exp all ones, frac != 0): (h & 0x7FFF) > 0x7C00.
            // The software decoder preserves (and does not quiet) the
            // payload, so those lanes take the scalar path.
            let masked = _mm_and_si128(h, _mm_set1_epi16(0x7FFF));
            let nan = _mm_cmpgt_epi16(masked, _mm_set1_epi16(0x7C00));
            if _mm_movemask_epi8(nan) != 0 {
                fallback::decode_f16_payload(&payload[2 * i..2 * i + 16], &mut out[i..i + 8]);
            } else {
                _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_cvtph_ps(h));
            }
            i += 8;
        }
        fallback::decode_f16_payload(&payload[2 * i..], &mut out[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn max_abs_avx2(values: &[f32]) -> f32 {
        let n = values.len();
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_andnot_ps(sign, _mm256_loadu_ps(values.as_ptr().add(i)));
            // maxps(|x|, acc): a NaN first operand selects acc, matching
            // the scalar fold's f32::max NaN-ignoring semantics.
            acc = _mm256_max_ps(a, acc);
            i += 8;
        }
        let lanes = F32x8(acc).to_array();
        let mut m = 0.0f32;
        for &lane in &lanes {
            m = m.max(lane);
        }
        for v in &values[i..] {
            m = m.max(v.abs());
        }
        m
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn intq_quantize_codes_avx2(
        values: &[f32],
        inv: f32,
        levels: u32,
        draws: &[f32],
        codes: &mut [u16],
    ) {
        let n = values.len();
        let inv_v = _mm256_set1_ps(inv);
        let lv = levels as f32;
        let lv_v = _mm256_set1_ps(lv);
        let nlv_v = _mm256_set1_ps(-lv);
        let one = _mm256_set1_ps(1.0);
        let lev_i = _mm256_set1_epi32(levels as i32);
        let mut tmp = [0i32; 8];
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_mul_ps(_mm256_loadu_ps(values.as_ptr().add(i)), inv_v);
            let lo = _mm256_floor_ps(x);
            let frac = _mm256_sub_ps(x, lo);
            let up = _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_loadu_ps(draws.as_ptr().add(i)), frac);
            let q = _mm256_blendv_ps(lo, _mm256_add_ps(lo, one), up);
            let clamped = _mm256_max_ps(_mm256_min_ps(q, lv_v), nlv_v);
            let mut code = _mm256_add_epi32(_mm256_cvttps_epi32(clamped), lev_i);
            // NaN lanes: min/max destroyed the NaN, but the scalar path
            // yields `NaN as i64 == 0` → code `levels`. Patch to match.
            let nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(x, x));
            code = _mm256_blendv_epi8(code, lev_i, nan);
            _mm256_storeu_si256(tmp.as_mut_ptr().cast::<__m256i>(), code);
            for (l, &t) in tmp.iter().enumerate() {
                codes[i + l] = t as u16;
            }
            i += 8;
        }
        fallback::intq_quantize_codes(&values[i..], inv, levels, &draws[i..], &mut codes[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn intq_dequant_codes_avx2(
        codes: &[u16],
        levels: u32,
        scale: f32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let lev_i = _mm256_set1_epi32(levels as i32);
        let scale_v = _mm256_set1_ps(scale);
        let lv_v = _mm256_set1_ps(levels as f32);
        let mut i = 0;
        while i + 8 <= n {
            let c16 = _mm_loadu_si128(codes.as_ptr().add(i).cast::<__m128i>());
            let q = _mm256_cvtepi32_ps(_mm256_sub_epi32(_mm256_cvtepu16_epi32(c16), lev_i));
            let v = _mm256_div_ps(_mm256_mul_ps(q, scale_v), lv_v);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            i += 8;
        }
        fallback::intq_dequant_codes(&codes[i..], levels, scale, &mut out[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn intq_roundtrip_avx2(
        values: &mut [f32],
        inv: f32,
        levels: f32,
        scale: f32,
        draws: &[f32],
    ) {
        let n = values.len();
        let inv_v = _mm256_set1_ps(inv);
        let lv_v = _mm256_set1_ps(levels);
        let nlv_v = _mm256_set1_ps(-levels);
        let one = _mm256_set1_ps(1.0);
        let scale_v = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let p = values.as_mut_ptr().add(i);
            let x = _mm256_mul_ps(_mm256_loadu_ps(p), inv_v);
            let lo = _mm256_floor_ps(x);
            let frac = _mm256_sub_ps(x, lo);
            let up = _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_loadu_ps(draws.as_ptr().add(i)), frac);
            let q = _mm256_blendv_ps(lo, _mm256_add_ps(lo, one), up);
            let clamped = _mm256_max_ps(_mm256_min_ps(q, lv_v), nlv_v);
            let mut r = _mm256_div_ps(_mm256_mul_ps(clamped, scale_v), lv_v);
            // NaN stays NaN (min/max lost it; restore from x).
            let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
            r = _mm256_blendv_ps(r, x, nan);
            _mm256_storeu_ps(p, r);
            i += 8;
        }
        fallback::intq_roundtrip_block(&mut values[i..], inv, levels, scale, &draws[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn any_non_finite_avx2(values: &[f32]) -> bool {
        let n = values.len();
        let expmask = _mm256_set1_epi32(0x7F80_0000);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_castps_si256(_mm256_loadu_ps(values.as_ptr().add(i)));
            let e = _mm256_and_si256(v, expmask);
            if _mm256_movemask_epi8(_mm256_cmpeq_epi32(e, expmask)) != 0 {
                return true;
            }
            i += 8;
        }
        fallback::any_non_finite(&values[i..])
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn abs_into_avx2(src: &[f32], dst: &mut [f32]) {
        let n = src.len();
        let sign = _mm256_set1_ps(-0.0);
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_andnot_ps(sign, _mm256_loadu_ps(src.as_ptr().add(i)));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), a);
            i += 8;
        }
        fallback::abs_into(&src[i..], &mut dst[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn abs_or_inf_into_avx2(src: &[f32], dst: &mut [f32]) {
        let n = src.len();
        let sign = _mm256_set1_ps(-0.0);
        let expmask = _mm256_set1_epi32(0x7F80_0000);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let a = _mm256_andnot_ps(sign, v);
            let e = _mm256_and_si256(_mm256_castps_si256(v), expmask);
            let nonfin = _mm256_castsi256_ps(_mm256_cmpeq_epi32(e, expmask));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_blendv_ps(a, inf, nonfin));
            i += 8;
        }
        fallback::abs_or_inf_into(&src[i..], &mut dst[i..]);
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn count_gt_avx2(values: &[f32], t: f32) -> usize {
        let n = values.len();
        let t_v = _mm256_set1_ps(t);
        let mut count = 0usize;
        let mut i = 0;
        while i + 8 <= n {
            let m = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(values.as_ptr().add(i)), t_v);
            count += _mm256_movemask_ps(m).count_ones() as usize;
            i += 8;
        }
        count + fallback::count_gt(&values[i..], t)
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn reduce_max_avx2(xs: &[f32], init: f32) -> f32 {
        let n = xs.len();
        let mut acc = _mm256_set1_ps(init);
        let mut i = 0;
        while i + 8 <= n {
            // maxps(x, acc): NaN x selects acc — f32::max fold semantics.
            acc = _mm256_max_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), acc);
            i += 8;
        }
        let lanes = F32x8(acc).to_array();
        let mut m = init;
        for &lane in &lanes {
            m = m.max(lane);
        }
        for &v in &xs[i..] {
            m = m.max(v);
        }
        m
    }

    /// # Safety
    /// Requires avx2+fma+f16c.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn div_then_mul_avx2(xs: &mut [f32], div: f32, mul: f32) {
        let n = xs.len();
        let div_v = _mm256_set1_ps(div);
        let mul_v = _mm256_set1_ps(mul);
        let mut i = 0;
        while i + 8 <= n {
            let p = xs.as_mut_ptr().add(i);
            let v = _mm256_mul_ps(_mm256_div_ps(_mm256_loadu_ps(p), div_v), mul_v);
            _mm256_storeu_ps(p, v);
            i += 8;
        }
        for x in xs[i..].iter_mut() {
            *x = (*x / div) * mul;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_values_parse() {
        assert_eq!(parse_request("auto"), Some(Requested::Auto));
        assert_eq!(parse_request("AVX2"), Some(Requested::Avx2));
        assert_eq!(parse_request(" scalar "), Some(Requested::Scalar));
        assert_eq!(parse_request(""), Some(Requested::Auto));
        assert_eq!(parse_request("neon"), None);
    }

    #[test]
    fn forced_avx2_degrades_to_scalar_when_unsupported() {
        let (isa, warn) = resolve(Requested::Avx2);
        if Isa::Avx2.is_available() {
            assert_eq!(isa, Isa::Avx2);
            assert!(warn.is_none());
        } else {
            assert_eq!(isa, Isa::Scalar);
            assert!(warn.is_some());
        }
        assert_eq!(resolve(Requested::Scalar).0, Isa::Scalar);
    }

    #[test]
    fn active_isa_is_stable_and_available() {
        let isa = active_isa();
        assert_eq!(active_isa(), isa, "cached selection never changes");
        assert!(isa.is_available());
        assert!(isa.lanes() >= 1);
    }

    #[test]
    fn scalar_lane_vmax_has_maxps_semantics() {
        assert_eq!(2.0f32.vmax(1.0), 2.0);
        assert_eq!(1.0f32.vmax(2.0), 2.0);
        // NaN in either operand selects rhs.
        assert_eq!(f32::NAN.vmax(3.0), 3.0);
        assert!(3.0f32.vmax(f32::NAN).is_nan());
    }

    #[test]
    fn generic_gemm_single_lane_matches_naive() {
        let (m, k, n) = (5usize, 7usize, 9usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.31 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.17 - 1.5).collect();
        let mut out = vec![0.0f32; m * n];
        let consumed = gemm_main_v::<f32>(m, k, n, &a, &b, &mut out);
        assert_eq!(consumed, n, "single-lane main covers every column");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                assert_eq!(out[i * n + j], acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn avx2_gemm_main_is_bit_identical_to_scalar_panels() {
        if !Isa::Avx2.is_available() {
            return;
        }
        for &(m, k, n) in &[
            (1usize, 3usize, 8usize),
            (4, 16, 16),
            (5, 7, 24),
            (9, 11, 40),
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.13)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 53 % 19) as f32 - 9.0) * 0.07)
                .collect();
            let mut fast = vec![0.0f32; m * n];
            let consumed = gemm_main(Isa::Avx2, m, k, n, &a, &b, &mut fast);
            assert_eq!(consumed, n - n % 8);
            let mut slow = vec![0.0f32; m * n];
            gemm_main_v::<f32>(m, k, n, &a, &b, &mut slow);
            for j in 0..consumed {
                for i in 0..m {
                    assert_eq!(
                        fast[i * n + j],
                        slow[i * n + j],
                        "m={m} k={k} n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fp16_block_matches_software_on_edge_values() {
        let edge = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            65504.0,
            1e6,
            -1e6,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            6.0e-8,
            2.0f32.powi(-24),
            2.0f32.powi(-25),
            1023.0 * 2.0f32.powi(-24),
            f32::MIN_POSITIVE / 2.0, // f32 subnormal
        ];
        let mut via_block: Vec<f32> = edge.to_vec();
        fp16_roundtrip_block(&mut via_block);
        for (i, &x) in edge.iter().enumerate() {
            let want = crate::quant::f16_bits_to_f32(crate::quant::f32_to_f16_bits(x));
            assert_eq!(
                via_block[i].to_bits(),
                want.to_bits(),
                "lane {i}: {x} → {} want {}",
                via_block[i],
                want
            );
        }
    }

    #[test]
    fn max_abs_matches_scalar_fold_with_nan_and_inf() {
        let xs = [1.0f32, -7.5, f32::NAN, 3.0, -2.0, 6.25, 0.5, -0.25, 4.0];
        assert_eq!(max_abs(&xs), 7.5, "NaN ignored like the scalar fold");
        let ys = [1.0f32, f32::NEG_INFINITY, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(max_abs(&ys), f32::INFINITY);
    }

    #[test]
    fn count_and_abs_helpers_match_scalar() {
        let xs: Vec<f32> = (0..37)
            .map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.7)
            .collect();
        let mut a = vec![0.0f32; 37];
        abs_into(&xs, &mut a);
        for (av, xv) in a.iter().zip(&xs) {
            assert_eq!(*av, xv.abs());
        }
        assert_eq!(count_gt(&a, 1.4), a.iter().filter(|&&m| m > 1.4).count());
        assert!(!any_non_finite(&xs));
        let mut ys = xs.clone();
        ys[20] = f32::NAN;
        assert!(any_non_finite(&ys));
        let mut b = vec![0.0f32; 37];
        abs_or_inf_into(&ys, &mut b);
        assert_eq!(b[20], f32::INFINITY);
        assert_eq!(b[3], ys[3].abs());
    }

    #[test]
    fn reduce_max_and_div_then_mul_match_scalar_bitwise() {
        let xs: Vec<f32> = (0..21)
            .map(|i| ((i * 29 % 17) as f32 - 8.0) * 0.33)
            .collect();
        for isa in [Isa::Scalar, Isa::Avx2] {
            let m = reduce_max(isa, &xs, f32::NEG_INFINITY);
            assert_eq!(m, xs.iter().copied().fold(f32::NEG_INFINITY, f32::max));
            let mut v = xs.clone();
            div_then_mul(isa, &mut v, 3.7, 0.25);
            for (got, x) in v.iter().zip(&xs) {
                assert_eq!(got.to_bits(), ((x / 3.7) * 0.25).to_bits());
            }
        }
    }

    #[test]
    fn intq_code_helpers_round_trip() {
        let levels = 127u32;
        let values: Vec<f32> = (0..29).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.4).collect();
        let scale = max_abs(&values);
        let inv = levels as f32 / scale;
        let draws = vec![0.5f32; 29];
        let mut codes = vec![0u16; 29];
        intq_quantize_codes(&values, inv, levels, &draws, &mut codes);
        let mut fast = vec![0.0f32; 29];
        intq_dequant_codes(&codes, levels, scale, &mut fast);
        let mut inplace = values.clone();
        intq_roundtrip_block(&mut inplace, inv, levels as f32, scale, &draws);
        for (a, b) in fast.iter().zip(&inplace) {
            assert_eq!(a.to_bits(), b.to_bits(), "codes path ≡ in-place path");
        }
    }
}
