//! The pre-optimization kernels, preserved verbatim.
//!
//! These are the original naive implementations the fast paths in
//! [`crate::matmul`] and [`crate::conv`] replaced: the `i-k-j` GEMM with
//! its zero-skip branch, the dot-product transposed variants, and the
//! per-sample im2col convolution. They serve two purposes:
//!
//! * **oracle** — equivalence property tests assert the fast kernels
//!   reproduce these (bit-exactly where the reduction order is
//!   preserved);
//! * **baseline** — the `perf_suite` benchmark harness times them against
//!   the fast kernels so the speedup stays measured, and
//!   [`crate::kernel::KernelMode::Reference`] routes the public entry
//!   points here to reconstruct pre-optimization end-to-end timings.

use crate::conv::ConvGeom;
use crate::{Result, Tensor, TensorError};

/// Naive `C = A · B` (`i-k-j` loop order with the historical zero-skip).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on malformed inputs.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `C = Aᵀ · B` without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on malformed inputs.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `C = A · Bᵀ` (row-by-row dot products).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on malformed inputs.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Lowers one `[c, in_h, in_w]` sample (given as a flat slice) to a
/// `[c*k_h*k_w, out_h*out_w]` column matrix — the per-sample lowering the
/// batched fast path replaced.
pub fn im2col(sample: &[f32], c: usize, g: &ConvGeom) -> Tensor {
    let rows = c * g.k_h * g.k_w;
    let cols = g.out_h * g.out_w;
    let mut out = vec![0.0f32; rows * cols];
    for ch in 0..c {
        let plane = &sample[ch * g.in_h * g.in_w..(ch + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        out_row[oy * g.out_w + ox] = plane[iy as usize * g.in_w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("im2col buffer sized by construction")
}

/// Scatters a `[c*k_h*k_w, out_h*out_w]` column-gradient matrix back into a
/// flat `[c, in_h, in_w]` input-gradient slice (accumulating overlaps).
fn col2im(cols_t: &Tensor, c: usize, g: &ConvGeom, out: &mut [f32]) {
    let cols = g.out_h * g.out_w;
    let data = cols_t.data();
    for ch in 0..c {
        let plane = &mut out[ch * g.in_h * g.in_w..(ch + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let col_row = &data[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        plane[iy as usize * g.in_w + ix as usize] += col_row[oy * g.out_w + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution, one im2col + GEMM per sample.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, wc_in, k_h, k_w) = weight.shape().as_nchw()?;
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
            op: "conv2d_forward",
        });
    }
    if bias.numel() != c_out {
        return Err(TensorError::ShapeMismatch {
            left: vec![c_out],
            right: bias.dims().to_vec(),
            op: "conv2d_forward(bias)",
        });
    }
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    let w_mat = weight.reshape(&[c_out, c_in * k_h * k_w])?;
    let sample_len = c_in * h * w;
    let out_plane = g.out_h * g.out_w;
    let mut out = vec![0.0f32; n * c_out * out_plane];
    for s in 0..n {
        let cols = im2col(
            &input.data()[s * sample_len..(s + 1) * sample_len],
            c_in,
            &g,
        );
        let y = matmul(&w_mat, &cols)?; // [c_out, out_plane]
        let dst = &mut out[s * c_out * out_plane..(s + 1) * c_out * out_plane];
        for co in 0..c_out {
            let b = bias.data()[co];
            let src = &y.data()[co * out_plane..(co + 1) * out_plane];
            let d = &mut dst[co * out_plane..(co + 1) * out_plane];
            for (o, &v) in d.iter_mut().zip(src) {
                *o = v + b;
            }
        }
    }
    Tensor::from_vec(out, &[n, c_out, g.out_h, g.out_w])
}

/// Gradients of a 2-D convolution, re-lowering and multiplying per sample.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent with the forward pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, k_h, k_w) = weight.shape().as_nchw()?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    if gn != n || gc != c_out || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c_out, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "conv2d_backward",
        });
    }
    let w_mat = weight.reshape(&[c_out, c_in * k_h * k_w])?;
    let sample_len = c_in * h * w;
    let out_plane = g.out_h * g.out_w;

    let mut grad_in = vec![0.0f32; input.numel()];
    let mut grad_w = Tensor::zeros(&[c_out, c_in * k_h * k_w]);
    let mut grad_b = vec![0.0f32; c_out];

    for s in 0..n {
        let cols = im2col(
            &input.data()[s * sample_len..(s + 1) * sample_len],
            c_in,
            &g,
        );
        let dy = Tensor::from_vec(
            grad_out.data()[s * c_out * out_plane..(s + 1) * c_out * out_plane].to_vec(),
            &[c_out, out_plane],
        )?;
        // dW += dY · colsᵀ
        grad_w.add_assign_t(&matmul_a_bt(&dy, &cols)?)?;
        // dB += Σ_spatial dY
        for (co, gb) in grad_b.iter_mut().enumerate() {
            *gb += dy.data()[co * out_plane..(co + 1) * out_plane]
                .iter()
                .sum::<f32>();
        }
        // dX_cols = Wᵀ · dY, scattered back with col2im.
        let dcols = matmul_at_b(&w_mat, &dy)?;
        col2im(
            &dcols,
            c_in,
            &g,
            &mut grad_in[s * sample_len..(s + 1) * sample_len],
        );
    }
    Ok((
        Tensor::from_vec(grad_in, input.dims())?,
        grad_w.reshape(&[c_out, c_in, k_h, k_w])?,
        Tensor::from_vec(grad_b, &[c_out])?,
    ))
}
