//! Process-wide kernel selection: fast (default) vs reference.
//!
//! The `perf_suite` benchmark harness flips this to [`KernelMode::Reference`]
//! to reconstruct the pre-optimization engine end to end and measure the
//! speedup against it on the same machine. Both modes compute the same
//! values (the fast kernels preserve each output element's reduction
//! order wherever the layer stack depends on bit-exactness), so flipping
//! the mode mid-run is safe — it only changes speed.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementations the public tensor entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Blocked/batched/threaded kernels (default).
    #[default]
    Fast,
    /// The preserved pre-optimization kernels in [`crate::reference`].
    Reference,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel implementation for the whole process.
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Fast => 0,
            KernelMode::Reference => 1,
        },
        Ordering::SeqCst,
    );
}

/// The currently selected kernel implementation.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Fast,
        _ => KernelMode::Reference,
    }
}

/// The fully resolved kernel tier a public op entry runs under:
/// mode *and* instruction set, resolved **once** per entry (one relaxed
/// atomic load plus the cached ISA lookup) and passed down as a plain
/// enum so inner loops and helpers never re-consult global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// The preserved pre-optimization kernels in [`crate::reference`].
    Reference,
    /// Fast kernels on portable scalar lanes — bit-identical to every
    /// prior release's fast path.
    FastScalar,
    /// Fast kernels on runtime-detected AVX2/FMA/F16C lanes.
    FastAvx2,
}

impl Dispatch {
    /// The SIMD tier this dispatch runs its fast kernels on.
    /// [`Dispatch::Reference`] reports [`Isa::Scalar`](crate::simd::Isa):
    /// reference kernels never vectorize.
    pub fn isa(self) -> crate::simd::Isa {
        match self {
            Dispatch::FastAvx2 => crate::simd::Isa::Avx2,
            Dispatch::Reference | Dispatch::FastScalar => crate::simd::Isa::Scalar,
        }
    }
}

/// Resolves the current kernel mode and active ISA into a [`Dispatch`].
/// Call once at each public op entry, then thread the result down.
pub fn dispatch() -> Dispatch {
    match kernel_mode() {
        KernelMode::Reference => Dispatch::Reference,
        KernelMode::Fast => match crate::simd::active_isa() {
            crate::simd::Isa::Avx2 => Dispatch::FastAvx2,
            crate::simd::Isa::Scalar => Dispatch::FastScalar,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast() {
        assert_eq!(KernelMode::default(), KernelMode::Fast);
    }

    #[test]
    fn dispatch_tracks_mode_and_isa() {
        // Default mode is Fast, so dispatch reflects the active ISA.
        let d = dispatch();
        match crate::simd::active_isa() {
            crate::simd::Isa::Avx2 => assert_eq!(d, Dispatch::FastAvx2),
            crate::simd::Isa::Scalar => assert_eq!(d, Dispatch::FastScalar),
        }
        assert_eq!(d.isa(), crate::simd::active_isa());
        assert_eq!(Dispatch::Reference.isa(), crate::simd::Isa::Scalar);
        assert_eq!(Dispatch::FastScalar.isa(), crate::simd::Isa::Scalar);
    }
}
