//! Process-wide kernel selection: fast (default) vs reference.
//!
//! The `perf_suite` benchmark harness flips this to [`KernelMode::Reference`]
//! to reconstruct the pre-optimization engine end to end and measure the
//! speedup against it on the same machine. Both modes compute the same
//! values (the fast kernels preserve each output element's reduction
//! order wherever the layer stack depends on bit-exactness), so flipping
//! the mode mid-run is safe — it only changes speed.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementations the public tensor entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Blocked/batched/threaded kernels (default).
    #[default]
    Fast,
    /// The preserved pre-optimization kernels in [`crate::reference`].
    Reference,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel implementation for the whole process.
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Fast => 0,
            KernelMode::Reference => 1,
        },
        Ordering::SeqCst,
    );
}

/// The currently selected kernel implementation.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Fast,
        _ => KernelMode::Reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast() {
        assert_eq!(KernelMode::default(), KernelMode::Fast);
    }
}
