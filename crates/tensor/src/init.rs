//! Weight initializers.
//!
//! The initializers draw from a caller-supplied RNG so the whole experiment
//! stays deterministic under [`crate::rng::SeedDerive`].

use crate::Tensor;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Initialization schemes for layer parameters.
///
/// # Example
///
/// ```
/// use gsfl_tensor::{init::Init, rng::seeded_rng};
///
/// let mut rng = seeded_rng(0);
/// let w = Init::HeNormal { fan_in: 64 }.tensor(&[64, 32], &mut rng);
/// assert_eq!(w.dims(), &[64, 32]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Constant value.
    Constant(f32),
    /// Uniform on `[-bound, bound]`.
    Uniform {
        /// Half-width of the support.
        bound: f32,
    },
    /// He (Kaiming) normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU nets.
    HeNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Xavier (Glorot) uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    XavierUniform {
        /// Number of input connections.
        fan_in: usize,
        /// Number of output connections.
        fan_out: usize,
    },
}

impl Init {
    /// Samples a tensor of the given dims under this scheme.
    pub fn tensor(&self, dims: &[usize], rng: &mut ChaCha8Rng) -> Tensor {
        match *self {
            Init::Zeros => Tensor::zeros(dims),
            Init::Constant(c) => Tensor::full(dims, c),
            Init::Uniform { bound } => Tensor::from_fn(dims, |_| rng.gen_range(-bound..=bound)),
            Init::HeNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Tensor::from_fn(dims, |_| std * standard_normal(rng))
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::from_fn(dims, |_| rng.gen_range(-bound..=bound))
            }
        }
    }
}

/// A standard-normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`).
pub fn standard_normal(rng: &mut ChaCha8Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn zeros_and_constant() {
        let mut rng = seeded_rng(0);
        assert!(Init::Zeros
            .tensor(&[4], &mut rng)
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Init::Constant(3.5)
            .tensor(&[4], &mut rng)
            .data()
            .iter()
            .all(|&x| x == 3.5));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = seeded_rng(1);
        let t = Init::Uniform { bound: 0.25 }.tensor(&[1000], &mut rng);
        assert!(t.data().iter().all(|&x| (-0.25..=0.25).contains(&x)));
        // Not degenerate.
        assert!(t.max() > 0.1 && t.min() < -0.1);
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = seeded_rng(2);
        let fan_in = 128;
        let t = Init::HeNormal { fan_in }.tensor(&[20_000], &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        let want = 2.0 / fan_in as f32;
        assert!((var - want).abs() < want * 0.15, "var {var} vs want {want}");
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded_rng(3);
        let t = Init::XavierUniform {
            fan_in: 10,
            fan_out: 20,
        }
        .tensor(&[1000], &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let mut a = seeded_rng(9);
        let mut b = seeded_rng(9);
        let ta = Init::HeNormal { fan_in: 8 }.tensor(&[32], &mut a);
        let tb = Init::HeNormal { fan_in: 8 }.tensor(&[32], &mut b);
        assert_eq!(ta, tb);
    }
}
