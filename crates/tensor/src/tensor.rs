use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor.
///
/// [`Tensor`] is the single data-carrying type of the GSFL stack: images,
/// activations, smashed data, gradients and parameters are all tensors.
/// The layout is always contiguous row-major, so kernels can operate on
/// plain slices.
///
/// # Example
///
/// ```
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// let doubled = t.scale(2.0);
/// assert_eq!(doubled.get(&[0, 1])?, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::new(&[n]),
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// Builds a tensor by evaluating `f` at every flat offset.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the flat data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Makes `self` a copy of `src`, reusing the existing backing buffer's
    /// capacity instead of allocating (the layer activation caches use
    /// this so a steady-state training step stays allocation-free).
    pub fn assign(&mut self, src: &Tensor) {
        self.shape = src.shape.clone();
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the index is out of
    /// bounds or has the wrong rank.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        self.shape
            .offset(index)
            .map(|o| self.data[o])
            .ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "index {index:?} out of bounds for shape {}",
                    self.shape
                ))
            })
    }

    /// Writes `value` at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the index is out of
    /// bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::InvalidArgument(format!(
                "index {index:?} out of bounds for shape {}",
                self.shape
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise operations (allocate a new tensor)
    // ------------------------------------------------------------------

    fn zip_check(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if !self.shape.same_dims(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_check(other, "add")?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_check(other, "sub")?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_check(other, "mul")?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise (shapes already checked
    /// by the caller or guaranteed by construction).
    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Adds `k` to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|x| x + k)
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // In-place operations
    // ------------------------------------------------------------------

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign_t(&mut self, other: &Tensor) -> Result<()> {
        self.zip_check(other, "add_assign")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += k * other` (axpy), the workhorse of SGD updates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) -> Result<()> {
        self.zip_check(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
        Ok(())
    }

    /// In-place multiplication of every element by `k`.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        for a in &mut self.data {
            *a = value;
        }
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        self.fill(0.0);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Per-row argmax of a 2-D tensor, e.g. predicted class of logit rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is 2-D with at
    /// least one column.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (rows, cols) = self.shape.as_matrix()?;
        if cols == 0 {
            return Err(TensorError::InvalidArgument(
                "argmax_rows requires at least one column".into(),
            ));
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sums a 2-D tensor along axis 0, producing a `[cols]` tensor
    /// (the bias-gradient reduction).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is 2-D.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is 2-D.
    pub fn transpose2d(&self) -> Result<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }

    /// Copies rows `range` of the leading axis into a new tensor.
    ///
    /// Works for any rank ≥ 1; for an NCHW batch this slices complete
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the range exceeds the
    /// leading dimension or the tensor is rank 0.
    pub fn slice_axis0(&self, range: std::ops::Range<usize>) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::InvalidArgument("cannot slice a scalar".into()));
        }
        let lead = self.shape.dims()[0];
        if range.end > lead || range.start > range.end {
            return Err(TensorError::InvalidArgument(format!(
                "slice {range:?} out of bounds for leading dim {lead}"
            )));
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let data = self.data[range.start * inner..range.end * inner].to_vec();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = range.end - range.start;
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates tensors along axis 0. All trailing dims must agree.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] when trailing dimensions disagree.
    pub fn concat_axis0(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| {
            TensorError::InvalidArgument("concat_axis0 needs at least one tensor".into())
        })?;
        let tail = &first.dims()[1..];
        let mut lead = 0usize;
        for p in parts {
            if p.shape.rank() == 0 || &p.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                    op: "concat_axis0",
                });
            }
            lead += p.dims()[0];
        }
        let mut data = Vec::with_capacity(lead * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![lead];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, &dims)
    }

    /// Gathers the rows of a 2-D tensor (or samples of an NCHW batch) given
    /// by `indices` into a new tensor, in order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when an index is out of
    /// bounds or the tensor is rank 0.
    pub fn gather_axis0(&self, indices: &[usize]) -> Result<Tensor> {
        self.gather_axis0_with(indices, Vec::new())
    }

    /// [`Tensor::gather_axis0`] into a caller-provided buffer, so hot
    /// paths (the per-step mini-batch gather) can recycle one arena
    /// buffer instead of allocating per call. `buf` is cleared and
    /// refilled; when its capacity already covers the gather, no heap
    /// allocation happens. The gathered data is byte-identical to
    /// [`Tensor::gather_axis0`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::gather_axis0`].
    pub fn gather_axis0_with(&self, indices: &[usize], mut buf: Vec<f32>) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::InvalidArgument(
                "cannot gather from a scalar".into(),
            ));
        }
        let lead = self.shape.dims()[0];
        let inner: usize = self.shape.dims()[1..].iter().product();
        buf.clear();
        buf.reserve(indices.len() * inner);
        for &i in indices {
            if i >= lead {
                return Err(TensorError::InvalidArgument(format!(
                    "gather index {i} out of bounds for leading dim {lead}"
                )));
            }
            buf.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(buf, &dims)
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// Whether every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape.same_dims(&other.shape)
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "[{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_count() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert_eq!(t.get(&[i, j]).unwrap(), want);
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.l2_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 5.0, 2.0, 2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn sum_axis0_reduces_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(tt.transpose2d().unwrap(), t);
    }

    #[test]
    fn slice_and_concat_axis0_round_trip() {
        let t = Tensor::from_fn(&[4, 3], |i| i as f32);
        let a = t.slice_axis0(0..2).unwrap();
        let b = t.slice_axis0(2..4).unwrap();
        let joined = Tensor::concat_axis0(&[&a, &b]).unwrap();
        assert_eq!(joined, t);
    }

    #[test]
    fn slice_axis0_bounds_checked() {
        let t = Tensor::zeros(&[3, 2]);
        assert!(t.slice_axis0(2..5).is_err());
    }

    #[test]
    fn gather_axis0_reorders_rows() {
        let t = Tensor::from_fn(&[3, 2], |i| i as f32);
        let g = t.gather_axis0(&[2, 0]).unwrap();
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(t.gather_axis0(&[3]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }
}
