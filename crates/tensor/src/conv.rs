//! 2-D convolution via im2col/col2im.
//!
//! The forward pass lowers each input sample to a column matrix
//! (`im2col`) and reduces convolution to one GEMM per sample; the backward
//! pass reuses the same lowering, which keeps the code small and easy to
//! verify against a direct (naive) reference implementation in the tests.

use crate::matmul::{matmul, matmul_a_bt, matmul_at_b};
use crate::{Result, Tensor, TensorError};

/// Validated convolution geometry.
///
/// # Example
///
/// ```
/// use gsfl_tensor::conv::ConvGeom;
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let g = ConvGeom::new(32, 32, 3, 3, 1, 1)?;
/// assert_eq!((g.out_h, g.out_w), (32, 32)); // "same" padding
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvGeom {
    /// Computes and validates output geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the kernel (with
    /// padding) does not fit in the input or stride is zero.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidGeometry("stride must be ≥ 1".into()));
        }
        if k_h == 0 || k_w == 0 {
            return Err(TensorError::InvalidGeometry("kernel must be ≥ 1×1".into()));
        }
        let padded_h = in_h + 2 * pad;
        let padded_w = in_w + 2 * pad;
        if k_h > padded_h || k_w > padded_w {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {k_h}×{k_w} larger than padded input {padded_h}×{padded_w}"
            )));
        }
        Ok(ConvGeom {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            pad,
            out_h: (padded_h - k_h) / stride + 1,
            out_w: (padded_w - k_w) / stride + 1,
        })
    }
}

/// Lowers one `[c, in_h, in_w]` sample (given as a flat slice) to a
/// `[c*k_h*k_w, out_h*out_w]` column matrix.
fn im2col(sample: &[f32], c: usize, g: &ConvGeom) -> Tensor {
    let rows = c * g.k_h * g.k_w;
    let cols = g.out_h * g.out_w;
    let mut out = vec![0.0f32; rows * cols];
    for ch in 0..c {
        let plane = &sample[ch * g.in_h * g.in_w..(ch + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        out_row[oy * g.out_w + ox] = plane[iy as usize * g.in_w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("im2col buffer sized by construction")
}

/// Scatters a `[c*k_h*k_w, out_h*out_w]` column-gradient matrix back into a
/// flat `[c, in_h, in_w]` input-gradient slice (accumulating overlaps).
fn col2im(cols_t: &Tensor, c: usize, g: &ConvGeom, out: &mut [f32]) {
    let cols = g.out_h * g.out_w;
    let data = cols_t.data();
    for ch in 0..c {
        let plane = &mut out[ch * g.in_h * g.in_w..(ch + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let col_row = &data[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        plane[iy as usize * g.in_w + ix as usize] += col_row[oy * g.out_w + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// * `input`  — `[n, c_in, h, w]`
/// * `weight` — `[c_out, c_in, k_h, k_w]`
/// * `bias`   — `[c_out]`
///
/// Returns `[n, c_out, out_h, out_w]`.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, wc_in, k_h, k_w) = weight.shape().as_nchw()?;
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
            op: "conv2d_forward",
        });
    }
    if bias.numel() != c_out {
        return Err(TensorError::ShapeMismatch {
            left: vec![c_out],
            right: bias.dims().to_vec(),
            op: "conv2d_forward(bias)",
        });
    }
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    let w_mat = weight.reshape(&[c_out, c_in * k_h * k_w])?;
    let sample_len = c_in * h * w;
    let out_plane = g.out_h * g.out_w;
    let mut out = vec![0.0f32; n * c_out * out_plane];
    for s in 0..n {
        let cols = im2col(
            &input.data()[s * sample_len..(s + 1) * sample_len],
            c_in,
            &g,
        );
        let y = matmul(&w_mat, &cols)?; // [c_out, out_plane]
        let dst = &mut out[s * c_out * out_plane..(s + 1) * c_out * out_plane];
        for co in 0..c_out {
            let b = bias.data()[co];
            let src = &y.data()[co * out_plane..(co + 1) * out_plane];
            let d = &mut dst[co * out_plane..(co + 1) * out_plane];
            for (o, &v) in d.iter_mut().zip(src) {
                *o = v + b;
            }
        }
    }
    Tensor::from_vec(out, &[n, c_out, g.out_h, g.out_w])
}

/// Gradients of a 2-D convolution.
///
/// Given the forward operands and the output gradient
/// `grad_out: [n, c_out, out_h, out_w]`, returns
/// `(grad_input, grad_weight, grad_bias)` with the operand shapes.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent with the forward pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, k_h, k_w) = weight.shape().as_nchw()?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    if gn != n || gc != c_out || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c_out, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "conv2d_backward",
        });
    }
    let w_mat = weight.reshape(&[c_out, c_in * k_h * k_w])?;
    let sample_len = c_in * h * w;
    let out_plane = g.out_h * g.out_w;

    let mut grad_in = vec![0.0f32; input.numel()];
    let mut grad_w = Tensor::zeros(&[c_out, c_in * k_h * k_w]);
    let mut grad_b = vec![0.0f32; c_out];

    for s in 0..n {
        let cols = im2col(
            &input.data()[s * sample_len..(s + 1) * sample_len],
            c_in,
            &g,
        );
        let dy = Tensor::from_vec(
            grad_out.data()[s * c_out * out_plane..(s + 1) * c_out * out_plane].to_vec(),
            &[c_out, out_plane],
        )?;
        // dW += dY · colsᵀ
        grad_w.add_assign_t(&matmul_a_bt(&dy, &cols)?)?;
        // dB += Σ_spatial dY
        for (co, gb) in grad_b.iter_mut().enumerate() {
            *gb += dy.data()[co * out_plane..(co + 1) * out_plane]
                .iter()
                .sum::<f32>();
        }
        // dX_cols = Wᵀ · dY, scattered back with col2im.
        let dcols = matmul_at_b(&w_mat, &dy)?;
        col2im(
            &dcols,
            c_in,
            &g,
            &mut grad_in[s * sample_len..(s + 1) * sample_len],
        );
    }
    Ok((
        Tensor::from_vec(grad_in, input.dims())?,
        grad_w.reshape(&[c_out, c_in, k_h, k_w])?,
        Tensor::from_vec(grad_b, &[c_out])?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct convolution, the slow-but-obviously-correct reference.
    fn conv_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c_in, h, w) = input.shape().as_nchw().unwrap();
        let (c_out, _, k_h, k_w) = weight.shape().as_nchw().unwrap();
        let g = ConvGeom::new(h, w, k_h, k_w, stride, pad).unwrap();
        let mut out = Tensor::zeros(&[n, c_out, g.out_h, g.out_w]);
        for s in 0..n {
            for co in 0..c_out {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        let mut acc = bias.data()[co];
                        for ci in 0..c_in {
                            for kh in 0..k_h {
                                for kw in 0..k_w {
                                    let iy = (oy * stride + kh) as isize - pad as isize;
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[s, ci, iy as usize, ix as usize]).unwrap()
                                        * weight.get(&[co, ci, kh, kw]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn sample_tensors(
        n: usize,
        c_in: usize,
        h: usize,
        w: usize,
        c_out: usize,
        k: usize,
    ) -> (Tensor, Tensor, Tensor) {
        let input = Tensor::from_fn(&[n, c_in, h, w], |i| ((i * 37 % 17) as f32 - 8.0) * 0.1);
        let weight = Tensor::from_fn(&[c_out, c_in, k, k], |i| {
            ((i * 53 % 13) as f32 - 6.0) * 0.05
        });
        let bias = Tensor::from_fn(&[c_out], |i| i as f32 * 0.01);
        (input, weight, bias)
    }

    #[test]
    fn forward_matches_naive_same_padding() {
        let (input, weight, bias) = sample_tensors(2, 3, 6, 6, 4, 3);
        let fast = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let slow = conv_naive(&input, &weight, &bias, 1, 1);
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn forward_matches_naive_stride2_nopad() {
        let (input, weight, bias) = sample_tensors(1, 2, 7, 5, 3, 3);
        let fast = conv2d_forward(&input, &weight, &bias, 2, 0).unwrap();
        let slow = conv_naive(&input, &weight, &bias, 2, 0);
        assert_eq!(fast.dims(), slow.dims());
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn geometry_validation() {
        assert!(ConvGeom::new(4, 4, 5, 5, 1, 0).is_err());
        assert!(ConvGeom::new(4, 4, 5, 5, 1, 1).is_ok());
        assert!(ConvGeom::new(4, 4, 3, 3, 0, 0).is_err());
        assert!(ConvGeom::new(4, 4, 0, 1, 1, 0).is_err());
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let (input, weight, bias) = sample_tensors(1, 2, 5, 5, 2, 3);
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        // Loss = sum of outputs ⇒ grad_out = ones.
        let grad_out = Tensor::ones(out.dims());
        let (_, gw, gb) = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let eps = 1e-2f32;
        // Check a scattering of weight coordinates.
        for &flat in &[0usize, 5, 11, 17, 23, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[flat] += eps;
            let fp = conv2d_forward(&input, &wp, &bias, 1, 1).unwrap().sum();
            let mut wm = weight.clone();
            wm.data_mut()[flat] -= eps;
            let fm = conv2d_forward(&input, &wm, &bias, 1, 1).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[flat]).abs() < 2e-2,
                "weight grad mismatch at {flat}: fd={fd}, analytic={}",
                gw.data()[flat]
            );
        }
        // Bias gradient under sum-loss is just the number of output pixels.
        let plane =
            (out.numel() / out.dims()[1]) as f32 / out.dims()[0] as f32 * out.dims()[0] as f32;
        for &g in gb.data() {
            assert!((g - plane).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let (input, weight, bias) = sample_tensors(1, 2, 4, 4, 2, 3);
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let (gx, _, _) = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 7, 15, 21, 31] {
            let mut ip = input.clone();
            ip.data_mut()[flat] += eps;
            let fp = conv2d_forward(&ip, &weight, &bias, 1, 1).unwrap().sum();
            let mut im = input.clone();
            im.data_mut()[flat] -= eps;
            let fm = conv2d_forward(&im, &weight, &bias, 1, 1).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 2e-2,
                "input grad mismatch at {flat}: fd={fd}, analytic={}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn backward_rejects_mismatched_grad() {
        let (input, weight, _) = sample_tensors(1, 2, 5, 5, 2, 3);
        let bad = Tensor::zeros(&[1, 2, 9, 9]);
        assert!(conv2d_backward(&input, &weight, &bad, 1, 1).is_err());
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // With a 1×1 kernel, im2col is the identity reshape.
        let g = ConvGeom::new(3, 3, 1, 1, 1, 0).unwrap();
        let sample: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let cols = im2col(&sample, 1, &g);
        assert_eq!(cols.dims(), &[1, 9]);
        assert_eq!(cols.data(), &sample[..]);
    }
}
