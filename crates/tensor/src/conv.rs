//! 2-D convolution via whole-batch im2col/col2im.
//!
//! The forward pass lowers the **entire batch** to one
//! `[c·k_h·k_w, n·out_h·out_w]` column matrix and reduces convolution to a
//! single GEMM (the historical per-sample lowering survives as
//! [`crate::reference::conv2d_forward`] for the equivalence tests and the
//! benchmark baseline). The backward pass reuses the same lowering: one
//! GEMM for the weight gradient, one for the column gradient, then a
//! batched col2im scatter. All scratch comes from a [`Workspace`], so the
//! steady-state hot path performs no heap allocation.
//!
//! Reduction-order note: forward outputs, input gradients and bias
//! gradients accumulate in exactly the per-sample order of the reference
//! implementation (bit-identical results); the batched weight-gradient
//! GEMM sums over the whole batch in one stream rather than
//! per-sample-then-add, which regroups the f32 additions (equal within
//! epsilon, not within bits — asserted by the property tests).

use crate::kernel::{dispatch, Dispatch};
use crate::matmul::{gemm_a_bt_into, gemm_into, transpose_into};
use crate::simd::Isa;
use crate::workspace::Workspace;
use crate::{Result, Tensor, TensorError};

/// Validated convolution geometry.
///
/// # Example
///
/// ```
/// use gsfl_tensor::conv::ConvGeom;
///
/// # fn main() -> Result<(), gsfl_tensor::TensorError> {
/// let g = ConvGeom::new(32, 32, 3, 3, 1, 1)?;
/// assert_eq!((g.out_h, g.out_w), (32, 32)); // "same" padding
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvGeom {
    /// Computes and validates output geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the kernel (with
    /// padding) does not fit in the input or stride is zero.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidGeometry("stride must be ≥ 1".into()));
        }
        if k_h == 0 || k_w == 0 {
            return Err(TensorError::InvalidGeometry("kernel must be ≥ 1×1".into()));
        }
        let padded_h = in_h + 2 * pad;
        let padded_w = in_w + 2 * pad;
        if k_h > padded_h || k_w > padded_w {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {k_h}×{k_w} larger than padded input {padded_h}×{padded_w}"
            )));
        }
        Ok(ConvGeom {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            pad,
            out_h: (padded_h - k_h) / stride + 1,
            out_w: (padded_w - k_w) / stride + 1,
        })
    }
}

/// The range of output columns `ox` for which the tap column
/// `ox·stride + kw - pad` lands inside `[0, in_w)`, or `None` when no
/// output position is valid for this tap (a kernel column that only
/// ever sees padding — possible when the kernel is wider than
/// `in_w + pad`). A returned `(lo, hi)` satisfies `lo < hi ≤ out_w` and
/// `lo·stride + kw ≥ pad`, so `ix0 = lo·stride + kw - pad` cannot
/// underflow.
#[inline]
fn valid_ox_range(g: &ConvGeom, kw: usize) -> Option<(usize, usize)> {
    // ox·stride + kw - pad ≥ 0  ⇔  ox ≥ ceil((pad - kw) / stride)
    let lo = g.pad.saturating_sub(kw).div_ceil(g.stride);
    // ox·stride + kw - pad ≤ in_w - 1  ⇔  ox ≤ (in_w - 1 + pad - kw) / stride
    let hi = ((g.in_w + g.pad).checked_sub(kw + 1)? / g.stride + 1).min(g.out_w);
    if lo < hi {
        Some((lo, hi))
    } else {
        None
    }
}

/// Fills one lowered row segment: the `out_h·out_w` patch values of
/// kernel tap `(kh, kw)` over one input plane. Every element of `seg`
/// is written (padding positions get an explicit zero), and the valid
/// span is a branch-free copy — contiguous for stride 1.
#[inline]
fn fill_patch_row(plane: &[f32], g: &ConvGeom, kh: usize, kw: usize, seg: &mut [f32]) {
    let Some((ox_lo, ox_hi)) = valid_ox_range(g, kw) else {
        seg.fill(0.0);
        return;
    };
    for oy in 0..g.out_h {
        let dst_row = &mut seg[oy * g.out_w..(oy + 1) * g.out_w];
        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
        if iy < 0 || iy >= g.in_h as isize {
            dst_row.fill(0.0);
            continue;
        }
        let src_row = &plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
        dst_row[..ox_lo].fill(0.0);
        dst_row[ox_hi..].fill(0.0);
        let ix0 = ox_lo * g.stride + kw - g.pad;
        if g.stride == 1 {
            dst_row[ox_lo..ox_hi].copy_from_slice(&src_row[ix0..ix0 + (ox_hi - ox_lo)]);
        } else {
            for (i, d) in dst_row[ox_lo..ox_hi].iter_mut().enumerate() {
                *d = src_row[ix0 + i * g.stride];
            }
        }
    }
}

/// Lowers a whole `[n, c, in_h, in_w]` batch into the column matrix
/// `out: [c·k_h·k_w, n·out_h·out_w]`, where column `s·P + p` holds
/// patch `p` of sample `s` (`P = out_h·out_w`). Every element of `out`
/// is written, so callers may hand in uninitialized scratch.
fn im2col_batch(input: &[f32], n: usize, c: usize, g: &ConvGeom, out: &mut [f32]) {
    let p = g.out_h * g.out_w;
    let np = n * p;
    let plane_len = g.in_h * g.in_w;
    for ch in 0..c {
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let out_row = &mut out[row * np..(row + 1) * np];
                for (s, seg) in out_row.chunks_exact_mut(p).enumerate() {
                    let plane = &input[(s * c + ch) * plane_len..(s * c + ch + 1) * plane_len];
                    fill_patch_row(plane, g, kh, kw, seg);
                }
            }
        }
    }
}

/// Scatters a `[c·k_h·k_w, n·out_h·out_w]` column-gradient matrix back
/// into the `[n, c, in_h, in_w]` gradient buffer (accumulating overlaps).
/// For each sample the accumulation order matches the reference
/// per-sample col2im exactly.
fn col2im_batch(cols: &[f32], n: usize, c: usize, g: &ConvGeom, out: &mut [f32]) {
    let p = g.out_h * g.out_w;
    let np = n * p;
    let plane_len = g.in_h * g.in_w;
    for ch in 0..c {
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (ch * g.k_h + kh) * g.k_w + kw;
                let col_row = &cols[row * np..(row + 1) * np];
                let Some((ox_lo, ox_hi)) = valid_ox_range(g, kw) else {
                    // This tap column only ever sees padding; nothing to
                    // scatter back.
                    continue;
                };
                for (s, seg) in col_row.chunks_exact(p).enumerate() {
                    let plane = &mut out[(s * c + ch) * plane_len..(s * c + ch + 1) * plane_len];
                    for oy in 0..g.out_h {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        let dst_row = &mut plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                        let src_row = &seg[oy * g.out_w..(oy + 1) * g.out_w];
                        let ix0 = ox_lo * g.stride + kw - g.pad;
                        if g.stride == 1 {
                            let dst = &mut dst_row[ix0..ix0 + (ox_hi - ox_lo)];
                            for (d, &v) in dst.iter_mut().zip(&src_row[ox_lo..ox_hi]) {
                                *d += v;
                            }
                        } else {
                            for (i, &v) in src_row[ox_lo..ox_hi].iter().enumerate() {
                                dst_row[ix0 + i * g.stride] += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

fn check_forward_shapes(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, wc_in, k_h, k_w) = weight.shape().as_nchw()?;
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
            op: "conv2d_forward",
        });
    }
    if bias.numel() != c_out {
        return Err(TensorError::ShapeMismatch {
            left: vec![c_out],
            right: bias.dims().to_vec(),
            op: "conv2d_forward(bias)",
        });
    }
    Ok((n, c_in, h, w, c_out, k_h, k_w))
}

/// Forward 2-D convolution.
///
/// * `input`  — `[n, c_in, h, w]`
/// * `weight` — `[c_out, c_in, k_h, k_w]`
/// * `bias`   — `[c_out]`
///
/// Returns `[n, c_out, out_h, out_w]`.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let mut ws = Workspace::new();
    conv2d_forward_ws(input, weight, bias, stride, pad, &mut ws)
}

/// [`conv2d_forward`] drawing all scratch (and the output) from `ws`.
///
/// # Errors
///
/// Same conditions as [`conv2d_forward`].
pub fn conv2d_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Result<Tensor> {
    if dispatch() == Dispatch::Reference {
        return crate::reference::conv2d_forward(input, weight, bias, stride, pad);
    }
    let (out, cols) = conv2d_forward_ws_cols(input, weight, bias, stride, pad, ws)?;
    ws.recycle(cols);
    Ok(out)
}

/// [`conv2d_forward_ws`] that additionally returns the lowered
/// `[c·k_h·k_w, n·out_h·out_w]` column matrix, so a training layer can
/// hand it straight to [`conv2d_backward_from_cols`] and skip the
/// re-lowering. Both tensors own workspace buffers — recycle when done.
///
/// # Errors
///
/// Same conditions as [`conv2d_forward`].
pub fn conv2d_forward_ws_cols(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Result<(Tensor, Tensor)> {
    let isa = dispatch().isa();
    let (n, c_in, h, w, c_out, k_h, k_w) = check_forward_shapes(input, weight, bias)?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    let ckk = c_in * k_h * k_w;
    let p = g.out_h * g.out_w;
    let np = n * p;

    let mut cols = ws.take(ckk * np);
    im2col_batch(input.data(), n, c_in, &g, &mut cols);

    // One GEMM for the whole batch: [c_out × ckk] · [ckk × n·P].
    let mut y = ws.take(c_out * np);
    gemm_into(isa, c_out, ckk, np, weight.data(), &cols, &mut y);

    // Scatter [c_out, n·P] → [n, c_out, P], adding the bias at the store.
    let mut out = ws.take(n * c_out * p);
    for (co, y_row) in y.chunks_exact(np).enumerate() {
        let b = bias.data()[co];
        for (s, src) in y_row.chunks_exact(p).enumerate() {
            let dst = &mut out[(s * c_out + co) * p..(s * c_out + co + 1) * p];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v + b;
            }
        }
    }
    ws.give(y);
    Ok((
        Tensor::from_vec(out, &[n, c_out, g.out_h, g.out_w])?,
        Tensor::from_vec(cols, &[ckk, np])?,
    ))
}

/// Gradients of a 2-D convolution.
///
/// Given the forward operands and the output gradient
/// `grad_out: [n, c_out, out_h, out_w]`, returns
/// `(grad_input, grad_weight, grad_bias)` with the operand shapes.
///
/// # Errors
///
/// Returns a geometry or shape error when the operand shapes are
/// inconsistent with the forward pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor)> {
    let mut ws = Workspace::new();
    conv2d_backward_ws(input, weight, grad_out, stride, pad, &mut ws)
}

/// [`conv2d_backward`] drawing all scratch (and the outputs) from `ws`.
/// The returned gradients own workspace buffers — recycle them back with
/// [`Workspace::recycle`] once consumed to keep the steady state
/// allocation-free.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward`].
pub fn conv2d_backward_ws(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Result<(Tensor, Tensor, Tensor)> {
    if dispatch() == Dispatch::Reference {
        return crate::reference::conv2d_backward(input, weight, grad_out, stride, pad);
    }
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (_, _, k_h, k_w) = weight.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    let ckk = c_in * k_h * k_w;
    let np = n * g.out_h * g.out_w;
    let mut cols = ws.take(ckk * np);
    im2col_batch(input.data(), n, c_in, &g, &mut cols);
    let cols = Tensor::from_vec(cols, &[ckk, np])?;
    let result = conv2d_backward_from_cols(input.dims(), &cols, weight, grad_out, stride, pad, ws);
    ws.recycle(cols);
    result
}

/// [`conv2d_backward_ws`] reusing a column matrix the forward pass
/// already produced (see [`conv2d_forward_ws_cols`]), skipping the
/// re-lowering entirely.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward`], plus a shape error when
/// `cols` does not match the geometry.
pub fn conv2d_backward_from_cols(
    input_dims: &[usize],
    cols: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c_in, h, w) = crate::Shape::new(input_dims).as_nchw()?;
    let (c_out, _, k_h, k_w) = weight.shape().as_nchw()?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    if gn != n || gc != c_out || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c_out, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "conv2d_backward",
        });
    }
    let ckk = c_in * k_h * k_w;
    let p = g.out_h * g.out_w;
    let np = n * p;
    if cols.dims() != [ckk, np] {
        return Err(TensorError::ShapeMismatch {
            left: vec![ckk, np],
            right: cols.dims().to_vec(),
            op: "conv2d_backward(cols)",
        });
    }

    let isa = dispatch().isa();
    let (dy, grad_w, grad_b) = backward_params(isa, cols, grad_out, c_out, ckk, p, np, ws);

    // dX_cols = Wᵀ · dY (one GEMM), scattered back with batched col2im.
    let mut w_t = ws.take(ckk * c_out);
    transpose_into(weight.data(), c_out, ckk, &mut w_t);
    let mut dcols = ws.take(ckk * np);
    gemm_into(isa, ckk, c_out, np, &w_t, dy.data(), &mut dcols);
    ws.give(w_t);
    ws.recycle(dy);

    let mut grad_in = ws.take_zeroed(n * c_in * h * w);
    col2im_batch(&dcols, n, c_in, &g, &mut grad_in);
    ws.give(dcols);

    Ok((
        Tensor::from_vec(grad_in, input_dims)?,
        Tensor::from_vec(grad_w, &[c_out, c_in, k_h, k_w])?,
        Tensor::from_vec(grad_b, &[c_out])?,
    ))
}

/// Parameter-gradient-only twin of [`conv2d_backward_from_cols`]: skips
/// the input gradient (GEMM + col2im) entirely. Training loops use this
/// for the **first** layer of a network, whose input gradient nothing
/// consumes. Returns `(grad_weight, grad_bias)` with the same values as
/// the full backward.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_from_cols`].
pub fn conv2d_backward_params_from_cols(
    input_dims: &[usize],
    cols: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Result<(Tensor, Tensor)> {
    let (n, c_in, h, w) = crate::Shape::new(input_dims).as_nchw()?;
    let (c_out, _, k_h, k_w) = weight.shape().as_nchw()?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let g = ConvGeom::new(h, w, k_h, k_w, stride, pad)?;
    if gn != n || gc != c_out || gh != g.out_h || gw != g.out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c_out, g.out_h, g.out_w],
            right: grad_out.dims().to_vec(),
            op: "conv2d_backward",
        });
    }
    let ckk = c_in * k_h * k_w;
    let p = g.out_h * g.out_w;
    let np = n * p;
    if cols.dims() != [ckk, np] {
        return Err(TensorError::ShapeMismatch {
            left: vec![ckk, np],
            right: cols.dims().to_vec(),
            op: "conv2d_backward(cols)",
        });
    }
    let (dy, grad_w, grad_b) =
        backward_params(dispatch().isa(), cols, grad_out, c_out, ckk, p, np, ws);
    ws.recycle(dy);
    Ok((
        Tensor::from_vec(grad_w, &[c_out, c_in, k_h, k_w])?,
        Tensor::from_vec(grad_b, &[c_out])?,
    ))
}

/// Shared dY gather + bias/weight gradient computation. Returns the
/// gathered `[c_out, n·P]` dY (as a tensor for recycling) plus the raw
/// grad buffers.
#[allow(clippy::too_many_arguments)]
fn backward_params(
    isa: Isa,
    cols: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    ckk: usize,
    p: usize,
    np: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    // dY as [c_out, n·P]: gather from the [n, c_out, P] layout.
    let mut dy = ws.take(c_out * np);
    for (co, dy_row) in dy.chunks_exact_mut(np).enumerate() {
        for (s, dst) in dy_row.chunks_exact_mut(p).enumerate() {
            dst.copy_from_slice(&grad_out.data()[(s * c_out + co) * p..(s * c_out + co + 1) * p]);
        }
    }

    // dB: per-sample spatial sums, added sample-by-sample (matching the
    // reference accumulation grouping exactly).
    let mut grad_b = ws.take(c_out);
    for (gb, dy_row) in grad_b.iter_mut().zip(dy.chunks_exact(np)) {
        let mut acc = 0.0f32;
        for seg in dy_row.chunks_exact(p) {
            acc += seg.iter().sum::<f32>();
        }
        *gb = acc;
    }

    // dW = dY · colsᵀ: lane-chunked dot products straight off the two
    // row-major operands — no transpose materialized.
    let mut grad_w = ws.take(c_out * ckk);
    gemm_a_bt_into(isa, c_out, np, ckk, &dy, cols.data(), &mut grad_w);
    let dy = Tensor::from_vec(dy, &[c_out, np]).expect("dy sized by construction");
    (dy, grad_w, grad_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    /// Direct convolution, the slow-but-obviously-correct reference.
    fn conv_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c_in, h, w) = input.shape().as_nchw().unwrap();
        let (c_out, _, k_h, k_w) = weight.shape().as_nchw().unwrap();
        let g = ConvGeom::new(h, w, k_h, k_w, stride, pad).unwrap();
        let mut out = Tensor::zeros(&[n, c_out, g.out_h, g.out_w]);
        for s in 0..n {
            for co in 0..c_out {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        let mut acc = bias.data()[co];
                        for ci in 0..c_in {
                            for kh in 0..k_h {
                                for kw in 0..k_w {
                                    let iy = (oy * stride + kh) as isize - pad as isize;
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[s, ci, iy as usize, ix as usize]).unwrap()
                                        * weight.get(&[co, ci, kh, kw]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn sample_tensors(
        n: usize,
        c_in: usize,
        h: usize,
        w: usize,
        c_out: usize,
        k: usize,
    ) -> (Tensor, Tensor, Tensor) {
        let input = Tensor::from_fn(&[n, c_in, h, w], |i| ((i * 37 % 17) as f32 - 8.0) * 0.1);
        let weight = Tensor::from_fn(&[c_out, c_in, k, k], |i| {
            ((i * 53 % 13) as f32 - 6.0) * 0.05
        });
        let bias = Tensor::from_fn(&[c_out], |i| i as f32 * 0.01);
        (input, weight, bias)
    }

    #[test]
    fn forward_matches_naive_same_padding() {
        let (input, weight, bias) = sample_tensors(2, 3, 6, 6, 4, 3);
        let fast = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let slow = conv_naive(&input, &weight, &bias, 1, 1);
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn forward_matches_naive_stride2_nopad() {
        let (input, weight, bias) = sample_tensors(1, 2, 7, 5, 3, 3);
        let fast = conv2d_forward(&input, &weight, &bias, 2, 0).unwrap();
        let slow = conv_naive(&input, &weight, &bias, 2, 0);
        assert_eq!(fast.dims(), slow.dims());
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn forward_bit_identical_to_per_sample_reference() {
        for &(n, c_in, hw, c_out, k, stride, pad) in &[
            (1usize, 1usize, 5usize, 1usize, 3usize, 1usize, 0usize),
            (3, 2, 8, 4, 3, 1, 1),
            (4, 3, 9, 5, 3, 2, 1),
            (2, 4, 6, 3, 5, 1, 2),
        ] {
            let (input, weight, bias) = sample_tensors(n, c_in, hw, hw, c_out, k);
            let fast = conv2d_forward(&input, &weight, &bias, stride, pad).unwrap();
            let refr = reference::conv2d_forward(&input, &weight, &bias, stride, pad).unwrap();
            assert_eq!(
                fast.data(),
                refr.data(),
                "n={n} c_in={c_in} hw={hw} c_out={c_out} k={k} s={stride} p={pad}"
            );
        }
    }

    #[test]
    fn backward_matches_reference_kernels() {
        let (input, weight, bias) = sample_tensors(3, 2, 6, 6, 4, 3);
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::from_fn(out.dims(), |i| ((i * 29 % 11) as f32 - 5.0) * 0.2);
        let (gx, gw, gb) = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let (rx, rw, rb) = reference::conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        // Input and bias gradients preserve the reference accumulation
        // order bit for bit; the batched dW GEMM regroups the sum.
        assert_eq!(gx.data(), rx.data(), "grad_input must be bit-identical");
        assert_eq!(gb.data(), rb.data(), "grad_bias must be bit-identical");
        assert!(gw.approx_eq(&rw, 1e-4), "grad_weight within epsilon");
    }

    #[test]
    fn geometry_validation() {
        assert!(ConvGeom::new(4, 4, 5, 5, 1, 0).is_err());
        assert!(ConvGeom::new(4, 4, 5, 5, 1, 1).is_ok());
        assert!(ConvGeom::new(4, 4, 3, 3, 0, 0).is_err());
        assert!(ConvGeom::new(4, 4, 0, 1, 1, 0).is_err());
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let (input, weight, bias) = sample_tensors(1, 2, 5, 5, 2, 3);
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        // Loss = sum of outputs ⇒ grad_out = ones.
        let grad_out = Tensor::ones(out.dims());
        let (_, gw, gb) = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let eps = 1e-2f32;
        // Check a scattering of weight coordinates.
        for &flat in &[0usize, 5, 11, 17, 23, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[flat] += eps;
            let fp = conv2d_forward(&input, &wp, &bias, 1, 1).unwrap().sum();
            let mut wm = weight.clone();
            wm.data_mut()[flat] -= eps;
            let fm = conv2d_forward(&input, &wm, &bias, 1, 1).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[flat]).abs() < 2e-2,
                "weight grad mismatch at {flat}: fd={fd}, analytic={}",
                gw.data()[flat]
            );
        }
        // Bias gradient under sum-loss is just the number of output pixels.
        let plane =
            (out.numel() / out.dims()[1]) as f32 / out.dims()[0] as f32 * out.dims()[0] as f32;
        for &g in gb.data() {
            assert!((g - plane).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let (input, weight, bias) = sample_tensors(1, 2, 4, 4, 2, 3);
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let (gx, _, _) = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 7, 15, 21, 31] {
            let mut ip = input.clone();
            ip.data_mut()[flat] += eps;
            let fp = conv2d_forward(&ip, &weight, &bias, 1, 1).unwrap().sum();
            let mut im = input.clone();
            im.data_mut()[flat] -= eps;
            let fm = conv2d_forward(&im, &weight, &bias, 1, 1).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 2e-2,
                "input grad mismatch at {flat}: fd={fd}, analytic={}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn backward_rejects_mismatched_grad() {
        let (input, weight, _) = sample_tensors(1, 2, 5, 5, 2, 3);
        let bad = Tensor::zeros(&[1, 2, 9, 9]);
        assert!(conv2d_backward(&input, &weight, &bad, 1, 1).is_err());
    }

    #[test]
    fn kernel_wider_than_padded_span_matches_reference() {
        // A 5×5 kernel on a 5×1 input with pad 2: the outermost kernel
        // columns never see a real pixel (kw ± pad walks off both
        // sides), so their valid-ox span is empty. Regression test for a
        // usize underflow in the fast lowering (reference handled it).
        let input = Tensor::from_fn(&[1, 1, 5, 1], |i| i as f32 - 2.0);
        let weight = Tensor::from_fn(&[1, 1, 5, 5], |i| ((i * 7 % 11) as f32 - 5.0) * 0.1);
        let bias = Tensor::from_vec(vec![0.25], &[1]).unwrap();
        let fast = conv2d_forward(&input, &weight, &bias, 1, 2).unwrap();
        let slow = reference::conv2d_forward(&input, &weight, &bias, 1, 2).unwrap();
        assert_eq!(fast.data(), slow.data());

        let grad_out = Tensor::ones(fast.dims());
        let (gx, gw, gb) = conv2d_backward(&input, &weight, &grad_out, 1, 2).unwrap();
        let (rx, rw, rb) = reference::conv2d_backward(&input, &weight, &grad_out, 1, 2).unwrap();
        assert_eq!(gx.data(), rx.data());
        assert_eq!(gb.data(), rb.data());
        assert!(gw.approx_eq(&rw, 1e-4));
    }

    #[test]
    fn batched_im2col_identity_kernel_1x1() {
        // With a 1×1 kernel, im2col is the identity reshape per sample.
        let g = ConvGeom::new(3, 3, 1, 1, 1, 0).unwrap();
        let batch: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let mut cols = vec![0.0f32; 18];
        im2col_batch(&batch, 2, 1, &g, &mut cols);
        assert_eq!(cols, batch);
    }

    #[test]
    fn workspace_steady_state_is_allocation_free() {
        let (input, weight, bias) = sample_tensors(2, 2, 6, 6, 3, 3);
        let mut ws = Workspace::new();
        let warm = |ws: &mut Workspace| {
            let y = conv2d_forward_ws(&input, &weight, &bias, 1, 1, ws).unwrap();
            let grad_out = Tensor::ones(y.dims());
            ws.recycle(y);
            let (gx, gw, gb) = conv2d_backward_ws(&input, &weight, &grad_out, 1, 1, ws).unwrap();
            ws.recycle(gx);
            ws.recycle(gw);
            ws.recycle(gb);
        };
        warm(&mut ws);
        let after_first = ws.fresh_allocs();
        warm(&mut ws);
        warm(&mut ws);
        assert_eq!(
            ws.fresh_allocs(),
            after_first,
            "steady-state conv fwd+bwd must not allocate"
        );
    }
}
