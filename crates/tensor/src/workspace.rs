//! Reusable scratch buffers for the training hot path.
//!
//! Every tensor op used to allocate (and zero) a fresh `Vec<f32>` per
//! call; at simulator scale — thousands of mini-batch steps per round,
//! dozens of clients — allocation and memset dominate the small-kernel
//! regime. A [`Workspace`] is a recycling pool: kernels [`Workspace::take`]
//! a buffer, and callers [`Workspace::give`] it back (or
//! [`Workspace::recycle`] a whole [`Tensor`]) once its contents are dead.
//! After warm-up a training step performs O(1) fresh allocations, which
//! the [`Workspace::fresh_allocs`] counter makes testable.
//!
//! A workspace is plain owned data (`Send`), so each network replica on a
//! parallel client/group thread carries its own pool with no locking.
//!
//! # Example
//!
//! ```
//! use gsfl_tensor::workspace::Workspace;
//!
//! let mut ws = Workspace::new();
//! let buf = ws.take_zeroed(128);
//! assert_eq!(ws.fresh_allocs(), 1);
//! ws.give(buf);
//! let again = ws.take_zeroed(64); // reuses the pooled buffer
//! assert_eq!(ws.fresh_allocs(), 1);
//! ws.give(again);
//! ```

use crate::wire::WireBuf;
use crate::Tensor;

/// A pool of recycled `f32` (and `f64` accumulator) scratch buffers,
/// plus byte and index pools for the packed wire path
/// (see the module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    pool_f64: Vec<Vec<f64>>,
    /// Encoded-payload byte buffers recycled between wire encodes.
    pool_bytes: Vec<Vec<u8>>,
    /// Survivor-index scratch recycled between sparse encodes.
    pool_idx: Vec<Vec<u32>>,
    fresh_allocs: usize,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A buffer of length `len` with **unspecified contents** (stale data
    /// from a previous use is possible). Use for outputs that will be
    /// fully overwritten; use [`Workspace::take_zeroed`] for accumulators.
    ///
    /// Selection is best-fit by capacity: the smallest pooled buffer that
    /// already holds `len` elements wins, so a steady-state caller cycling
    /// through a fixed set of sizes never reallocates. Only when no pooled
    /// buffer is large enough does this count as a fresh allocation.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.pool.swap_remove(i);
                buf.truncate(len);
                if buf.len() < len {
                    buf.resize(len, 0.0); // capacity suffices: len grows in place
                }
                buf
            }
            None => {
                // Growing a smaller pooled buffer would realloc anyway;
                // count it honestly and keep the small one pooled.
                self.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// A zero-filled buffer of length `len`.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.give(tensor.into_vec());
    }

    /// An `f64` accumulator buffer of length `len` with **unspecified
    /// contents** — the double-precision twin of [`Workspace::take`],
    /// used by the aggregation hot path. Shares the
    /// [`Workspace::fresh_allocs`] counter.
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool_f64.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.pool_f64.swap_remove(i);
                buf.truncate(len);
                if buf.len() < len {
                    buf.resize(len, 0.0); // capacity suffices: len grows in place
                }
                buf
            }
            None => {
                self.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// A zero-filled `f64` accumulator of length `len`.
    pub fn take_f64_zeroed(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.take_f64(len);
        buf.fill(0.0);
        buf
    }

    /// Returns an `f64` buffer to the pool for reuse.
    pub fn give_f64(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.pool_f64.push(buf);
        }
    }

    /// An **empty** byte buffer for a wire encode, recycling the
    /// largest pooled one (its capacity carries over, so steady-state
    /// encodes of a fixed payload size never reallocate). A pool miss
    /// counts as a fresh allocation.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool_bytes.iter().enumerate() {
            let cap = buf.capacity();
            if best.is_none_or(|(_, c)| cap > c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.pool_bytes.swap_remove(i);
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a byte buffer to the pool for reuse.
    pub fn give_bytes(&mut self, buf: Vec<u8>) {
        self.pool_bytes.push(buf);
    }

    /// An empty [`WireBuf`] backed by a recycled byte buffer — the
    /// zero-alloc steady-state entry point for wire encoding.
    pub fn take_wire(&mut self) -> WireBuf {
        WireBuf::from_vec(self.take_bytes())
    }

    /// Returns a [`WireBuf`]'s backing storage to the byte pool.
    pub fn give_wire(&mut self, buf: WireBuf) {
        self.give_bytes(buf.into_vec());
    }

    /// An **empty** `u32` index buffer (survivor indices for sparse
    /// encodes), recycling the largest pooled one. A pool miss counts
    /// as a fresh allocation.
    pub fn take_indices(&mut self) -> Vec<u32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool_idx.iter().enumerate() {
            let cap = buf.capacity();
            if best.is_none_or(|(_, c)| cap > c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.pool_idx.swap_remove(i);
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns an index buffer to the pool for reuse.
    pub fn give_indices(&mut self, buf: Vec<u32>) {
        self.pool_idx.push(buf);
    }

    /// How many buffers were heap-allocated because the pool was empty.
    /// Steady-state reuse means this stops growing after warm-up.
    pub fn fresh_allocs(&self) -> usize {
        self.fresh_allocs
    }

    /// Buffers currently parked in the pool (all element types).
    pub fn pooled(&self) -> usize {
        self.pool.len() + self.pool_f64.len() + self.pool_bytes.len() + self.pool_idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take(10);
        let b = ws.take(20);
        assert_eq!(ws.fresh_allocs(), 2);
        ws.give(a);
        ws.give(b);
        let c = ws.take(15);
        assert_eq!(c.len(), 15);
        assert_eq!(ws.fresh_allocs(), 2, "pooled buffer must be reused");
        ws.give(c);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take(4);
        a.fill(7.0);
        ws.give(a);
        let b = ws.take_zeroed(4);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn f64_pool_recycles_like_f32() {
        let mut ws = Workspace::new();
        let mut a = ws.take_f64(16);
        assert_eq!(ws.fresh_allocs(), 1);
        a.fill(3.5);
        ws.give_f64(a);
        let b = ws.take_f64_zeroed(12);
        assert_eq!(b.len(), 12);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(ws.fresh_allocs(), 1, "pooled f64 buffer must be reused");
        ws.give_f64(b);
        // The two precisions pool independently but count together.
        let f32_buf = ws.take(8);
        assert_eq!(ws.fresh_allocs(), 2);
        ws.give(f32_buf);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn byte_and_index_pools_recycle() {
        let mut ws = Workspace::new();
        let mut b = ws.take_bytes();
        assert_eq!(ws.fresh_allocs(), 1);
        b.extend_from_slice(&[1, 2, 3, 4]);
        ws.give_bytes(b);
        let b2 = ws.take_bytes();
        assert!(b2.is_empty(), "recycled byte buffers come back cleared");
        assert!(b2.capacity() >= 4, "capacity carries over");
        assert_eq!(ws.fresh_allocs(), 1);
        ws.give_bytes(b2);
        let mut i = ws.take_indices();
        assert_eq!(ws.fresh_allocs(), 2);
        i.push(9);
        ws.give_indices(i);
        let i2 = ws.take_indices();
        assert!(i2.is_empty());
        assert_eq!(ws.fresh_allocs(), 2);
        ws.give_indices(i2);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn recycle_tensor_round_trips() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::ones(&[3, 3]));
        let buf = ws.take(9);
        assert_eq!(ws.fresh_allocs(), 0);
        assert_eq!(buf.len(), 9);
    }
}
