//! Property-based tests for dataset generation and partitioning.

use gsfl_data::batcher::Batcher;
use gsfl_data::dataset::ImageDataset;
use gsfl_data::partition::Partition;
use gsfl_data::synth::SynthGtsrb;
use gsfl_tensor::Tensor;
use proptest::prelude::*;

fn dataset(n: usize, classes: usize) -> ImageDataset {
    let images = Tensor::from_fn(&[n, 2], |i| i as f32);
    let labels = (0..n).map(|i| i % classes).collect();
    ImageDataset::new(images, labels, classes).unwrap()
}

fn assert_partition_valid(p: &Partition, n: usize) -> Result<(), TestCaseError> {
    let mut seen = vec![false; n];
    for c in 0..p.client_count() {
        for &i in p.client_indices(c) {
            prop_assert!(!seen[i], "index {} assigned twice", i);
            seen[i] = true;
        }
    }
    prop_assert!(seen.iter().all(|&s| s), "unassigned sample");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iid_partition_is_exact_cover(
        n in 10usize..200,
        clients in 1usize..10,
        seed in 0u64..1000,
    ) {
        prop_assume!(clients <= n);
        let ds = dataset(n, 5);
        let p = Partition::iid(&ds, clients, seed).unwrap();
        assert_partition_valid(&p, n)?;
        // Near-equal shard sizes.
        let sizes = p.sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn dirichlet_partition_is_exact_cover(
        n in 20usize..200,
        clients in 2usize..8,
        alpha in 0.05f64..50.0,
        seed in 0u64..1000,
    ) {
        let ds = dataset(n, 4);
        let p = Partition::dirichlet(&ds, clients, alpha, seed).unwrap();
        assert_partition_valid(&p, n)?;
        prop_assert!(p.sizes().iter().all(|&s| s >= 1), "empty shard after rebalance");
    }

    #[test]
    fn shards_partition_is_exact_cover(
        clients in 2usize..8,
        per in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = 120;
        let ds = dataset(n, 6);
        prop_assume!(clients * per <= n);
        let p = Partition::shards(&ds, clients, per, seed).unwrap();
        assert_partition_valid(&p, n)?;
    }

    #[test]
    fn batcher_epoch_is_exact_cover(
        n in 1usize..100,
        batch in 1usize..20,
        epoch in 0u64..10,
    ) {
        let ds = dataset(n, 2);
        let b = Batcher::new(batch, 3).unwrap();
        let mut seen = vec![0usize; n];
        for batch in b.epoch(&ds, epoch).unwrap() {
            for r in 0..batch.labels.len() {
                // Features are [2i, 2i+1], so the sample id is value/2.
                let id = batch.images.get(&[r, 0]).unwrap() as usize / 2;
                seen[id] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn generator_deterministic_and_bounded(
        classes in 1usize..10,
        per in 1usize..4,
        seed in 0u64..100,
    ) {
        let make = || SynthGtsrb::builder()
            .classes(classes)
            .samples_per_class(per)
            .image_size(8)
            .seed(seed)
            .generate()
            .unwrap();
        let a = make();
        prop_assert_eq!(&a, &make());
        prop_assert!(a.images().data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert_eq!(a.len(), classes * per);
    }

    #[test]
    fn subset_concat_identity(n in 2usize..60, cut_frac in 0.1f64..0.9) {
        let ds = dataset(n, 3);
        let cut = ((n as f64) * cut_frac) as usize;
        let head: Vec<usize> = (0..cut).collect();
        let tail: Vec<usize> = (cut..n).collect();
        let a = ds.subset(&head).unwrap();
        let b = ds.subset(&tail).unwrap();
        let joined = ImageDataset::concat(&[&a, &b]).unwrap();
        prop_assert_eq!(joined, ds);
    }
}
