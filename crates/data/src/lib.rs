//! Synthetic GTSRB-like dataset and client partitioning.
//!
//! The paper evaluates on GTSRB (43-class traffic-sign photos). Real GTSRB
//! is not available offline, so this crate implements the substitution
//! documented in `DESIGN.md`: a **procedural traffic-sign generator**
//! ([`synth`]) whose 43 classes are defined by sign shape, rim/field
//! colours and an inner glyph, rendered with rotation / translation /
//! scale / brightness / noise augmentation. The task keeps the properties
//! that matter to the experiments — 43 classes, 3-channel images, enough
//! intra-class variation that models need many SGD steps to converge — while
//! exercising exactly the code paths a real dataset would.
//!
//! The crate also provides:
//!
//! * [`dataset::ImageDataset`] — an owned `(images, labels)` pair,
//! * [`partition`] — IID, Dirichlet non-IID and shard partitioners that
//!   split a dataset across clients,
//! * [`batcher::Batcher`] — seeded, shuffling mini-batch iteration,
//! * [`stats`] — class-distribution summaries.
//!
//! # Example
//!
//! ```
//! use gsfl_data::synth::SynthGtsrb;
//! use gsfl_data::partition::Partition;
//!
//! # fn main() -> Result<(), gsfl_data::DataError> {
//! let ds = SynthGtsrb::builder().classes(5).samples_per_class(4).image_size(8).seed(1).generate()?;
//! assert_eq!(ds.len(), 20);
//! let parts = Partition::iid(&ds, 4, 7)?;
//! assert_eq!(parts.client_count(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod batcher;
pub mod dataset;
pub mod partition;
pub mod stats;
pub mod synth;

pub use error::DataError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
