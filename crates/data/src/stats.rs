//! Dataset and partition statistics.

use crate::dataset::ImageDataset;

/// Per-class sample counts.
pub fn class_histogram(dataset: &ImageDataset) -> Vec<usize> {
    let mut hist = vec![0usize; dataset.num_classes()];
    for &l in dataset.labels() {
        hist[l] += 1;
    }
    hist
}

/// Number of distinct classes present.
pub fn classes_present(dataset: &ImageDataset) -> usize {
    class_histogram(dataset).iter().filter(|&&c| c > 0).count()
}

/// A label-skew measure in `[0, 1]`: normalized total-variation distance of
/// the class distribution from uniform. 0 ⇒ perfectly balanced, →1 ⇒ all
/// mass on one class.
pub fn label_skew(dataset: &ImageDataset) -> f64 {
    let hist = class_histogram(dataset);
    let total: usize = hist.iter().sum();
    if total == 0 || hist.len() <= 1 {
        return 0.0;
    }
    let uniform = 1.0 / hist.len() as f64;
    let tv: f64 = hist
        .iter()
        .map(|&c| (c as f64 / total as f64 - uniform).abs())
        .sum::<f64>()
        / 2.0;
    // Max possible TV distance from uniform is 1 − 1/k.
    tv / (1.0 - uniform)
}

/// Mean pixel value over the entire dataset.
pub fn mean_pixel(dataset: &ImageDataset) -> f32 {
    dataset.images().mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    fn dataset(labels: Vec<usize>, classes: usize) -> ImageDataset {
        let n = labels.len();
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        ImageDataset::new(images, labels, classes).unwrap()
    }

    #[test]
    fn histogram_counts() {
        let ds = dataset(vec![0, 0, 1, 2, 2, 2], 4);
        assert_eq!(class_histogram(&ds), vec![2, 1, 3, 0]);
        assert_eq!(classes_present(&ds), 3);
    }

    #[test]
    fn skew_bounds() {
        let balanced = dataset(vec![0, 1, 2, 0, 1, 2], 3);
        assert!(label_skew(&balanced) < 1e-9);
        let degenerate = dataset(vec![1, 1, 1, 1], 3);
        assert!((label_skew(&degenerate) - 1.0).abs() < 1e-9);
        let partial = dataset(vec![0, 0, 1], 2);
        let s = label_skew(&partial);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn mean_pixel_of_zeros_is_zero() {
        assert_eq!(mean_pixel(&dataset(vec![0], 1)), 0.0);
    }
}
