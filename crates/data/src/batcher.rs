//! Seeded mini-batch iteration.

use crate::dataset::ImageDataset;
use crate::{DataError, Result};
use gsfl_tensor::rng::SeedDerive;
use gsfl_tensor::Tensor;
use rand::seq::SliceRandom;

/// One mini-batch: an image tensor and its labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `[b, c, h, w]` (or `[b, d]`).
    pub images: Tensor,
    /// Labels, length `b`.
    pub labels: Vec<usize>,
}

/// A shuffling mini-batch iterator over a dataset.
///
/// Each *epoch* reshuffles with a seed derived from `(base seed, epoch)`,
/// so iteration order is deterministic for a given experiment seed but
/// differs between epochs.
///
/// # Example
///
/// ```
/// use gsfl_data::{synth::SynthGtsrb, batcher::Batcher};
///
/// # fn main() -> Result<(), gsfl_data::DataError> {
/// let ds = SynthGtsrb::builder().classes(3).samples_per_class(8).image_size(8).generate()?;
/// let batcher = Batcher::new(4, 42)?;
/// let batches: Vec<_> = batcher.epoch(&ds, 0)?.collect();
/// assert_eq!(batches.len(), 6); // 24 samples / batch 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    batch_size: usize,
    seed: u64,
}

impl Batcher {
    /// Creates a batcher with the given batch size and base seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] when `batch_size` is zero.
    pub fn new(batch_size: usize, seed: u64) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::Config("batch_size must be ≥ 1".into()));
        }
        Ok(Batcher { batch_size, seed })
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches per epoch over `dataset` (last partial batch
    /// included).
    pub fn batches_per_epoch(&self, dataset: &ImageDataset) -> usize {
        dataset.len().div_ceil(self.batch_size)
    }

    /// Iterates one epoch over `dataset` in a fresh shuffled order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] for an empty dataset.
    pub fn epoch<'d>(&self, dataset: &'d ImageDataset, epoch: u64) -> Result<EpochIter<'d>> {
        if dataset.is_empty() {
            return Err(DataError::Config("cannot batch an empty dataset".into()));
        }
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut rng = SeedDerive::new(self.seed)
            .child("batcher")
            .index(epoch)
            .rng();
        order.shuffle(&mut rng);
        Ok(EpochIter {
            dataset,
            order,
            cursor: 0,
            batch_size: self.batch_size,
        })
    }
}

/// Iterator over the batches of one epoch (see [`Batcher::epoch`]).
#[derive(Debug)]
pub struct EpochIter<'d> {
    dataset: &'d ImageDataset,
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl Iterator for EpochIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let images = self
            .dataset
            .images()
            .gather_axis0(idx)
            .expect("indices from 0..len are valid");
        let labels = idx.iter().map(|&i| self.dataset.labels()[i]).collect();
        Some(Batch { images, labels })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.order.len() - self.cursor).div_ceil(self.batch_size);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for EpochIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    fn dataset(n: usize) -> ImageDataset {
        let images = Tensor::from_fn(&[n, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % 2).collect();
        ImageDataset::new(images, labels, 2).unwrap()
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let ds = dataset(10);
        let b = Batcher::new(3, 0).unwrap();
        let mut seen = [0usize; 10];
        for batch in b.epoch(&ds, 0).unwrap() {
            for row in 0..batch.labels.len() {
                // Recover the sample id from the feature value (features
                // are [2i, 2i+1]).
                let first = batch.images.get(&[row, 0]).unwrap();
                seen[(first as usize) / 2] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn batch_sizes_and_last_partial() {
        let ds = dataset(10);
        let b = Batcher::new(4, 0).unwrap();
        let sizes: Vec<usize> = b.epoch(&ds, 0).unwrap().map(|x| x.labels.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(b.batches_per_epoch(&ds), 3);
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let ds = dataset(16);
        let b = Batcher::new(16, 7).unwrap();
        let order = |epoch| -> Vec<usize> {
            let batch = b.epoch(&ds, epoch).unwrap().next().unwrap();
            (0..16)
                .map(|r| batch.images.get(&[r, 0]).unwrap() as usize / 2)
                .collect()
        };
        assert_eq!(order(0), order(0));
        assert_ne!(order(0), order(1));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Batcher::new(0, 0).is_err());
        let empty = ImageDataset::new(Tensor::zeros(&[0, 2]), vec![], 2).unwrap();
        assert!(Batcher::new(2, 0).unwrap().epoch(&empty, 0).is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let ds = dataset(10);
        let it = Batcher::new(4, 0).unwrap().epoch(&ds, 0).unwrap();
        assert_eq!(it.len(), 3);
    }
}
