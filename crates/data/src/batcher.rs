//! Seeded mini-batch iteration.

use crate::dataset::ImageDataset;
use crate::{DataError, Result};
use gsfl_tensor::rng::SeedDerive;
use gsfl_tensor::{Tensor, Workspace};
use rand::seq::SliceRandom;
use std::cell::RefCell;

/// One mini-batch: an image tensor and its labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `[b, c, h, w]` (or `[b, d]`).
    pub images: Tensor,
    /// Labels, length `b`.
    pub labels: Vec<usize>,
}

/// The batcher's persistent gather arena: recycled image buffers (a
/// best-fit [`Workspace`]) plus a label-vector pool. Training loops hand
/// consumed batches back through [`Batcher::recycle`]; after the first
/// epoch warms the pool, per-step gathers allocate nothing.
#[derive(Debug, Default)]
struct Arena {
    images: Workspace,
    labels: Vec<Vec<usize>>,
    label_fresh: usize,
}

impl Arena {
    fn take_labels(&mut self) -> Vec<usize> {
        match self.labels.pop() {
            Some(buf) => buf,
            None => {
                self.label_fresh += 1;
                Vec::new()
            }
        }
    }
}

/// A shuffling mini-batch iterator over a dataset.
///
/// Each *epoch* reshuffles with a seed derived from `(base seed, epoch)`,
/// so iteration order is deterministic for a given experiment seed but
/// differs between epochs.
///
/// The batcher owns a per-client gather arena: batches draw their image
/// buffer and label vector from recycled pools, and callers on the hot
/// path return consumed batches with [`Batcher::recycle`] so the
/// steady-state training step performs no gather allocation (pinned by
/// [`Batcher::gather_fresh_allocs`]). Dropping batches instead is always
/// safe, just slower.
///
/// # Example
///
/// ```
/// use gsfl_data::{synth::SynthGtsrb, batcher::Batcher};
///
/// # fn main() -> Result<(), gsfl_data::DataError> {
/// let ds = SynthGtsrb::builder().classes(3).samples_per_class(8).image_size(8).generate()?;
/// let batcher = Batcher::new(4, 42)?;
/// let batches: Vec<_> = batcher.epoch(&ds, 0)?.collect();
/// assert_eq!(batches.len(), 6); // 24 samples / batch 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Batcher {
    batch_size: usize,
    seed: u64,
    arena: RefCell<Arena>,
}

impl Clone for Batcher {
    fn clone(&self) -> Self {
        // The pooled buffers stay with the original; a clone starts with
        // a cold arena of its own.
        Batcher {
            batch_size: self.batch_size,
            seed: self.seed,
            arena: RefCell::new(Arena::default()),
        }
    }
}

impl Batcher {
    /// Creates a batcher with the given batch size and base seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] when `batch_size` is zero.
    pub fn new(batch_size: usize, seed: u64) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::Config("batch_size must be ≥ 1".into()));
        }
        Ok(Batcher {
            batch_size,
            seed,
            arena: RefCell::new(Arena::default()),
        })
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches per epoch over `dataset` (last partial batch
    /// included).
    pub fn batches_per_epoch(&self, dataset: &ImageDataset) -> usize {
        dataset.len().div_ceil(self.batch_size)
    }

    /// Returns a consumed batch's buffers to the gather arena so the
    /// next [`EpochIter::next`] reuses them instead of allocating.
    pub fn recycle(&self, batch: Batch) {
        let mut arena = self.arena.borrow_mut();
        arena.images.recycle(batch.images);
        let mut labels = batch.labels;
        labels.clear();
        arena.labels.push(labels);
    }

    /// How many gather buffers (image + label) were freshly heap-
    /// allocated because the arena had nothing to recycle. A training
    /// loop that recycles its batches stops increasing this after the
    /// first epoch.
    pub fn gather_fresh_allocs(&self) -> usize {
        let arena = self.arena.borrow();
        arena.images.fresh_allocs() + arena.label_fresh
    }

    /// Iterates one epoch over `dataset` in a fresh shuffled order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] for an empty dataset.
    pub fn epoch<'d>(&'d self, dataset: &'d ImageDataset, epoch: u64) -> Result<EpochIter<'d>> {
        if dataset.is_empty() {
            return Err(DataError::Config("cannot batch an empty dataset".into()));
        }
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut rng = SeedDerive::new(self.seed)
            .child("batcher")
            .index(epoch)
            .rng();
        order.shuffle(&mut rng);
        Ok(EpochIter {
            dataset,
            arena: &self.arena,
            order,
            cursor: 0,
            batch_size: self.batch_size,
        })
    }
}

/// Iterator over the batches of one epoch (see [`Batcher::epoch`]).
#[derive(Debug)]
pub struct EpochIter<'d> {
    dataset: &'d ImageDataset,
    arena: &'d RefCell<Arena>,
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl Iterator for EpochIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let inner: usize = self.dataset.images().dims()[1..].iter().product();
        let (buf, mut labels) = {
            let mut arena = self.arena.borrow_mut();
            (arena.images.take(idx.len() * inner), arena.take_labels())
        };
        let images = self
            .dataset
            .images()
            .gather_axis0_with(idx, buf)
            .expect("indices from 0..len are valid");
        labels.clear();
        labels.extend(idx.iter().map(|&i| self.dataset.labels()[i]));
        Some(Batch { images, labels })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.order.len() - self.cursor).div_ceil(self.batch_size);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for EpochIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    fn dataset(n: usize) -> ImageDataset {
        let images = Tensor::from_fn(&[n, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % 2).collect();
        ImageDataset::new(images, labels, 2).unwrap()
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let ds = dataset(10);
        let b = Batcher::new(3, 0).unwrap();
        let mut seen = [0usize; 10];
        for batch in b.epoch(&ds, 0).unwrap() {
            for row in 0..batch.labels.len() {
                // Recover the sample id from the feature value (features
                // are [2i, 2i+1]).
                let first = batch.images.get(&[row, 0]).unwrap();
                seen[(first as usize) / 2] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn batch_sizes_and_last_partial() {
        let ds = dataset(10);
        let b = Batcher::new(4, 0).unwrap();
        let sizes: Vec<usize> = b.epoch(&ds, 0).unwrap().map(|x| x.labels.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(b.batches_per_epoch(&ds), 3);
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let ds = dataset(16);
        let b = Batcher::new(16, 7).unwrap();
        let order = |epoch| -> Vec<usize> {
            let batch = b.epoch(&ds, epoch).unwrap().next().unwrap();
            (0..16)
                .map(|r| batch.images.get(&[r, 0]).unwrap() as usize / 2)
                .collect()
        };
        assert_eq!(order(0), order(0));
        assert_ne!(order(0), order(1));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Batcher::new(0, 0).is_err());
        let empty = ImageDataset::new(Tensor::zeros(&[0, 2]), vec![], 2).unwrap();
        assert!(Batcher::new(2, 0).unwrap().epoch(&empty, 0).is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let ds = dataset(10);
        let b = Batcher::new(4, 0).unwrap();
        let it = b.epoch(&ds, 0).unwrap();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn recycled_epochs_stop_allocating() {
        let ds = dataset(10); // batch sizes 4, 4, 2 — two buffer shapes
        let b = Batcher::new(4, 3).unwrap();
        let run_epoch = |e: u64| {
            // Use then recycle each batch, as the training loops do.
            for batch in b.epoch(&ds, e).unwrap() {
                b.recycle(batch);
            }
        };
        run_epoch(0);
        run_epoch(1);
        let warm = b.gather_fresh_allocs();
        assert!(warm > 0, "the cold arena must have allocated something");
        for e in 2..6 {
            run_epoch(e);
        }
        assert_eq!(
            b.gather_fresh_allocs(),
            warm,
            "steady-state gathers must reuse the arena"
        );
    }

    #[test]
    fn recycled_batches_are_byte_identical_to_fresh_ones() {
        let ds = dataset(10);
        let fresh = Batcher::new(4, 9).unwrap();
        let reused = Batcher::new(4, 9).unwrap();
        // Warm the reused batcher's arena with a full epoch.
        for batch in reused.epoch(&ds, 0).unwrap() {
            reused.recycle(batch);
        }
        for e in 0..3u64 {
            let a: Vec<Batch> = fresh.epoch(&ds, e).unwrap().collect();
            let mut b_batches = Vec::new();
            for batch in reused.epoch(&ds, e).unwrap() {
                b_batches.push((batch.images.data().to_vec(), batch.labels.clone()));
                reused.recycle(batch);
            }
            for (x, (img, labels)) in a.iter().zip(&b_batches) {
                assert_eq!(x.images.data(), &img[..]);
                assert_eq!(&x.labels, labels);
            }
        }
    }

    #[test]
    fn clone_starts_with_a_cold_arena() {
        let ds = dataset(8);
        let b = Batcher::new(4, 1).unwrap();
        for batch in b.epoch(&ds, 0).unwrap() {
            b.recycle(batch);
        }
        assert!(b.gather_fresh_allocs() > 0);
        let c = b.clone();
        assert_eq!(c.gather_fresh_allocs(), 0);
        assert_eq!(c.batch_size(), 4);
    }
}
