//! Procedural traffic-sign generator (the GTSRB substitution).
//!
//! Each of the up-to-43 classes is a unique combination of sign shape,
//! rim colour, field colour and inner glyph, mirroring the visual taxonomy
//! of real traffic signs (red-rimmed white triangles, blue circles, the
//! red octagon, …). Samples are rendered analytically — every pixel is
//! evaluated through an inverse affine transform (rotation, translation,
//! scale) of the class's signed-shape functions — then perturbed with
//! brightness jitter and additive noise, so no two samples are identical.

mod palette;
mod shapes;
mod spec;

pub use palette::Rgb;
pub use shapes::{Glyph, SignShape};
pub use spec::ClassSpec;

use crate::dataset::ImageDataset;
use crate::{DataError, Result};
use gsfl_tensor::rng::SeedDerive;
use gsfl_tensor::Tensor;
use rand::Rng;

/// Maximum number of distinct classes the spec table provides (matches
/// GTSRB).
pub const MAX_CLASSES: usize = 43;

/// Builder for the synthetic GTSRB-like dataset.
///
/// # Example
///
/// ```
/// use gsfl_data::synth::SynthGtsrb;
///
/// # fn main() -> Result<(), gsfl_data::DataError> {
/// let ds = SynthGtsrb::builder()
///     .classes(43)
///     .samples_per_class(10)
///     .image_size(32)
///     .seed(7)
///     .generate()?;
/// assert_eq!(ds.len(), 430);
/// assert_eq!(ds.sample_dims(), vec![3, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SynthGtsrb {
    classes: usize,
    samples_per_class: usize,
    image_size: usize,
    seed: u64,
    augment: Augment,
}

/// Augmentation ranges applied per sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Augment {
    /// Max |rotation| in radians.
    pub rotation: f32,
    /// Max |translation| as a fraction of the half-image.
    pub translation: f32,
    /// Scale is drawn from `[1−scale_jitter, 1+scale_jitter]`.
    pub scale_jitter: f32,
    /// Brightness multiplier drawn from `[1−b, 1+b]`.
    pub brightness: f32,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Max deviation of the background grey level around its 0.42 centre.
    pub background_jitter: f32,
}

impl Default for Augment {
    fn default() -> Self {
        Augment {
            rotation: 0.18, // ≈ ±10°
            translation: 0.12,
            scale_jitter: 0.12,
            brightness: 0.25,
            noise_std: 0.06,
            background_jitter: 0.17,
        }
    }
}

impl Augment {
    /// No augmentation at all — every sample of a class is identical.
    pub fn none() -> Self {
        Augment {
            rotation: 0.0,
            translation: 0.0,
            scale_jitter: 0.0,
            brightness: 0.0,
            noise_std: 0.0,
            background_jitter: 0.0,
        }
    }
}

impl SynthGtsrb {
    /// Starts a builder with GTSRB-like defaults (43 classes, 32×32).
    pub fn builder() -> Self {
        SynthGtsrb {
            classes: MAX_CLASSES,
            samples_per_class: 100,
            image_size: 32,
            seed: 0,
            augment: Augment::default(),
        }
    }

    /// Sets the number of classes (≤ [`MAX_CLASSES`]).
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Sets samples per class.
    pub fn samples_per_class(mut self, n: usize) -> Self {
        self.samples_per_class = n;
        self
    }

    /// Sets the square image size in pixels.
    pub fn image_size(mut self, s: usize) -> Self {
        self.image_size = s;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the augmentation ranges.
    pub fn augment(mut self, augment: Augment) -> Self {
        self.augment = augment;
        self
    }

    /// Generates the dataset: `classes × samples_per_class` images,
    /// class-interleaved ordering (0,1,2,…,0,1,2,…).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] for zero sizes or too many classes.
    pub fn generate(&self) -> Result<ImageDataset> {
        if self.classes == 0 || self.classes > MAX_CLASSES {
            return Err(DataError::Config(format!(
                "classes must be 1..={MAX_CLASSES}, got {}",
                self.classes
            )));
        }
        if self.samples_per_class == 0 || self.image_size < 8 {
            return Err(DataError::Config(
                "samples_per_class ≥ 1 and image_size ≥ 8 required".into(),
            ));
        }
        let specs = ClassSpec::table(self.classes);
        let s = self.image_size;
        let n = self.classes * self.samples_per_class;
        let mut data = vec![0.0f32; n * 3 * s * s];
        let mut labels = Vec::with_capacity(n);
        let root = SeedDerive::new(self.seed).child("synth-gtsrb");

        let mut sample_idx = 0usize;
        for rep in 0..self.samples_per_class {
            for (class, spec) in specs.iter().enumerate() {
                let mut rng = root.index(class as u64).index(rep as u64).rng();
                let jitter = SampleJitter::draw(&self.augment, &mut rng);
                let offset = sample_idx * 3 * s * s;
                render_sample(
                    spec,
                    &jitter,
                    s,
                    &mut data[offset..offset + 3 * s * s],
                    &mut rng,
                    self.augment.noise_std,
                );
                labels.push(class);
                sample_idx += 1;
            }
        }
        let images = Tensor::from_vec(data, &[n, 3, s, s])?;
        ImageDataset::new(images, labels, self.classes)
    }
}

/// Per-sample random transform parameters.
#[derive(Debug, Clone, Copy)]
struct SampleJitter {
    cos_t: f32,
    sin_t: f32,
    dx: f32,
    dy: f32,
    inv_scale: f32,
    brightness: f32,
    background: Rgb,
}

impl SampleJitter {
    fn draw(a: &Augment, rng: &mut rand_chacha::ChaCha8Rng) -> Self {
        let theta: f32 = if a.rotation > 0.0 {
            rng.gen_range(-a.rotation..=a.rotation)
        } else {
            0.0
        };
        let range = |r: f32, rng: &mut rand_chacha::ChaCha8Rng| -> f32 {
            if r > 0.0 {
                rng.gen_range(-r..=r)
            } else {
                0.0
            }
        };
        let dx = range(a.translation, rng);
        let dy = range(a.translation, rng);
        let scale = 1.0 + range(a.scale_jitter, rng);
        let brightness = 1.0 + range(a.brightness, rng);
        // Muted random background (road/sky-ish grey tones).
        let g: f32 = 0.42 + range(a.background_jitter, rng);
        let tint: f32 = range(if a.background_jitter > 0.0 { 0.05 } else { 0.0 }, rng);
        SampleJitter {
            cos_t: theta.cos(),
            sin_t: theta.sin(),
            dx,
            dy,
            inv_scale: 1.0 / scale,
            brightness,
            background: Rgb::new((g + tint).clamp(0.0, 1.0), g, (g - tint).clamp(0.0, 1.0)),
        }
    }
}

/// Renders one sample into a `[3·s·s]` slice (channel-planar layout).
fn render_sample(
    spec: &ClassSpec,
    j: &SampleJitter,
    s: usize,
    out: &mut [f32],
    rng: &mut rand_chacha::ChaCha8Rng,
    noise_std: f32,
) {
    let plane = s * s;
    let half = (s as f32) / 2.0;
    for py in 0..s {
        for px in 0..s {
            // Pixel centre in [-1, 1] image coordinates.
            let x0 = (px as f32 + 0.5 - half) / half;
            let y0 = (py as f32 + 0.5 - half) / half;
            // Inverse transform into sign coordinates.
            let xt = (x0 - j.dx) * j.inv_scale;
            let yt = (y0 - j.dy) * j.inv_scale;
            let u = j.cos_t * xt + j.sin_t * yt;
            let v = -j.sin_t * xt + j.cos_t * yt;
            let rgb = spec.color_at(u, v, j.background);
            let idx = py * s + px;
            let noise = |rng: &mut rand_chacha::ChaCha8Rng| -> f32 {
                if noise_std > 0.0 {
                    noise_std * gsfl_tensor::init::standard_normal(rng)
                } else {
                    0.0
                }
            };
            out[idx] = (rgb.r * j.brightness + noise(rng)).clamp(0.0, 1.0);
            out[plane + idx] = (rgb.g * j.brightness + noise(rng)).clamp(0.0, 1.0);
            out[2 * plane + idx] = (rgb.b * j.brightness + noise(rng)).clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let ds = SynthGtsrb::builder()
            .classes(5)
            .samples_per_class(3)
            .image_size(16)
            .generate()
            .unwrap();
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.num_classes(), 5);
        // Class-interleaved ordering.
        assert_eq!(&ds.labels()[..5], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = SynthGtsrb::builder()
            .classes(8)
            .samples_per_class(2)
            .image_size(16)
            .generate()
            .unwrap();
        assert!(ds.images().data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn deterministic_per_seed() {
        let make = |seed| {
            SynthGtsrb::builder()
                .classes(4)
                .samples_per_class(2)
                .image_size(12)
                .seed(seed)
                .generate()
                .unwrap()
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }

    #[test]
    fn augmentation_makes_samples_differ_within_class() {
        let ds = SynthGtsrb::builder()
            .classes(1)
            .samples_per_class(2)
            .image_size(16)
            .generate()
            .unwrap();
        let a = ds.images().slice_axis0(0..1).unwrap();
        let b = ds.images().slice_axis0(1..2).unwrap();
        assert!(!a.approx_eq(&b, 1e-3));
    }

    #[test]
    fn no_augment_makes_identical_samples() {
        let ds = SynthGtsrb::builder()
            .classes(1)
            .samples_per_class(2)
            .image_size(16)
            .augment(Augment::none())
            .generate()
            .unwrap();
        let a = ds.images().slice_axis0(0..1).unwrap();
        let b = ds.images().slice_axis0(1..2).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn classes_are_visually_distinct() {
        // 4×4-pooled spatial signatures of different classes must differ —
        // a cheap proxy for "classifiable by a small CNN".
        let ds = SynthGtsrb::builder()
            .classes(43)
            .samples_per_class(1)
            .image_size(16)
            .augment(Augment::none())
            .generate()
            .unwrap();
        let mut sigs = Vec::new();
        for i in 0..43 {
            let img = ds.images().slice_axis0(i..i + 1).unwrap();
            let d = img.data();
            let mut sig = Vec::with_capacity(3 * 64);
            for c in 0..3 {
                for by in 0..8 {
                    for bx in 0..8 {
                        let mut acc = 0.0f32;
                        for y in 0..2 {
                            for x in 0..2 {
                                acc += d[c * 256 + (by * 2 + y) * 16 + bx * 2 + x];
                            }
                        }
                        sig.push(acc / 4.0);
                    }
                }
            }
            sigs.push(sig);
        }
        for i in 0..43 {
            for k in (i + 1)..43 {
                let dist: f32 = sigs[i]
                    .iter()
                    .zip(&sigs[k])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                assert!(
                    dist > 1e-3,
                    "classes {i} and {k} have near-identical colour signatures"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(SynthGtsrb::builder().classes(0).generate().is_err());
        assert!(SynthGtsrb::builder().classes(44).generate().is_err());
        assert!(SynthGtsrb::builder()
            .samples_per_class(0)
            .generate()
            .is_err());
        assert!(SynthGtsrb::builder().image_size(4).generate().is_err());
    }
}
