//! Analytic sign shapes and inner glyphs.
//!
//! Shapes are defined by membership functions over sign coordinates
//! `(u, v) ∈ [-1, 1]²` (v grows downward, like pixel rows). Evaluating a
//! shape at two scales yields the rim band: inside at scale 1 but outside
//! at the inset scale ⇒ rim pixel.

/// The outline of a traffic sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignShape {
    /// Circular sign (prohibitions, mandatory).
    Circle,
    /// Upward triangle (warnings).
    TriangleUp,
    /// Downward triangle (yield).
    TriangleDown,
    /// Octagon (stop).
    Octagon,
    /// Diamond (priority road).
    Diamond,
    /// Square (information).
    Square,
}

impl SignShape {
    /// Whether `(u, v)` lies inside the shape scaled by `scale`.
    pub fn contains(&self, u: f32, v: f32, scale: f32) -> bool {
        if scale <= 0.0 {
            return false;
        }
        let u = u / scale;
        let v = v / scale;
        const R: f32 = 0.92;
        match self {
            SignShape::Circle => u * u + v * v <= R * R,
            SignShape::Square => u.abs().max(v.abs()) <= R * 0.88,
            SignShape::Diamond => u.abs() + v.abs() <= R * 1.15,
            SignShape::Octagon => {
                let axis = u.abs().max(v.abs());
                let diag = (u.abs() + v.abs()) / std::f32::consts::SQRT_2;
                axis.max(diag) <= R * 0.88
            }
            SignShape::TriangleUp => {
                // Apex at (0, −R), base at v = +R·0.8.
                let base = R * 0.8;
                if v > base || v < -R {
                    return false;
                }
                let t = (v + R) / (base + R); // 0 at apex → 1 at base
                u.abs() <= t * R * 0.95
            }
            SignShape::TriangleDown => SignShape::TriangleUp.contains(u, -v, 1.0),
        }
    }

    /// All shapes, for building the class table.
    pub fn all() -> [SignShape; 6] {
        [
            SignShape::Circle,
            SignShape::TriangleUp,
            SignShape::TriangleDown,
            SignShape::Octagon,
            SignShape::Diamond,
            SignShape::Square,
        ]
    }
}

/// The inner pictogram of a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Glyph {
    /// Empty face.
    None,
    /// Horizontal bar (no entry).
    HBar,
    /// Vertical bar.
    VBar,
    /// Filled central dot.
    Dot,
    /// Plus/cross.
    Cross,
    /// Diagonal slash (end of restriction).
    Slash,
    /// Two stacked dots.
    TwoDots,
    /// Hollow ring.
    Ring,
    /// Downward chevron.
    Chevron,
    /// Small centred square.
    SquareDot,
}

impl Glyph {
    /// Whether `(u, v)` lies on the glyph (drawn in glyph colour above the
    /// sign field).
    pub fn contains(&self, u: f32, v: f32) -> bool {
        match self {
            Glyph::None => false,
            Glyph::HBar => u.abs() <= 0.55 && v.abs() <= 0.14,
            Glyph::VBar => u.abs() <= 0.14 && v.abs() <= 0.55,
            Glyph::Dot => u * u + v * v <= 0.24 * 0.24,
            Glyph::Cross => {
                (u.abs() <= 0.13 && v.abs() <= 0.5) || (v.abs() <= 0.13 && u.abs() <= 0.5)
            }
            Glyph::Slash => (u + v).abs() <= 0.16 && u.abs() <= 0.6 && v.abs() <= 0.6,
            Glyph::TwoDots => {
                let d1 = u * u + (v + 0.3) * (v + 0.3);
                let d2 = u * u + (v - 0.3) * (v - 0.3);
                d1 <= 0.16 * 0.16 || d2 <= 0.16 * 0.16
            }
            Glyph::Ring => {
                let d = (u * u + v * v).sqrt();
                (0.22..=0.38).contains(&d)
            }
            Glyph::Chevron => {
                let w = (v - u.abs() * 0.8).abs();
                w <= 0.14 && (-0.4..=0.55).contains(&v) && u.abs() <= 0.55
            }
            Glyph::SquareDot => u.abs().max(v.abs()) <= 0.33,
        }
    }

    /// All glyphs, for building the class table.
    pub fn all() -> [Glyph; 10] {
        [
            Glyph::None,
            Glyph::HBar,
            Glyph::VBar,
            Glyph::Dot,
            Glyph::Cross,
            Glyph::Slash,
            Glyph::TwoDots,
            Glyph::Ring,
            Glyph::Chevron,
            Glyph::SquareDot,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_contain_origin() {
        for s in SignShape::all() {
            assert!(s.contains(0.0, 0.0, 1.0), "{s:?} must contain origin");
        }
    }

    #[test]
    fn all_shapes_exclude_far_corner() {
        for s in SignShape::all() {
            assert!(!s.contains(1.0, 1.0, 1.0), "{s:?} must exclude (1,1)");
        }
    }

    #[test]
    fn smaller_scale_is_subset() {
        // A point inside at scale 0.7 must be inside at scale 1.0.
        let pts = [(0.0, 0.5), (0.3, -0.2), (-0.4, 0.1), (0.2, 0.2)];
        for s in SignShape::all() {
            for &(u, v) in &pts {
                if s.contains(u, v, 0.7) {
                    assert!(
                        s.contains(u, v, 1.0),
                        "{s:?} scale monotonicity at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn triangles_are_mirrored() {
        assert_eq!(
            SignShape::TriangleUp.contains(0.2, -0.5, 1.0),
            SignShape::TriangleDown.contains(0.2, 0.5, 1.0)
        );
    }

    #[test]
    fn zero_scale_contains_nothing() {
        for s in SignShape::all() {
            assert!(!s.contains(0.0, 0.0, 0.0));
        }
    }

    #[test]
    fn glyphs_are_distinguishable_by_coverage() {
        // Each glyph pair must differ at some probe grid point.
        let glyphs = Glyph::all();
        let probes: Vec<(f32, f32)> = (0..=24)
            .flat_map(|i| (0..=24).map(move |j| (i as f32 / 12.0 - 1.0, j as f32 / 12.0 - 1.0)))
            .collect();
        for i in 0..glyphs.len() {
            for k in (i + 1)..glyphs.len() {
                let differ = probes
                    .iter()
                    .any(|&(u, v)| glyphs[i].contains(u, v) != glyphs[k].contains(u, v));
                assert!(
                    differ,
                    "{:?} and {:?} identical on probe grid",
                    glyphs[i], glyphs[k]
                );
            }
        }
    }

    #[test]
    fn none_glyph_is_empty() {
        for u in [-0.5f32, 0.0, 0.5] {
            for v in [-0.5f32, 0.0, 0.5] {
                assert!(!Glyph::None.contains(u, v));
            }
        }
    }
}
