//! Class specifications: the 43-entry sign taxonomy.

use super::palette::Rgb;
use super::shapes::{Glyph, SignShape};

/// Visual definition of one sign class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// Outline shape.
    pub shape: SignShape,
    /// Rim (border band) colour.
    pub rim: Rgb,
    /// Inner field colour.
    pub field: Rgb,
    /// Inner pictogram.
    pub glyph: Glyph,
    /// Pictogram colour.
    pub glyph_color: Rgb,
}

/// Fraction of the shape occupied by the inner field; the band between
/// `FIELD_SCALE` and 1.0 is the rim.
const FIELD_SCALE: f32 = 0.72;

impl ClassSpec {
    /// Colour of the sign at sign coordinates `(u, v)`; `background` is
    /// returned outside the outline.
    pub fn color_at(&self, u: f32, v: f32, background: Rgb) -> Rgb {
        if !self.shape.contains(u, v, 1.0) {
            return background;
        }
        if !self.shape.contains(u, v, FIELD_SCALE) {
            return self.rim;
        }
        if self.glyph.contains(u, v) {
            return self.glyph_color;
        }
        self.field
    }

    /// The deterministic class table: the first `classes` entries of the
    /// 43-class taxonomy. Entries are constructed so that every pair of
    /// classes differs in shape, colours or glyph.
    ///
    /// # Panics
    ///
    /// Panics if `classes > 43` — callers validate against
    /// [`super::MAX_CLASSES`] first.
    pub fn table(classes: usize) -> Vec<ClassSpec> {
        assert!(classes <= super::MAX_CLASSES, "at most 43 classes");
        // Sign "families", echoing real GTSRB structure: prohibitory
        // (red-rim white circles), warning (red-rim white triangles),
        // mandatory (blue circles), and a tail of distinctive specials.
        let mut table = Vec::with_capacity(super::MAX_CLASSES);

        // Family 1: prohibitory — red-rimmed white circles, 10 glyph variants.
        for glyph in Glyph::all() {
            table.push(ClassSpec {
                shape: SignShape::Circle,
                rim: Rgb::RED,
                field: Rgb::WHITE,
                glyph,
                glyph_color: Rgb::BLACK,
            });
        }
        // Family 2: warning — red-rimmed white triangles, 10 glyph variants.
        for glyph in Glyph::all() {
            table.push(ClassSpec {
                shape: SignShape::TriangleUp,
                rim: Rgb::RED,
                field: Rgb::WHITE,
                glyph,
                glyph_color: Rgb::BLACK,
            });
        }
        // Family 3: mandatory — blue circles with white glyphs, 10 variants.
        for glyph in Glyph::all() {
            table.push(ClassSpec {
                shape: SignShape::Circle,
                rim: Rgb::BLUE,
                field: Rgb::BLUE,
                glyph,
                glyph_color: Rgb::WHITE,
            });
        }
        // Family 4: end-of-restriction — grey-slashed white circles with
        // grey glyphs, 5 variants.
        for glyph in [
            Glyph::HBar,
            Glyph::VBar,
            Glyph::Dot,
            Glyph::Cross,
            Glyph::Ring,
        ] {
            table.push(ClassSpec {
                shape: SignShape::Circle,
                rim: Rgb::GREY,
                field: Rgb::WHITE,
                glyph,
                glyph_color: Rgb::GREY,
            });
        }
        // Family 5: specials — unique shape/colour signatures.
        table.push(ClassSpec {
            shape: SignShape::Octagon,
            rim: Rgb::WHITE,
            field: Rgb::RED,
            glyph: Glyph::HBar,
            glyph_color: Rgb::WHITE,
        }); // stop
        table.push(ClassSpec {
            shape: SignShape::TriangleDown,
            rim: Rgb::RED,
            field: Rgb::WHITE,
            glyph: Glyph::None,
            glyph_color: Rgb::BLACK,
        }); // yield
        table.push(ClassSpec {
            shape: SignShape::Diamond,
            rim: Rgb::WHITE,
            field: Rgb::YELLOW,
            glyph: Glyph::None,
            glyph_color: Rgb::BLACK,
        }); // priority road
        table.push(ClassSpec {
            shape: SignShape::Square,
            rim: Rgb::WHITE,
            field: Rgb::BLUE,
            glyph: Glyph::SquareDot,
            glyph_color: Rgb::WHITE,
        }); // parking-ish info
        table.push(ClassSpec {
            shape: SignShape::TriangleUp,
            rim: Rgb::ORANGE,
            field: Rgb::YELLOW,
            glyph: Glyph::Chevron,
            glyph_color: Rgb::BLACK,
        }); // construction
        table.push(ClassSpec {
            shape: SignShape::Circle,
            rim: Rgb::GREEN,
            field: Rgb::WHITE,
            glyph: Glyph::Dot,
            glyph_color: Rgb::GREEN,
        });
        table.push(ClassSpec {
            shape: SignShape::Square,
            rim: Rgb::YELLOW,
            field: Rgb::GREY,
            glyph: Glyph::Cross,
            glyph_color: Rgb::YELLOW,
        });
        table.push(ClassSpec {
            shape: SignShape::Diamond,
            rim: Rgb::ORANGE,
            field: Rgb::WHITE,
            glyph: Glyph::VBar,
            glyph_color: Rgb::ORANGE,
        });

        debug_assert_eq!(table.len(), super::MAX_CLASSES);
        table.truncate(classes);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_43_distinct_entries() {
        let table = ClassSpec::table(43);
        assert_eq!(table.len(), 43);
        for i in 0..table.len() {
            for k in (i + 1)..table.len() {
                assert_ne!(table[i], table[k], "classes {i} and {k} identical");
            }
        }
    }

    #[test]
    fn table_truncates() {
        assert_eq!(ClassSpec::table(7).len(), 7);
        assert_eq!(ClassSpec::table(0).len(), 0);
    }

    #[test]
    fn color_regions_layered_correctly() {
        let spec = ClassSpec::table(1)[0]; // red-rim white circle, no glyph
        let bg = Rgb::new(0.3, 0.3, 0.3);
        // Outside → background.
        assert_eq!(spec.color_at(1.0, 1.0, bg), bg);
        // Centre → field.
        assert_eq!(spec.color_at(0.0, 0.0, bg), Rgb::WHITE);
        // Rim band: just inside the outline but outside the field.
        assert_eq!(spec.color_at(0.85, 0.0, bg), Rgb::RED);
    }

    #[test]
    fn glyph_drawn_over_field() {
        // Class 3 is the red-rim circle with a black dot.
        let table = ClassSpec::table(43);
        let spec = table[3];
        assert_eq!(spec.glyph, Glyph::Dot);
        let bg = Rgb::GREY;
        assert_eq!(spec.color_at(0.0, 0.0, bg), Rgb::BLACK);
        assert_eq!(spec.color_at(0.0, 0.5, bg), Rgb::WHITE);
    }
}
