//! Colour primitives for the sign renderer.

/// An RGB colour with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb {
    /// Red component.
    pub r: f32,
    /// Green component.
    pub g: f32,
    /// Blue component.
    pub b: f32,
}

impl Rgb {
    /// Creates a colour (components are expected in `[0, 1]`).
    pub const fn new(r: f32, g: f32, b: f32) -> Self {
        Rgb { r, g, b }
    }

    /// Traffic-sign red.
    pub const RED: Rgb = Rgb::new(0.85, 0.08, 0.10);
    /// Traffic-sign blue.
    pub const BLUE: Rgb = Rgb::new(0.05, 0.25, 0.75);
    /// Sign-face white.
    pub const WHITE: Rgb = Rgb::new(0.95, 0.95, 0.95);
    /// Warning yellow.
    pub const YELLOW: Rgb = Rgb::new(0.95, 0.80, 0.10);
    /// Glyph black.
    pub const BLACK: Rgb = Rgb::new(0.05, 0.05, 0.05);
    /// End-of-restriction grey.
    pub const GREY: Rgb = Rgb::new(0.55, 0.55, 0.55);
    /// Mandatory-sign green (rare but distinct).
    pub const GREEN: Rgb = Rgb::new(0.05, 0.55, 0.20);
    /// Orange (construction).
    pub const ORANGE: Rgb = Rgb::new(0.95, 0.50, 0.05);

    /// Linear interpolation toward `other` by `t ∈ [0, 1]`.
    pub fn lerp(&self, other: Rgb, t: f32) -> Rgb {
        Rgb::new(
            self.r + (other.r - self.r) * t,
            self.g + (other.g - self.g) * t,
            self.b + (other.b - self.b) * t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(0.0, 0.0, 0.0);
        let b = Rgb::new(1.0, 0.5, 0.25);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn palette_constants_in_range() {
        for c in [
            Rgb::RED,
            Rgb::BLUE,
            Rgb::WHITE,
            Rgb::YELLOW,
            Rgb::BLACK,
            Rgb::GREY,
            Rgb::GREEN,
            Rgb::ORANGE,
        ] {
            for v in [c.r, c.g, c.b] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
