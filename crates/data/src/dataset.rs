//! Owned image-classification datasets.

use crate::{DataError, Result};
use gsfl_tensor::Tensor;

/// An in-memory labelled image dataset.
///
/// Images are a single `[n, c, h, w]` tensor; labels are class indices.
/// Datasets are immutable after construction — shards and subsets copy the
/// selected samples, which keeps ownership simple across simulated clients.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageDataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl ImageDataset {
    /// Builds a dataset, validating label count and range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] when the leading image dimension does
    /// not match `labels.len()`, or any label is ≥ `num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(DataError::Config(format!(
                "images have {n} samples but {} labels given",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::Config(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(ImageDataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The image tensor `[n, c, h, w]` (or `[n, d]` for flat features).
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Dims of a single sample (without the batch axis).
    pub fn sample_dims(&self) -> Vec<usize> {
        self.images.dims()[1..].to_vec()
    }

    /// Copies the samples at `indices` into a new dataset (order kept).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Partition`] when an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<ImageDataset> {
        let images = self
            .images
            .gather_axis0(indices)
            .map_err(|e| DataError::Partition(e.to_string()))?;
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            labels.push(self.labels[i]);
        }
        Ok(ImageDataset {
            images,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(train, test)` with the first `train_fraction` of an
    /// interleaved (round-robin by class) ordering going to train, so both
    /// splits cover all classes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] for fractions outside `(0, 1)`.
    pub fn split_train_test(&self, train_fraction: f64) -> Result<(ImageDataset, ImageDataset)> {
        if !(0.0 < train_fraction && train_fraction < 1.0) {
            return Err(DataError::Config(format!(
                "train_fraction must be in (0,1), got {train_fraction}"
            )));
        }
        // Group indices per class, then take a per-class prefix for train.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class_indices in &per_class {
            let cut = ((class_indices.len() as f64) * train_fraction).round() as usize;
            let cut = cut.min(class_indices.len());
            train_idx.extend_from_slice(&class_indices[..cut]);
            test_idx.extend_from_slice(&class_indices[cut..]);
        }
        Ok((self.subset(&train_idx)?, self.subset(&test_idx)?))
    }

    /// Concatenates datasets with identical sample dims and class counts —
    /// used by the centralized-learning baseline, which pools all client
    /// shards at the server.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Config`] for empty input or mismatched schemas.
    pub fn concat(parts: &[&ImageDataset]) -> Result<ImageDataset> {
        let first = parts
            .first()
            .ok_or_else(|| DataError::Config("concat needs at least one dataset".into()))?;
        for p in parts {
            if p.num_classes != first.num_classes || p.sample_dims() != first.sample_dims() {
                return Err(DataError::Config(
                    "concat: datasets have mismatched schema".into(),
                ));
            }
        }
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &p.images).collect();
        let images = Tensor::concat_axis0(&tensors)?;
        let labels = parts
            .iter()
            .flat_map(|p| p.labels.iter().copied())
            .collect();
        Ok(ImageDataset {
            images,
            labels,
            num_classes: first.num_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ImageDataset {
        let images = Tensor::from_fn(&[6, 1, 2, 2], |i| i as f32);
        ImageDataset::new(images, vec![0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(ImageDataset::new(images.clone(), vec![0], 2).is_err());
        assert!(ImageDataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(ImageDataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn subset_copies_selected() {
        let ds = tiny();
        let sub = ds.subset(&[4, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[1, 0]);
        assert_eq!(sub.images().get(&[0, 0, 0, 0]).unwrap(), 16.0);
        assert!(ds.subset(&[9]).is_err());
    }

    #[test]
    fn split_covers_all_classes() {
        let ds = tiny();
        let (train, test) = ds.split_train_test(0.5).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        for c in 0..3 {
            assert!(train.labels().contains(&c));
            assert!(test.labels().contains(&c));
        }
        assert!(ds.split_train_test(0.0).is_err());
        assert!(ds.split_train_test(1.0).is_err());
    }

    #[test]
    fn concat_round_trip() {
        let ds = tiny();
        let a = ds.subset(&[0, 1, 2]).unwrap();
        let b = ds.subset(&[3, 4, 5]).unwrap();
        let joined = ImageDataset::concat(&[&a, &b]).unwrap();
        assert_eq!(joined, ds);
        assert!(ImageDataset::concat(&[]).is_err());
    }

    #[test]
    fn sample_dims() {
        assert_eq!(tiny().sample_dims(), vec![1, 2, 2]);
    }
}
