use gsfl_tensor::TensorError;
use std::fmt;

/// Error type for dataset generation and partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Generator or partitioner misconfiguration.
    Config(String),
    /// A partition request was inconsistent with the dataset.
    Partition(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::Config(msg) => write!(f, "configuration error: {msg}"),
            DataError::Partition(msg) => write!(f, "partition error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = DataError::from(TensorError::InvalidArgument("bad".into()));
        assert!(e.source().is_some());
        assert!(DataError::Config("x".into()).to_string().contains("x"));
    }
}
