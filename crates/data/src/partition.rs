//! Client data partitioners.
//!
//! A [`Partition`] assigns every sample index of a dataset to exactly one
//! client. Three strategies are provided:
//!
//! * [`Partition::iid`] — shuffle and deal round-robin (near-equal shard
//!   sizes, matching class mix),
//! * [`Partition::dirichlet`] — per-class Dirichlet(α) allocation, the
//!   standard non-IID benchmark knob (small α ⇒ highly skewed clients),
//! * [`Partition::shards`] — sort-by-label shard assignment (the original
//!   FedAvg pathological non-IID construction).

use crate::dataset::ImageDataset;
use crate::{DataError, Result};
use gsfl_tensor::rng::SeedDerive;
use rand::seq::SliceRandom;
use rand::Rng;

/// An assignment of dataset indices to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignments: Vec<Vec<usize>>,
}

impl Partition {
    /// IID partition: global shuffle, then round-robin deal.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Partition`] when `clients` is zero or exceeds
    /// the sample count.
    pub fn iid(dataset: &ImageDataset, clients: usize, seed: u64) -> Result<Self> {
        validate(dataset, clients)?;
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        let mut rng = SeedDerive::new(seed).child("iid").rng();
        indices.shuffle(&mut rng);
        let mut assignments = vec![Vec::new(); clients];
        for (pos, idx) in indices.into_iter().enumerate() {
            assignments[pos % clients].push(idx);
        }
        Ok(Partition { assignments })
    }

    /// Dirichlet non-IID partition: for every class, sample client
    /// proportions from Dirichlet(α) and allocate that class's samples
    /// accordingly. Small `alpha` (e.g. 0.1) concentrates each class on few
    /// clients; large `alpha` (e.g. 100) approaches IID.
    ///
    /// Clients left empty by the draw are topped up with one sample stolen
    /// from the largest shard, so every client can train.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Partition`] for zero clients / non-positive
    /// alpha / more clients than samples.
    pub fn dirichlet(
        dataset: &ImageDataset,
        clients: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<Self> {
        validate(dataset, clients)?;
        if alpha.is_nan() || alpha <= 0.0 {
            return Err(DataError::Partition(format!(
                "dirichlet alpha must be > 0, got {alpha}"
            )));
        }
        let mut rng = SeedDerive::new(seed).child("dirichlet").rng();
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
        for (i, &l) in dataset.labels().iter().enumerate() {
            per_class[l].push(i);
        }
        let mut assignments = vec![Vec::new(); clients];
        for class_indices in per_class.iter_mut() {
            if class_indices.is_empty() {
                continue;
            }
            class_indices.shuffle(&mut rng);
            let props = dirichlet_sample(alpha, clients, &mut rng);
            // Convert proportions to cumulative boundaries over this class.
            let n = class_indices.len();
            let mut start = 0usize;
            let mut acc = 0.0f64;
            for (c, &p) in props.iter().enumerate() {
                acc += p;
                let end = if c + 1 == clients {
                    n
                } else {
                    ((acc * n as f64).round() as usize).clamp(start, n)
                };
                assignments[c].extend_from_slice(&class_indices[start..end]);
                start = end;
            }
        }
        rebalance_empty(&mut assignments);
        Ok(Partition { assignments })
    }

    /// Shard partition: sort by label, cut into `clients × shards_per_client`
    /// shards, deal each client `shards_per_client` shards at random. With
    /// `shards_per_client = 2` most clients see only ~2 classes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Partition`] for zero clients/shards or more
    /// total shards than samples.
    pub fn shards(
        dataset: &ImageDataset,
        clients: usize,
        shards_per_client: usize,
        seed: u64,
    ) -> Result<Self> {
        validate(dataset, clients)?;
        if shards_per_client == 0 {
            return Err(DataError::Partition("shards_per_client must be ≥ 1".into()));
        }
        let total_shards = clients * shards_per_client;
        if total_shards > dataset.len() {
            return Err(DataError::Partition(format!(
                "{total_shards} shards exceed {} samples",
                dataset.len()
            )));
        }
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        indices.sort_by_key(|&i| dataset.labels()[i]);
        let mut shard_ids: Vec<usize> = (0..total_shards).collect();
        let mut rng = SeedDerive::new(seed).child("shards").rng();
        shard_ids.shuffle(&mut rng);
        let shard_len = dataset.len() / total_shards;
        let mut assignments = vec![Vec::new(); clients];
        for (k, &shard) in shard_ids.iter().enumerate() {
            let client = k / shards_per_client;
            let from = shard * shard_len;
            let to = if shard + 1 == total_shards {
                dataset.len()
            } else {
                (shard + 1) * shard_len
            };
            assignments[client].extend_from_slice(&indices[from..to]);
        }
        rebalance_empty(&mut assignments);
        Ok(Partition { assignments })
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.assignments.len()
    }

    /// Sample indices assigned to `client`.
    pub fn client_indices(&self, client: usize) -> &[usize] {
        &self.assignments[client]
    }

    /// Materializes each client's shard as an owned dataset.
    ///
    /// # Errors
    ///
    /// Propagates subset errors (cannot occur for a partition built from
    /// the same dataset).
    pub fn materialize(&self, dataset: &ImageDataset) -> Result<Vec<ImageDataset>> {
        self.assignments
            .iter()
            .map(|idx| dataset.subset(idx))
            .collect()
    }

    /// Shard sizes per client.
    pub fn sizes(&self) -> Vec<usize> {
        self.assignments.iter().map(Vec::len).collect()
    }
}

fn validate(dataset: &ImageDataset, clients: usize) -> Result<()> {
    if clients == 0 {
        return Err(DataError::Partition("need at least one client".into()));
    }
    if clients > dataset.len() {
        return Err(DataError::Partition(format!(
            "{clients} clients exceed {} samples",
            dataset.len()
        )));
    }
    Ok(())
}

/// Steals one sample from the largest shard for every empty shard.
fn rebalance_empty(assignments: &mut [Vec<usize>]) {
    loop {
        let Some(empty) = assignments.iter().position(Vec::is_empty) else {
            return;
        };
        let largest = assignments
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.len())
            .map(|(i, _)| i)
            .expect("non-empty slice");
        if assignments[largest].len() <= 1 {
            return; // cannot rebalance further
        }
        let moved = assignments[largest].pop().expect("largest is non-empty");
        assignments[empty].push(moved);
    }
}

/// Samples a Dirichlet(α, …, α) vector via normalized Gamma draws
/// (Marsaglia–Tsang for α ≥ 1, boosted for α < 1).
fn dirichlet_sample(alpha: f64, k: usize, rng: &mut rand_chacha::ChaCha8Rng) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate fallback: uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

fn gamma_sample(alpha: f64, rng: &mut rand_chacha::ChaCha8Rng) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^(1/α).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze method.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn normal_sample(rng: &mut rand_chacha::ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    fn dataset(n: usize, classes: usize) -> ImageDataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % classes).collect();
        ImageDataset::new(images, labels, classes).unwrap()
    }

    fn assert_is_partition(p: &Partition, n: usize) {
        let mut seen = vec![false; n];
        for c in 0..p.client_count() {
            for &i in p.client_indices(c) {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index unassigned");
    }

    #[test]
    fn iid_covers_all_evenly() {
        let ds = dataset(100, 5);
        let p = Partition::iid(&ds, 10, 1).unwrap();
        assert_is_partition(&p, 100);
        assert!(p.sizes().iter().all(|&s| s == 10));
    }

    #[test]
    fn dirichlet_covers_all_and_skews() {
        let ds = dataset(500, 5);
        let p = Partition::dirichlet(&ds, 10, 0.2, 3).unwrap();
        assert_is_partition(&p, 500);
        // Low alpha should produce visibly unequal shard sizes.
        let sizes = p.sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > min, "alpha=0.2 should skew shard sizes: {sizes:?}");
        // And every client must be non-empty after rebalancing.
        assert!(min >= 1);
    }

    #[test]
    fn dirichlet_large_alpha_is_near_uniform() {
        let ds = dataset(1000, 4);
        let p = Partition::dirichlet(&ds, 10, 1000.0, 3).unwrap();
        let sizes = p.sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.6,
            "alpha=1000 should be near-uniform: {sizes:?}"
        );
    }

    #[test]
    fn shards_concentrate_labels() {
        let ds = dataset(200, 10);
        let p = Partition::shards(&ds, 10, 2, 5).unwrap();
        assert_is_partition(&p, 200);
        // Each client should see at most ~4 distinct labels (2 shards that
        // may straddle a class boundary).
        for c in 0..10 {
            let mut labels: Vec<usize> = p
                .client_indices(c)
                .iter()
                .map(|&i| ds.labels()[i])
                .collect();
            labels.sort_unstable();
            labels.dedup();
            assert!(
                labels.len() <= 4,
                "client {c} sees {} classes",
                labels.len()
            );
        }
    }

    #[test]
    fn validation_errors() {
        let ds = dataset(10, 2);
        assert!(Partition::iid(&ds, 0, 0).is_err());
        assert!(Partition::iid(&ds, 11, 0).is_err());
        assert!(Partition::dirichlet(&ds, 2, 0.0, 0).is_err());
        assert!(Partition::shards(&ds, 2, 0, 0).is_err());
        assert!(Partition::shards(&ds, 5, 3, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = dataset(60, 3);
        let a = Partition::dirichlet(&ds, 6, 0.5, 9).unwrap();
        let b = Partition::dirichlet(&ds, 6, 0.5, 9).unwrap();
        let c = Partition::dirichlet(&ds, 6, 0.5, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn materialize_builds_shard_datasets() {
        let ds = dataset(30, 3);
        let p = Partition::iid(&ds, 3, 0).unwrap();
        let shards = p.materialize(&ds).unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 30);
    }
}
