//! Client placement around the access point.

use crate::units::Meters;
use crate::{Result, WirelessError};
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Positions of N clients relative to the AP at the origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    distances: Vec<Meters>,
}

impl Topology {
    /// Places `n` clients uniformly at random in an annulus
    /// `[min_radius, max_radius]` around the AP (uniform over area).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for inverted or non-positive
    /// radii.
    pub fn random_annulus(
        n: usize,
        min_radius: Meters,
        max_radius: Meters,
        seed: u64,
    ) -> Result<Self> {
        let (r0, r1) = (min_radius.as_meters(), max_radius.as_meters());
        if r0 <= 0.0 || r1 < r0 {
            return Err(WirelessError::Config(format!(
                "invalid annulus radii [{r0}, {r1}]"
            )));
        }
        let seeds = SeedDerive::new(seed).child("topology");
        let distances = (0..n)
            .map(|i| {
                let mut rng = seeds.index(i as u64).rng();
                // Uniform over the annulus area ⇒ r = sqrt(U·(r1²−r0²)+r0²).
                let u: f64 = rng.gen();
                Meters::new((u * (r1 * r1 - r0 * r0) + r0 * r0).sqrt())
            })
            .collect();
        Ok(Topology { distances })
    }

    /// A fixed, explicit placement (for tests and analytic cross-checks).
    pub fn fixed(distances: Vec<Meters>) -> Self {
        Topology { distances }
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.distances.len()
    }

    /// Distance of `client` from the AP.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for out-of-range indices.
    pub fn distance(&self, client: usize) -> Result<Meters> {
        self.distances
            .get(client)
            .copied()
            .ok_or(WirelessError::UnknownClient {
                client,
                clients: self.distances.len(),
            })
    }

    /// All distances.
    pub fn distances(&self) -> &[Meters] {
        &self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annulus_respects_bounds() {
        let t = Topology::random_annulus(100, Meters::new(20.0), Meters::new(200.0), 1).unwrap();
        assert_eq!(t.client_count(), 100);
        for d in t.distances() {
            assert!((20.0..=200.0).contains(&d.as_meters()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Topology::random_annulus(10, Meters::new(10.0), Meters::new(50.0), 3).unwrap();
        let b = Topology::random_annulus(10, Meters::new(10.0), Meters::new(50.0), 3).unwrap();
        let c = Topology::random_annulus(10, Meters::new(10.0), Meters::new(50.0), 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_client_rejected() {
        let t = Topology::fixed(vec![Meters::new(5.0)]);
        assert!(t.distance(0).is_ok());
        assert!(matches!(
            t.distance(1),
            Err(WirelessError::UnknownClient {
                client: 1,
                clients: 1
            })
        ));
    }

    #[test]
    fn invalid_radii_rejected() {
        assert!(Topology::random_annulus(5, Meters::new(0.0), Meters::new(10.0), 0).is_err());
        assert!(Topology::random_annulus(5, Meters::new(20.0), Meters::new(10.0), 0).is_err());
    }

    #[test]
    fn area_uniform_biases_outward() {
        // Uniform-over-area places more clients in the outer half of the
        // annulus (it has more area).
        let t = Topology::random_annulus(2000, Meters::new(10.0), Meters::new(100.0), 7).unwrap();
        let mid = ((10.0f64 * 10.0 + 100.0 * 100.0) / 2.0).sqrt(); // equal-area split
        let outer = t.distances().iter().filter(|d| d.as_meters() > mid).count();
        let frac = outer as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "outer fraction {frac}");
    }
}
